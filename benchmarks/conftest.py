"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index).  The Figure 7 benches run at
``REPRO_BENCH_SCALE`` (default 100 -- a 1/100-size run finishing in
seconds); set ``REPRO_BENCH_SCALE=1`` for the paper's exact record
counts (a few minutes of wall time, all counters at paper scale).

Measured-vs-paper rows are printed to stdout (visible with ``-s`` or in
pytest's captured output) and asserted where the paper gives a number.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> int:
    return int(os.environ.get("REPRO_BENCH_SCALE", "100"))


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()


def print_rows(title: str, rows: list[tuple]) -> None:
    """Uniform 'paper vs measured' table output."""
    print(f"\n== {title} ==")
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    for row in rows:
        print("  " + "  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
