"""Perf regression gate for the batch-ingestion pipeline.

Runs the :mod:`repro.bench.perf` harness (the same code behind
``repro-bench --report ingest``) at a reduced stream length and asserts
the batch paths have not regressed to per-record speed.  Thresholds
are deliberately far below the measured ratios (5x asserted vs ~14-26x
measured for the buffered structures, see BENCH_ingest.json) so the
gate trips on architectural regressions -- a batch path quietly
falling back to the scalar loop -- not on machine noise.

Wall-clock benchmarks are kept out of tier-1: run with

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py -m perf -s
"""

from __future__ import annotations

import pytest

from repro.bench.aqp import aqp_smoke, render_aqp_report
from repro.bench.laws import law_smoke, render_law_report
from repro.bench.perf import (
    measure_ipc,
    perf_smoke,
    render_ipc_report,
    render_report,
    render_shard_report,
    shard_smoke,
)
from repro.bench.pipeline import pipeline_smoke, render_pipeline_report
from repro.bench.query import query_smoke, render_query_report
from repro.bench.serve import render_serve_report, serve_smoke

RECORDS = 200_000


@pytest.mark.perf
def test_batch_ingest_speedups():
    report = perf_smoke(records=RECORDS)
    print()
    print(render_report(report))
    assert report["min_buffered_speedup"] >= 5.0, (
        "a buffered structure's offer_many path regressed toward "
        "per-record speed"
    )
    assert report["feed_stream"]["speedup"] >= 3.0, (
        "batched skip feeding regressed toward the scalar loop"
    )
    vm = report["structures"]["virtual mem"]
    # Batching cannot beat the per-record LRU walk, but it must never
    # be slower than the scalar loop.
    assert vm["speedup"] >= 0.9


@pytest.mark.perf
def test_columnar_query_speedups():
    """The columnar engine's flush-encode and query/AQP wins hold.

    Thresholds sit far below the measured ratios (5x asserted vs ~20x
    measured for flush encode, 8x vs ~11x for query+AQP, see
    BENCH_query.json) so the gate trips on a columnar path quietly
    re-routing through per-record Python, not on machine noise.
    """
    report = query_smoke(records=RECORDS)
    print()
    print(render_query_report(report))
    assert report["flush_encode"]["speedup"] >= 5.0, (
        "whole-segment columnar encode regressed toward the per-record "
        "object codec"
    )
    assert report["query_aqp"]["speedup"] >= 8.0, (
        "sample_batch + BatchQuery regressed toward per-record Python "
        "query evaluation"
    )
    assert report["zone_map"]["speedup"] >= 2.0, (
        "zone-map query_batch regressed toward the record-iterator scan"
    )


@pytest.mark.perf
def test_pipelined_flush_speedup():
    """Double buffering >= 1.5x, elevator strictly fewer seeks.

    Both gates run on the simulated-disk timeline, so they hold on any
    host: the overlap ratio is a function of the flush plans and the
    ``stream_rate`` config, not of wall-clock threading luck (measured:
    1.73x, see BENCH_pipeline.json).  ``pipeline_smoke`` itself raises
    if the pipelined engine's DiskStats or device clock diverges from
    the synchronous twin, so passing this gate also re-proves the
    determinism contract.
    """
    report = pipeline_smoke()
    print()
    print(render_pipeline_report(report))
    assert report["speedup"] >= 1.5, (
        "pipelined ingest no longer reaches 1.5x synchronous throughput "
        "on the simulated-disk timeline; the double buffer has stopped "
        "overlapping buffer fill with the disk drain"
    )
    multi = report["multi_file"]
    assert multi["elevator_seeks"] < multi["fifo_seeks"], (
        "the elevator scheduler no longer saves seeks on the multi-file "
        "flush path; address sorting or extent coalescing regressed"
    )
    assert multi["merged_extents"] > 0, (
        "the elevator merged no extents at all on a multi-file flush "
        "path that is built from adjacent sub-file segments"
    )


@pytest.mark.perf
def test_sharded_ingest_speedup():
    """4-shard batched ingest beats single-shard by >= 2x.

    The gate is on *simulated-disk* throughput: each shard owns an
    independent simulated spindle and the aggregate clock is the
    slowest shard, so the ratio measures the sharded layout's
    parallelism deterministically -- it holds on a 1-core CI box where
    a wall-clock gate would be physically impossible.  The inline pool
    keeps the run single-process; simulated clocks are identical
    between pools by construction (measured: 2.08x both, see
    BENCH_shard.json for the process-pool wall numbers).
    """
    report = shard_smoke(shards=4, pool="inline")
    print()
    print(render_shard_report(report))
    assert report["sim_speedup"] >= 2.0, (
        "4-shard ingest no longer reaches 2x single-shard simulated "
        "throughput; the shards have stopped overlapping their I/O"
    )
    for row in report["sharded"]["per_shard"]:
        assert row["seen"] == report["config"]["records"] // 4
    assert report["sharded"]["recoveries"] == 1
    assert report["sharded"]["recovery_seconds"] < 30.0


@pytest.mark.perf
def test_ipc_plane_speedups():
    """The shared-memory data plane beats pickled queues by >= 2x.

    Both transports run the same columnar workload through real worker
    processes at 4 shards; the shm run must win on cross-process ingest
    *and* on the parallel multi-shard query fan-out.  The floors sit
    well below the measured ratios (2x asserted vs ~3.5x ingest and
    ~3.9x query measured, see BENCH_shard.json) so the gate trips on
    the slab path quietly degrading to pickling -- which is also why
    ``fallback_slabs`` must stay zero: at this workload every batch
    fits the ring, so any fallback means the ring broke.  Bit-exactness
    is the transport contract: the sampling math must not be able to
    tell the transports apart.
    """
    from repro.service import HAVE_SHM

    if not HAVE_SHM:
        pytest.skip("multiprocessing.shared_memory unavailable")
    report = measure_ipc(shards=4)
    print()
    print(render_ipc_report(report))
    assert report["bit_exact"], (
        "the shm transport drew a different merged sample than the "
        "queue transport on the same stream; the data plane is no "
        "longer invisible to the sampling math"
    )
    assert report["ingest_speedup"] >= 2.0, (
        "zero-copy slab ingest no longer beats pickled-queue ingest "
        "by 2x at 4 shards; batches are being pickled or the ring is "
        "stalling"
    )
    assert report["query_speedup"] >= 2.0, (
        "the parallel scatter-gather query fan-out over slab replies "
        "no longer beats the sequential pickled gather by 2x"
    )
    assert report["shm"]["ipc"]["fallback_slabs"] == 0, (
        "slabs fell back to the pickled queue on a workload where "
        "every batch fits the ring"
    )
    assert report["shm"]["ipc"]["zero_copy_bytes"] > 0


@pytest.mark.perf
def test_serving_layer_sustained_load():
    """The asyncio front-end sustains concurrent load within latency
    bounds.

    Unlike the simulated-disk gates above, this one is wall-clock by
    nature (it measures the serving stack: framing, dispatch, the
    engine executor, asyncio scheduling), so the thresholds sit far
    below any healthy host's numbers (measured on the reference box:
    ~70 req/s sustained across 4 sessions with P99 ~0.3 s, driven by
    offer_batch cost; inline twin ~75k rec/s ingest, sample P99
    ~2 ms -- see BENCH_serve.json).  A trip here means requests are
    queueing behind a serialized or blocked event loop, not noise.
    Every session now runs one untimed warm-up round (handshake, first
    offer, first sample) before the timed loop, so the percentiles
    carry no first-touch spikes and the P99 bound can sit much closer
    to steady state.
    """
    report = serve_smoke()
    print()
    print(render_serve_report(report))
    tcp = report["tcp"]
    assert tcp["qps"] >= 10, (
        "the served TCP path no longer sustains 10 requests/second "
        "across concurrent sessions; the event loop or the engine "
        "executor is blocking"
    )
    assert tcp["p99_ms"] <= 2_000.0, (
        "P99 served-request latency exceeds 2 seconds under the smoke "
        "load (warm-up rounds already absorb first-touch costs); "
        "requests are stalling behind ingest instead of interleaving"
    )
    assert tcp["requests"] == (report["config"]["sessions"]
                               * report["config"]["requests_per_session"])
    inline = report["inline"]
    assert inline["ingest_records_per_s"] >= 5_000, (
        "the inline served twin's batch ingest collapsed toward "
        "per-record protocol overhead"
    )
    assert inline["query_p99_ms"] <= 1_000.0


@pytest.mark.perf
def test_aqp_planner_gates():
    """The tiered AQP planner's three BENCH_aqp.json gates hold.

    Speedup and hit rate come from the planner's design, not host
    speed: a cache hit is a handful of numpy reductions over <= 4096
    in-memory rows while the disk path merges a full multi-shard
    ``snapshot_batch`` (measured ~150x vs the 50x floor), and the
    workload mix is constructed so the Section 2 sample-size
    arithmetic certifies 85% of it from the cache at a 5% target vs
    the 80% floor.  Bit-exactness is exact, not statistical: the
    planner must never consume engine randomness, so the uncached
    twin replaying the same escalation draws must match byte for
    byte on samples, DiskStats, and the simulated clock.
    """
    report = aqp_smoke()
    print()
    print(render_aqp_report(report))
    gates = report["gates"]
    assert gates["speedup"] >= gates["speedup_floor"], (
        "cache-hit answering no longer beats the uncached disk path "
        "by 50x; the hot-subsample fast path is paying an engine "
        "round-trip it should skip"
    )
    assert gates["hit_rate"] >= gates["hit_rate_floor"], (
        "under 80% of the standard workload is answered from the "
        "cache at the 5% error target; the CLT bound check or the "
        "cache's coherence protocol regressed"
    )
    assert report["bit_exact"]["samples"], (
        "the planner perturbed the engine's sample draws: an uncached "
        "twin replaying the same escalations produced different records"
    )
    assert report["bit_exact"]["io"] and report["bit_exact"]["clock"], (
        "the planner changed the engine's DiskStats or simulated "
        "clock relative to an uncached twin"
    )


@pytest.mark.perf
def test_law_gates():
    """The sampling-law engine's two BENCH_law.json gates hold.

    Twin parity is exact, not statistical: an engine built from a
    default (law-less) config and one with an explicit law='uniform'
    must match bit for bit on sample keys, DiskStats, and the
    simulated clock -- the uniform law's method bodies are the
    pre-refactor code on the same RNGs, so any divergence is a
    behavioural regression in the law dispatch.  The weighted gate is
    a same-run ratio (measured ~0.7x vs the 0.2x floor, see
    BENCH_law.json), so it holds on any host and trips only when
    A-ExpJ admission falls back to per-record work.
    """
    report = law_smoke()
    print()
    print(render_law_report(report))
    exact = report["bit_exact"]
    assert exact["samples"], (
        "an explicit law='uniform' engine drew different sample keys "
        "than the default config; the uniform law no longer replays "
        "the pre-refactor RNG stream"
    )
    assert exact["io"] and exact["clock"], (
        "law dispatch changed the uniform engine's DiskStats or "
        "simulated clock relative to the default config"
    )
    gates = report["gates"]
    assert gates["weighted_ratio"] >= gates["weighted_ratio_floor"], (
        "batched A-ExpJ ingest fell below the uniform-ingest ratio "
        "floor; the exponential-jump batching or the vectorised key "
        "kernel stopped being used"
    )
