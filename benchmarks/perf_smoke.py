"""Perf regression gate for the batch-ingestion pipeline.

Runs the :mod:`repro.bench.perf` harness (the same code behind
``repro-bench --perf-smoke``) at a reduced stream length and asserts
the batch paths have not regressed to per-record speed.  Thresholds
are deliberately far below the measured ratios (5x asserted vs ~14-26x
measured for the buffered structures, see BENCH_ingest.json) so the
gate trips on architectural regressions -- a batch path quietly
falling back to the scalar loop -- not on machine noise.

Wall-clock benchmarks are kept out of tier-1: run with

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py -m perf -s
"""

from __future__ import annotations

import pytest

from repro.bench.perf import perf_smoke, render_report

RECORDS = 200_000


@pytest.mark.perf
def test_batch_ingest_speedups():
    report = perf_smoke(records=RECORDS)
    print()
    print(render_report(report))
    assert report["min_buffered_speedup"] >= 5.0, (
        "a buffered structure's offer_many path regressed toward "
        "per-record speed"
    )
    assert report["feed_stream"]["speedup"] >= 3.0, (
        "batched skip feeding regressed toward the scalar loop"
    )
    vm = report["structures"]["virtual mem"]
    # Batching cannot beat the per-record LRU walk, but it must never
    # be slower than the scalar loop.
    assert vm["speedup"] >= 0.9
