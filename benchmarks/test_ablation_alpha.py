"""Ablation A1 -- the alpha' sweep behind Section 6's design choice.

Section 6 fixes alpha' = 0.9 for the evaluation; this ablation sweeps
it.  Two forces trade off:

* smaller alpha' means fewer, larger consolidated segments per flush
  (fewer seeks), but
* smaller alpha' means more files and more dummy storage
  (``(2 - alpha') * |R|`` total disk).

The sweep regenerates both curves and checks the monotonicity the
analysis predicts, then measures a sweep end to end on the simulator.
"""

import pytest

from conftest import print_rows
from repro.analysis import (
    geometric_flush_cost,
    multi_file_storage_blowup,
    segments_per_flush,
)
from repro.bench import experiment_1, run_until
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.storage.device import SimulatedBlockDevice

SWEEP = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)


def test_analytic_alpha_sweep(benchmark):
    buffer, beta = 10 ** 7, 320
    rows = [("alpha'", "segments/flush", "seek s/flush", "disk blowup")]
    segment_counts = []
    for alpha_prime in SWEEP:
        segments = segments_per_flush(buffer, alpha_prime, beta)
        cost = geometric_flush_cost(buffer, 100, alpha_prime, beta)
        blowup = multi_file_storage_blowup(alpha_prime)
        segment_counts.append(segments)
        rows.append((alpha_prime, segments,
                     f"{cost.seek_seconds:.1f}", f"{blowup:.2f}x"))
    print_rows("alpha' ablation (1 GB flush, paper disk)", rows)
    assert segment_counts == sorted(segment_counts)
    # The knee: going below 0.9 saves little time but costs real disk.
    cost_09 = geometric_flush_cost(buffer, 100, 0.9, beta)
    cost_05 = geometric_flush_cost(buffer, 100, 0.5, beta)
    assert cost_09.total_seconds < 1.2 * cost_05.total_seconds
    assert multi_file_storage_blowup(0.5) == pytest.approx(1.5)


def test_measured_alpha_sweep(benchmark, scale):
    """Throughput of the multi-file option across alpha' values."""
    def run():
        spec = experiment_1(scale=scale, seed=0)
        out = []
        for alpha_prime in (0.6, 0.8, 0.9, 0.95):
            config = MultiFileConfig(
                capacity=spec.capacity,
                buffer_capacity=spec.buffer_capacity,
                record_size=spec.record_size,
                alpha_prime=alpha_prime,
            )
            blocks = MultipleGeometricFiles.required_blocks(
                config, spec.disk_parameters().block_size
            )
            device = SimulatedBlockDevice(blocks, spec.disk_parameters())
            reservoir = MultipleGeometricFiles(device, config, seed=0)
            result = run_until(reservoir, spec.horizon_seconds)
            out.append((alpha_prime, reservoir.n_files,
                        result.final_samples, result.seeks,
                        blocks * spec.disk_parameters().block_size))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("alpha'", "files", "samples", "seeks", "disk bytes")]
    for alpha_prime, m, samples, seeks, disk in table:
        rows.append((alpha_prime, m, f"{samples:,}", f"{seeks:,}",
                     f"{disk:,}"))
    print_rows(f"measured alpha' sweep at scale 1/{scale}", rows)
    # Coarser ladders (smaller alpha') must not be slower, and disk
    # footprint must grow as alpha' falls.
    samples_by_alpha = [row[2] for row in table]
    assert samples_by_alpha[0] >= samples_by_alpha[-1] * 0.8
    disks = [row[4] for row in table]
    assert disks == sorted(disks, reverse=True)
