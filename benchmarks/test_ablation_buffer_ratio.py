"""Ablation A3 -- throughput versus the reservoir-to-buffer ratio.

Experiments 1 and 3 differ only in the ratio N/B (100 vs 1000); this
ablation fills in the curve between and beyond, for both geometric
options.  The single file's Lemma 1 chain (alpha = 1 - B/N) makes it
collapse as the ratio grows; the multi-file option holds its alpha' and
degrades only through flush frequency.
"""

from conftest import print_rows
from repro.bench import ExperimentSpec, run_until

GIB = 1024 ** 3
MIB = 1024 ** 2

RATIOS = (20, 100, 500, 1000)


def _spec_for_ratio(ratio, scale):
    return ExperimentSpec(
        name=f"ratio {ratio}", record_size=50,
        reservoir_bytes=50 * GIB,
        buffer_bytes=50 * GIB // ratio,
        scale=scale,
    )


def test_ratio_sweep(benchmark, scale):
    def run():
        out = []
        for ratio in RATIOS:
            spec = _spec_for_ratio(ratio, scale)
            # At paper scale a quarter horizon suffices (the sweep
            # compares steady post-fill rates, and the ratio-1000
            # configurations dominate the suite's runtime); reduced
            # scales need the full horizon so the post-fill phase is
            # long enough to separate the options.
            horizon = spec.horizon_seconds / (4 if scale == 1 else 1)
            single = run_until(spec.make("geo file"), horizon)
            multi = run_until(spec.make("multiple geo files"), horizon)
            out.append((ratio, spec.capacity, single.final_samples,
                        multi.final_samples))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("N/B ratio", "geo file samples", "multi samples",
             "steady advantage")]
    steady_advantages = []
    for ratio, fill, single, multi in table:
        # Both options absorb the same initial fill; the Exp1-vs-Exp3
        # comparison is about the post-fill (steady) regime.
        steady = (multi - fill) / max(single - fill, 1)
        steady_advantages.append(steady)
        rows.append((ratio, f"{single:,}", f"{multi:,}",
                     f"{steady:.1f}x"))
    print_rows(f"reservoir:buffer ratio sweep at scale 1/{scale}", rows)

    singles = [row[2] for row in table]
    # The single file deteriorates monotonically with the ratio...
    assert singles == sorted(singles, reverse=True)
    # ...so the multi-file steady advantage widens (the Exp 1 vs Exp 3
    # finding).
    assert steady_advantages[-1] > 2 * steady_advantages[0]
