"""Figure 7 (a) -- Experiment 1: 50 B records, 600 MB of memory.

Regenerates the paper's first benchmark panel: all five alternatives
maintain a (scaled) 50 GB reservoir of 50 B records for 20 simulated
hours; the output series is cumulative samples added versus simulated
time.  Shape assertions encode the paper's findings:

* the multiple-geo-files option runs near the disk's sequential rate
  and shows no post-fill collapse;
* localized overwrite is competitive early and degrades;
* the single geometric file sits well below both (alpha is pinned at
  1 - B/N by Lemma 1);
* scan and virtual memory do almost all their work during the fill.
"""

import pytest

from conftest import print_rows
from repro.bench import (
    ALTERNATIVE_NAMES,
    experiment_1,
    io_summary_table,
    run_until,
    throughput_table,
)

_RESULTS: dict[str, object] = {}


def _spec(scale):
    return experiment_1(scale=scale, seed=0)


@pytest.mark.parametrize("name", ALTERNATIVE_NAMES)
def test_run_alternative(benchmark, scale, name):
    spec = _spec(scale)

    def run():
        reservoir = spec.make(name)
        return run_until(reservoir, spec.horizon_seconds)

    _RESULTS[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_figure_7a_shape(benchmark, scale):
    spec = _spec(scale)
    results = benchmark.pedantic(
        lambda: {name: _RESULTS.get(name) or run_until(
            spec.make(name), spec.horizon_seconds)
            for name in ALTERNATIVE_NAMES},
        rounds=1, iterations=1,
    )
    ordered = [results[name] for name in ALTERNATIVE_NAMES]
    print()
    print(f"Experiment 1 (fig 7a), scale 1/{scale}: "
          f"N={spec.capacity:,} x {spec.record_size} B, "
          f"B={spec.buffer_capacity:,}, "
          f"{spec.horizon_seconds / 3600:.2f} simulated hours")
    print(throughput_table(ordered, spec.horizon_seconds, n_rows=8))
    print(io_summary_table(ordered))

    finals = {name: r.final_samples for name, r in results.items()}
    fill = spec.capacity
    rows = [("alternative", "samples added", "x fill")]
    for name in ALTERNATIVE_NAMES:
        rows.append((name, f"{finals[name]:,}",
                     f"{finals[name] / fill:.2f}"))
    print_rows("fig 7a finals", rows)

    # Paper findings (Section 8 discussion).  The full ordering --
    # multi ahead of local overwrite by the end of the run -- emerges
    # at paper scale (REPRO_BENCH_SCALE=1): scaled-down runs keep all
    # ratios but inflate seek weight (segment counts shrink only
    # logarithmically), which flatters local overwrite's early phase.
    assert finals["local overwrite"] > finals["geo file"]
    assert finals["multiple geo files"] > finals["geo file"]
    assert finals["multiple geo files"] > finals["scan"]
    assert finals["multiple geo files"] > finals["virtual mem"]
    if scale == 1:
        assert finals["geo file"] > fill  # keeps working post-fill
    assert finals["virtual mem"] < 1.2 * fill  # essentially fill-only
    if scale == 1:
        assert finals["multiple geo files"] == max(finals.values())
    # The single file is dominated by head movements; the multi-file
    # option spends a strictly smaller share of its time seeking.  At
    # paper scale it writes mostly sequentially (paper: "almost at the
    # maximum sustained speed of the hard disk").
    assert (results["multiple geo files"].random_io_fraction
            < results["geo file"].random_io_fraction)
    assert results["geo file"].random_io_fraction > 0.6
    if scale == 1:
        assert results["multiple geo files"].random_io_fraction < 0.6
