"""Figure 7 (b) -- Experiment 2: 1 KB records, 600 MB of memory.

Identical to Experiment 1 but with 1 KB records ("we test the effect of
record size on the five options").  Fewer, larger records mean fewer
segments per flush (B is 20x smaller in records), so the geometric
structures get *more* sequential; virtual memory is unaffected (still
one random block per record); scan is unchanged in byte terms.
"""

import pytest

from conftest import print_rows
from repro.bench import (
    ALTERNATIVE_NAMES,
    experiment_2,
    io_summary_table,
    run_until,
    throughput_table,
)

_RESULTS: dict[str, object] = {}


@pytest.mark.parametrize("name", ALTERNATIVE_NAMES)
def test_run_alternative(benchmark, scale, name):
    spec = experiment_2(scale=scale, seed=0)

    def run():
        return run_until(spec.make(name), spec.horizon_seconds)

    _RESULTS[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_figure_7b_shape(benchmark, scale):
    spec = experiment_2(scale=scale, seed=0)
    results = benchmark.pedantic(
        lambda: {name: _RESULTS.get(name) or run_until(
            spec.make(name), spec.horizon_seconds)
            for name in ALTERNATIVE_NAMES},
        rounds=1, iterations=1,
    )
    ordered = [results[name] for name in ALTERNATIVE_NAMES]
    print()
    print(f"Experiment 2 (fig 7b), scale 1/{scale}: "
          f"N={spec.capacity:,} x {spec.record_size} B, "
          f"B={spec.buffer_capacity:,}")
    print(throughput_table(ordered, spec.horizon_seconds, n_rows=8,
                           unit=1e3, unit_label="k"))
    print(io_summary_table(ordered))

    finals = {name: r.final_samples for name, r in results.items()}
    fill = spec.capacity
    rows = [("alternative", "samples added", "x fill")]
    for name in ALTERNATIVE_NAMES:
        rows.append((name, f"{finals[name]:,}",
                     f"{finals[name] / fill:.2f}"))
    print_rows("fig 7b finals", rows)

    # Same qualitative ordering as Experiment 1 (see the fig 7a
    # bench for why local-vs-multi needs scale 1).
    assert finals["local overwrite"] > finals["geo file"]
    assert finals["multiple geo files"] > finals["geo file"]
    assert finals["multiple geo files"] > finals["virtual mem"]
    assert finals["virtual mem"] < 1.2 * fill
    if scale == 1:
        assert finals["multiple geo files"] == max(finals.values())
    # With 1 KB records the single geometric file's per-flush segment
    # count shrinks, so it closes part of its gap to the leaders
    # relative to Experiment 1 (paper: geo file performs "well" in
    # Experiments 1 and 2 at ratio 100).  Quantitative at paper scale.
    if scale == 1:
        assert finals["geo file"] > 1.5 * fill
