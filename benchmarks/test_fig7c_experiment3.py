"""Figure 7 (c) -- Experiment 3: 50 B records, memory cut to 150 MB.

"This experiment tests the effect of a constrained amount of main
memory": the new-sample buffer drops from 500 MB to 50 MB, pushing the
reservoir-to-buffer ratio from 100 to 1000 and therefore Lemma 1's
alpha from 0.99 to 0.999.  The paper's headline observation: "a single
geometric file is very sensitive to the ratio of the size of the
reservoir to the amount of available memory ... performs well in
Experiments 1 and 2 when this ratio is 100, but rather poorly in
Experiment 3 when the ratio is 1000", while the multi-file option
degrades far more gracefully.
"""

import pytest

from conftest import print_rows
from repro.bench import (
    ALTERNATIVE_NAMES,
    experiment_1,
    experiment_3,
    io_summary_table,
    run_until,
    throughput_table,
)

_RESULTS: dict[str, object] = {}


@pytest.mark.parametrize("name", ALTERNATIVE_NAMES)
def test_run_alternative(benchmark, scale, name):
    spec = experiment_3(scale=scale, seed=0)

    def run():
        return run_until(spec.make(name), spec.horizon_seconds)

    _RESULTS[name] = benchmark.pedantic(run, rounds=1, iterations=1)


def test_figure_7c_shape(benchmark, scale):
    spec = experiment_3(scale=scale, seed=0)
    results = benchmark.pedantic(
        lambda: {name: _RESULTS.get(name) or run_until(
            spec.make(name), spec.horizon_seconds)
            for name in ALTERNATIVE_NAMES},
        rounds=1, iterations=1,
    )
    ordered = [results[name] for name in ALTERNATIVE_NAMES]
    print()
    print(f"Experiment 3 (fig 7c), scale 1/{scale}: "
          f"N={spec.capacity:,} x {spec.record_size} B, "
          f"B={spec.buffer_capacity:,} (ratio "
          f"{spec.capacity // spec.buffer_capacity})")
    print(throughput_table(ordered, spec.horizon_seconds, n_rows=8))
    print(io_summary_table(ordered))

    finals = {name: r.final_samples for name, r in results.items()}
    fill = spec.capacity
    rows = [("alternative", "samples added", "x fill")]
    for name in ALTERNATIVE_NAMES:
        rows.append((name, f"{finals[name]:,}",
                     f"{finals[name] / fill:.2f}"))
    print_rows("fig 7c finals", rows)

    # The constrained-memory panel distorts hardest when scaled
    # down (alpha = 0.999 means the deepest segment ladders); the
    # robust orderings are asserted always, the full ranking at
    # paper scale.
    assert finals["local overwrite"] > finals["geo file"]
    assert finals["multiple geo files"] > finals["geo file"]
    assert finals["virtual mem"] < 1.2 * fill
    if scale == 1:
        assert finals["multiple geo files"] == max(finals.values())


def test_geo_file_ratio_sensitivity(benchmark, scale):
    """The Exp1-vs-Exp3 comparison the paper calls out explicitly."""
    spec_100 = experiment_1(scale=scale, seed=0)
    spec_1000 = experiment_3(scale=scale, seed=0)

    def run():
        out = {}
        for label, spec in (("ratio 100", spec_100),
                            ("ratio 1000", spec_1000)):
            result = run_until(spec.make("geo file"),
                               spec.horizon_seconds)
            out[label] = ((result.final_samples - spec.capacity)
                          / spec.horizon_seconds)
        return out

    steady = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("configuration", "steady records/sim-second")]
    for label, rate in steady.items():
        rows.append((label, f"{rate:,.0f}"))
    print_rows("single geo file vs reservoir:buffer ratio", rows)
    # Post-fill throughput collapses by far more than the 10x buffer
    # shrink alone would explain (alpha moves 0.99 -> 0.999).
    assert steady["ratio 100"] > 3 * steady["ratio 1000"]
