"""Section 2 -- "Sampling: Sometimes a Little Is Not Enough".

Regenerates the two worked examples that motivate the whole paper
(student ages vs. household net worth) and quantifies them against the
classical tail bounds, then demonstrates the phenomenon empirically on
synthetic streams: heavy-tailed data really does need orders of
magnitude more samples for the same accuracy.
"""

import random
import statistics

from conftest import print_rows
from repro.estimate import (
    achieved_confidence,
    chebyshev_sample_size,
    hoeffding_sample_size,
    relative_error,
    required_sample_size,
)
from repro.sampling import ReservoirSample
from repro.streams import LogNormalStream, NormalStream, take


def test_paper_examples_table(benchmark):
    confidence = achieved_confidence(2.0, 20.0, 0.025, 100)
    students = required_sample_size(2.0, 20.0, 0.025, confidence)
    net_worth = required_sample_size(5_000_000.0, 140_000.0, 0.025,
                                     confidence)
    rows = [
        ("population", "mean", "std", "paper says", "computed"),
        ("student ages", "20", "2", "~100", students),
        ("household net worth", "140,000", ">= 5,000,000",
         "> 12 million", f"{net_worth:,}"),
    ]
    print_rows("Section 2 sample sizes (2.5% error, z = 2.5)", rows)
    assert 100 <= students <= 101  # ceil() of exactly-100 + epsilon
    assert net_worth > 12_000_000


def test_bound_comparison_table(benchmark):
    """CLT vs Chebyshev for the paper's two populations."""
    rows = [("population", "CLT", "Chebyshev")]
    for name, std, mean in (("student ages", 2.0, 20.0),
                            ("net worth", 5e6, 1.4e5)):
        clt = required_sample_size(std, mean, 0.025, 0.9876)
        cheb = chebyshev_sample_size(std, 0.025 * mean, 1 - 0.9876)
        rows.append((name, f"{clt:,}", f"{cheb:,}"))
        assert cheb > clt  # distribution-free costs more
    print_rows("sample sizes by bound", rows)


def test_hoeffding_for_bounded_ages(benchmark):
    # Ages bounded in [15, 90]: Hoeffding applies.
    n = hoeffding_sample_size(75.0, 0.5, 0.0124)
    print_rows("Hoeffding (ages in [15, 90], +-0.5y)",
               [("samples", n)])
    assert n > 100  # range-based bounds are far looser than the CLT


def test_empirical_error_vs_sample_size(benchmark):
    """Error really shrinks as 1/sqrt(N) -- measured on a stream."""
    def measure():
        stream = NormalStream(mean=20.0, std=2.0, seed=0)
        data = [r.value for r in take(stream, 200_000)]
        truth = statistics.mean(data)
        rows = [("sample size", "median relative error")]
        results = {}
        for n in (100, 1_000, 10_000):
            errors = []
            for seed in range(15):
                reservoir = ReservoirSample(n, random.Random(seed))
                reservoir.extend(data)
                estimate = statistics.mean(reservoir.contents())
                errors.append(relative_error(estimate, truth))
            med = statistics.median(errors)
            results[n] = med
            rows.append((f"{n:,}", f"{med:.4%}"))
        print_rows("normal stream (easy case)", rows)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    # 100x more samples ~ 10x less error.
    assert results[10_000] < results[100] / 3


def test_heavy_tail_needs_big_samples(benchmark):
    """The net-worth phenomenon on a lognormal stream: at equal sample
    sizes, the heavy-tailed population's estimate is far worse."""
    def measure():
        n = 1000
        out = {}
        for label, stream in (
            ("normal (cv 0.1)", NormalStream(20.0, 2.0, seed=1)),
            ("lognormal (cv 5)", LogNormalStream(20.0, 100.0, seed=1)),
        ):
            data = [r.value for r in take(stream, 150_000)]
            truth = statistics.mean(data)
            errors = []
            for seed in range(25):
                reservoir = ReservoirSample(n, random.Random(seed))
                reservoir.extend(data)
                errors.append(relative_error(
                    statistics.mean(reservoir.contents()), truth))
            out[label] = statistics.median(errors)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [("population", "median rel. error at N=1000")]
    for label, err in results.items():
        rows.append((label, f"{err:.3%}"))
    print_rows("same sample size, different variance", rows)
    assert results["lognormal (cv 5)"] > 8 * results["normal (cv 0.1)"]
