"""Section 4.5.1 -- sizing the LIFO stacks.

Regenerates the stack-sizing analysis (worst-case sigma of 0.5*sqrt(B),
the ~1e-9 overflow probability of a 3*sqrt(B) stack, survival across
100,000 flushes) and validates it against the simulator: observed stack
high-water marks across long runs stay far inside the bound.

Note: the paper prints the 100,000-flush survival as "99.99990%";
(1 - 1e-9)^100,000 is 99.990% -- the printed figure drops a digit.  We
report the correct value (see EXPERIMENTS.md).
"""

import math

import pytest

from conftest import print_rows
from repro.analysis import (
    no_overflow_probability,
    overflow_probability,
    required_multiplier,
    worst_case_sigma,
)
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.storage.device import SimulatedBlockDevice
from repro.storage.disk_model import DiskParameters


def test_section4_numbers(benchmark):
    b = 10 ** 7
    sigma = worst_case_sigma(b)
    p = overflow_probability(b, 3.0)
    survive = no_overflow_probability(100_000, 3.0)
    rows = [
        ("quantity", "paper", "computed"),
        ("worst-case sigma (B = 1e7)", "0.5 sqrt(B) = 1581",
         f"{sigma:.0f}"),
        ("stack size 3 sqrt(B)", "six sigma", f"{3 * math.sqrt(b):.0f}"),
        ("per-subsample overflow P", "~1e-9", f"{p:.2e}"),
        ("no overflow in 100k flushes", "99.99990% (sic)",
         f"{100 * survive:.5f}%"),
    ]
    print_rows("Section 4.5.1 stack bounds", rows)
    assert sigma == pytest.approx(1581.1, abs=1)
    assert 5e-10 < p < 2e-9
    assert 0.9999 < survive < 0.99991


def test_multiplier_sweep(benchmark):
    """How much stack buys how much safety (design-choice ablation)."""
    def sweep():
        return [(m, overflow_probability(10 ** 7, m),
                 no_overflow_probability(100_000, m))
                for m in (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)]

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("multiplier", "P(overflow)", "P(100k flushes clean)")]
    for m, p, survive in table:
        rows.append((m, f"{p:.2e}", f"{survive:.6f}"))
    print_rows("stack multiplier ablation", rows)
    # Monotone: bigger stacks, safer runs; 3.0 is the sweet spot the
    # paper picks (first multiplier whose 100k survival is ~1).
    survivals = [s for _, _, s in table]
    assert survivals == sorted(survivals)
    assert survivals[-2] > 0.9999


def test_required_multiplier_for_risk_budgets(benchmark):
    rows = [("target P(overflow)", "required multiplier")]
    for target in (1e-6, 1e-9, 1e-12):
        m = required_multiplier(target)
        rows.append((f"{target:.0e}", f"{m:.2f}"))
        assert overflow_probability(10 ** 7, m) <= target * 1.1
    print_rows("inverse sizing", rows)


def test_observed_high_water_marks(benchmark):
    """Simulated stack excursions stay within the analytic sigma."""
    def run():
        config = GeometricFileConfig(
            capacity=50_000, buffer_capacity=2000, record_size=50,
            retain_records=False, admission="always", beta_records=200,
        )
        blocks = GeometricFile.required_blocks(config, 4096)
        device = SimulatedBlockDevice(
            blocks, DiskParameters(block_size=4096)
        )
        gf = GeometricFile(device, config, seed=11)
        gf.ingest(600_000)
        peak = max((s.max_stack_balance for s in gf.subsamples),
                   default=0)
        return peak, gf.stack_overflows

    peak, overflows = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = 3 * math.sqrt(2000)
    sigma = worst_case_sigma(2000)
    rows = [("observed peak", "1 sigma", "3 sqrt(B) bound", "overflows"),
            (peak, f"{sigma:.0f}", f"{bound:.0f}", overflows)]
    print_rows("simulated stack excursions (B = 2000, 300 flushes)",
               rows)
    assert peak <= bound
    assert overflows == 0


def test_measured_overflows_vs_multiplier(benchmark):
    """Undersized stacks actually overflow; 3 sqrt(B) does not.

    The analytic sweep above predicts the failure probabilities; this
    runs the simulator with deliberately small stacks and counts how
    often the high-water mark exceeds them.
    """
    def run():
        out = []
        for multiplier in (0.25, 0.5, 1.0, 3.0):
            config = GeometricFileConfig(
                capacity=30_000, buffer_capacity=1500, record_size=50,
                retain_records=False, admission="always",
                beta_records=150, stack_multiplier=multiplier,
            )
            blocks = GeometricFile.required_blocks(config, 4096)
            device = SimulatedBlockDevice(
                blocks, DiskParameters(block_size=4096)
            )
            gf = GeometricFile(device, config, seed=3)
            gf.ingest(400_000)
            out.append((multiplier, gf.stack_overflows, gf.flushes))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("multiplier", "overflow events", "flushes")]
    for multiplier, overflows, flushes in table:
        rows.append((multiplier, overflows, flushes))
    print_rows("observed stack overflows vs multiplier (B = 1500)",
               rows)
    by_multiplier = {m: o for m, o, _ in table}
    # Tiny stacks overflow; the paper's 3 sqrt(B) never does.
    assert by_multiplier[0.25] > 0
    assert by_multiplier[3.0] == 0
    overflow_counts = [o for _, o, _ in table]
    assert overflow_counts == sorted(overflow_counts, reverse=True)
