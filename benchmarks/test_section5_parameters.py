"""Section 5 -- choosing alpha and beta.

Regenerates every number in the paper's parameter discussion:

* the segment-count table for alpha in {0.99, 0.999} with a one-block
  beta (1029 / 10344 segments);
* the seek-time extrapolations (40 s vs 400 s of random I/O per 1 GB
  flush, against ~25 s of sequential transfer);
* Section 5.2's beta insensitivity (32 KB -> 1029 segments vs 1 MB ->
  687: "by increasing ... by a factor of 32, we are able to reduce the
  number of disk head movements by less than a factor of two");
* Lemma 1 (the file size identity pinning alpha to 1 - B/N).

Also runs the A2 ablation: segments per flush across a beta sweep.
"""

import pytest

from conftest import print_rows
from repro.analysis import geometric_flush_cost, seeks_per_flush, segments_per_flush
from repro.core.geometry import alpha_for, build_ladder, geometric_total


BUFFER = 10 ** 7          # 1 GB of 100 B records
BETA_BLOCK = 320          # 32 KB block of 100 B records


def test_section5_segment_table(benchmark):
    rows = [("alpha", "beta (records)", "paper", "computed")]
    cases = [(0.99, BETA_BLOCK, 1029), (0.999, BETA_BLOCK, 10344),
             (0.99, 10 ** 4, 687)]
    for alpha, beta, expected in cases:
        got = segments_per_flush(BUFFER, alpha, beta)
        rows.append((alpha, beta, expected, got))
        assert got == expected
    print_rows("Section 5.1/5.2 segments per subsample", rows)


def test_section5_seek_time_extrapolation(benchmark):
    rows = [("alpha", "seek seconds/flush", "transfer seconds/flush")]
    for alpha, paper_seeks in ((0.99, 40), (0.999, 400)):
        cost = geometric_flush_cost(BUFFER, 100, alpha, BETA_BLOCK)
        rows.append((alpha, f"{cost.seek_seconds:.0f}",
                     f"{cost.transfer_seconds:.0f}"))
        assert cost.seek_seconds == pytest.approx(paper_seeks, rel=0.1)
        assert cost.transfer_seconds == pytest.approx(25.0, rel=0.1)
    print_rows("Section 5.1 per-flush disk time (paper: ~40 s vs "
               "~400 s of seeks, ~25 s transfer)", rows)


def test_lemma_1_identity(benchmark):
    """B / (1 - alpha) = |R| for reservoirs across four magnitudes."""
    rows = [("N", "B", "alpha", "sum of subsample sizes")]
    for n, b in ((10 ** 5, 10 ** 3), (10 ** 6, 10 ** 4),
                 (10 ** 8, 10 ** 6), (10 ** 9, 10 ** 7)):
        alpha = alpha_for(n, b)
        total = geometric_total(b, alpha)
        rows.append((f"{n:,}", f"{b:,}", f"{alpha:.4f}", f"{total:,.0f}"))
        assert total == pytest.approx(n)
    print_rows("Lemma 1: the geometric file's size is |R|", rows)


def test_ablation_beta_sweep(benchmark):
    """A2: beta buys little -- the paper's reason to fix it at one
    block and 'search for a better way to increase performance'."""
    def sweep():
        out = []
        for beta in (320, 1000, 3200, 10_000, 32_000, 100_000):
            segments = segments_per_flush(BUFFER, 0.99, beta)
            seeks = seeks_per_flush(BUFFER, 0.99, beta)
            out.append((beta, segments, seeks))
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("beta (records)", "segments", "seeks/flush (x4)")]
    for beta, segments, seeks in table:
        rows.append((f"{beta:,}", segments, f"{seeks:.0f}"))
    print_rows("beta ablation at alpha = 0.99", rows)
    # 312x more memory per subsample buys < 3.2x fewer segments.
    first, last = table[0], table[-1]
    assert last[0] == 312.5 * first[0] or last[0] >= 300 * first[0]
    assert first[1] < 3.2 * last[1] * 1.6
    assert first[1] / last[1] < 4


def test_integer_ladders_match_analytics(benchmark):
    """The built integer ladders agree with the closed forms."""
    def build():
        out = []
        for alpha in (0.9, 0.99):
            ladder = build_ladder(10 ** 5, alpha, 320)
            out.append((alpha, ladder.n_disk_segments,
                        segments_per_flush(10 ** 5, alpha, 320),
                        ladder.total))
        return out

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [("alpha", "ladder segments", "analytic", "records")]
    for alpha, built, analytic, total in table:
        rows.append((alpha, built, analytic, f"{total:,}"))
        assert built == analytic
        assert total == 10 ** 5
    print_rows("integer ladder vs closed form (B = 100k)", rows)
