"""Section 6 -- speeding things up with multiple geometric files.

Regenerates the section's analysis and measurements:

* the omega multiplier and the "(omega/B) log2 B" amortised seek cost;
* "for alpha' = 0.9, we will need less than 100 segments per 1 GB
  buffer flush.  At 4 seeks per segment, this is only 4 seconds of
  random disk head movements to write 1 GB of new samples";
* "we can achieve alpha' = 0.9 by using only 1.1 TB of disk storage"
  for a 1 TB reservoir;
* the measured single-vs-multi seek gap on the simulator.
"""

import pytest

from conftest import print_rows
from repro.analysis import (
    files_needed,
    geometric_flush_cost,
    multi_file_storage_blowup,
    omega,
    segments_per_flush,
)
from repro.bench import experiment_1, run_until


BUFFER = 10 ** 7   # 1 GB of 100 B records
BETA = 320


def test_section6_headline_numbers(benchmark):
    segments = segments_per_flush(BUFFER, 0.9, BETA)
    cost = geometric_flush_cost(BUFFER, 100, 0.9, BETA)
    blowup = multi_file_storage_blowup(0.9)
    m = files_needed(10 ** 10, 10 ** 7, 0.9)  # 1 TB / 1 GB in records
    rows = [
        ("quantity", "paper", "computed"),
        ("segments per 1 GB flush", "< 100", segments),
        ("seek seconds per flush", "~4 s", f"{cost.seek_seconds:.1f}"),
        ("storage for 1 TB reservoir", "1.1 TB", f"{blowup:.2f} TB"),
        ("files m for alpha'=0.9 at ratio 1000", "(1-.9)/(1-.999)=100",
         m),
    ]
    print_rows("Section 6 analysis", rows)
    assert segments < 100
    assert cost.seek_seconds == pytest.approx(4.0, abs=0.5)
    assert blowup == pytest.approx(1.1)
    assert m == 100


def test_omega_table(benchmark):
    rows = [("alpha'", "omega", "segments per flush (B=1e7)")]
    for alpha_prime in (0.5, 0.8, 0.9, 0.95, 0.97):
        rows.append((alpha_prime, f"{omega(alpha_prime):.1f}",
                     segments_per_flush(BUFFER, alpha_prime, BETA)))
    print_rows("omega = 1/log2(1/alpha')", rows)
    # omega "can be made very small (down to 20 or so in practice)".
    assert omega(0.97) < 25


def test_measured_single_vs_multi(benchmark, scale):
    """The simulator's Experiment 1 gap between the two options."""
    def run():
        spec = experiment_1(scale=scale, seed=0)
        single = run_until(spec.make("geo file"), spec.horizon_seconds)
        multi = run_until(spec.make("multiple geo files"),
                          spec.horizon_seconds)
        return single, multi

    single, multi = benchmark.pedantic(run, rounds=1, iterations=1)
    spec = experiment_1(scale=scale, seed=0)
    rows = [
        ("option", "samples", "seeks", "seek-time share"),
        ("geo file", f"{single.final_samples:,}", f"{single.seeks:,}",
         f"{single.random_io_fraction:.0%}"),
        ("multiple geo files", f"{multi.final_samples:,}",
         f"{multi.seeks:,}", f"{multi.random_io_fraction:.0%}"),
    ]
    print_rows(f"single vs multi at scale 1/{scale}", rows)
    assert multi.final_samples > 2 * single.final_samples
    assert multi.random_io_fraction < single.random_io_fraction
