"""Section 7 -- biased sampling with the geometric file.

The paper gives no biased-sampling figure, but Sections 7.1-7.3 make
quantitative claims this benchmark verifies end to end:

* Definition 1: inclusion probability proportional to f(r);
* Lemma 2/3: the maintained true weights support exact inclusion
  probabilities and therefore unbiased Horvitz-Thompson estimates;
* the sensor-data motivation: with a recency-biased sample, a query
  over recent data has far more supporting records than a uniform
  sample gives it;
* overhead: the weight bookkeeping adds no disk I/O over the unbiased
  file (Algorithm 4 evicts uniformly; only admission changes).
"""

import statistics

import pytest

from conftest import print_rows
from repro.core.biased_file import BiasedGeometricFile
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.estimate import horvitz_thompson_count, relative_error
from repro.sampling.weights import exponential_recency
from repro.storage.device import SimulatedBlockDevice
from repro.storage.disk_model import DiskParameters
from repro.streams import SensorStream, take


def _make(weight_fn=None, capacity=2000, buffer_capacity=100, seed=0):
    # The unbiased comparison file uses the uniform N/i admission gate
    # (Algorithm 1); with f == 1 the biased file's admission probability
    # N*f/totalWeight reduces to exactly the same law.
    config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=50, retain_records=True, beta_records=10,
        admission="uniform",
    )
    blocks = GeometricFile.required_blocks(config, 4096)
    device = SimulatedBlockDevice(blocks, DiskParameters(block_size=4096))
    if weight_fn is None:
        return GeometricFile(device, config, seed=seed)
    return BiasedGeometricFile(device, config, weight_fn, seed=seed)


def test_recency_bias_and_recent_query_support(benchmark):
    def run():
        stream_len = 40_000
        records = take(SensorStream(n_sensors=200, seed=3), stream_len)
        cutoff = records[int(stream_len * 0.9)].timestamp
        horizon = records[-1].timestamp
        half_life = (horizon - records[0].timestamp) / 10.0

        biased = _make(exponential_recency(half_life))
        uniform = _make()
        for record in records:
            biased.offer(record)
            uniform.offer(record)
        recent_biased = sum(1 for r, _ in biased.items()
                            if r.timestamp >= cutoff)
        recent_uniform = sum(1 for r in uniform.sample()
                             if r.timestamp >= cutoff)
        return recent_biased, recent_uniform

    recent_biased, recent_uniform = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    rows = [("sample", "records in the last 10% of time"),
            ("uniform", recent_uniform),
            ("recency-biased", recent_biased)]
    print_rows("query support for recent data (capacity 2000)", rows)
    # The biased sample over-represents the window the sensor
    # motivation cares about by a wide margin.
    assert recent_biased > 3 * recent_uniform


def test_ht_estimates_remain_unbiased(benchmark):
    """Lemma 3 in action: stream-length estimates from biased samples."""
    def run():
        estimates = []
        for seed in range(12):
            bf = _make(exponential_recency(4000.0), capacity=1000,
                       buffer_capacity=50, seed=seed)
            for record in take(SensorStream(seed=seed), 20_000):
                bf.offer(record)
            est = horvitz_thompson_count(
                bf.items(), bf.total_weight, bf.capacity,
                predicate=lambda r: True,
            )
            estimates.append(est.value)
        return estimates

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = statistics.mean(estimates)
    rows = [("truth", "mean HT estimate", "relative error"),
            (20_000, f"{mean:,.0f}",
             f"{relative_error(mean, 20_000):.2%}")]
    print_rows("Horvitz-Thompson COUNT from recency-biased samples",
               rows)
    assert relative_error(mean, 20_000) < 0.1


def test_bias_overhead_is_negligible(benchmark):
    """Weight bookkeeping must not change the disk I/O pattern."""
    def run():
        records = take(SensorStream(seed=1), 30_000)
        plain = _make()
        for record in records:
            plain.offer(record)
        biased = _make(lambda r: 1.0)  # uniform weights, biased machinery
        for record in records:
            biased.offer(record)
        return plain, biased

    plain, biased = benchmark.pedantic(run, rounds=1, iterations=1)
    plain_stats = plain.device.model.stats
    biased_stats = biased.device.model.stats
    rows = [("structure", "flushes", "seeks/flush", "blocks/flush"),
            ("geometric file", plain.flushes,
             f"{plain_stats.seeks / plain.flushes:.1f}",
             f"{plain_stats.blocks_written / plain.flushes:.1f}"),
            ("biased geometric file", biased.flushes,
             f"{biased_stats.seeks / biased.flushes:.1f}",
             f"{biased_stats.blocks_written / biased.flushes:.1f}")]
    print_rows("per-flush I/O with and without weight bookkeeping",
               rows)
    # Different RNG consumption shifts flush counts slightly; the disk
    # work *per flush* must be identical up to noise.
    assert (biased_stats.seeks / biased.flushes
            == pytest.approx(plain_stats.seeks / plain.flushes,
                             rel=0.1))
    assert (biased_stats.blocks_written / biased.flushes
            == pytest.approx(
                plain_stats.blocks_written / plain.flushes, rel=0.1))
