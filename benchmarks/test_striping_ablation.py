"""Ablation -- the paper's multi-spindle arithmetic (Section 1 / 3.2).

The introduction prices a terabyte at five commodity spindles and
derives the virtual-memory option's ~250 records/second from their
combined ~500 head movements/second.  This ablation runs the actual
virtual-memory baseline over a striped five-spindle volume and a single
spindle, and shows the multi-geo option scaling with spindle count
(sequential bandwidth aggregates; random I/O does not).
"""

import pytest

from conftest import print_rows
from repro.baselines import DiskReservoirConfig, VirtualMemoryReservoir
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.storage import DiskParameters, StripedBlockDevice
from repro.storage.device import SimulatedBlockDevice

PARAMS = DiskParameters()  # the paper's measured disk


def test_virtual_memory_on_five_spindles(benchmark):
    """~50 records/second on one spindle, ~250 on five."""
    def run():
        out = {}
        config = DiskReservoirConfig(
            capacity=2_000_000, buffer_capacity=1000, record_size=100,
            pool_blocks=8,
        )
        blocks = VirtualMemoryReservoir.required_blocks(
            config, PARAMS.block_size
        )
        for n_disks in (1, 5):
            if n_disks == 1:
                device = SimulatedBlockDevice(blocks, PARAMS)
            else:
                device = StripedBlockDevice(blocks, n_disks, PARAMS)
            vm = VirtualMemoryReservoir(device, config, seed=0)
            vm.ingest(config.capacity)          # sequential fill
            fill_clock = vm.clock
            vm.ingest(20_000)                   # random-I/O steady state
            rate = 20_000 / (vm.clock - fill_clock)
            out[n_disks] = rate
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("spindles", "records/second", "paper")]
    rows.append((1, f"{rates[1]:.0f}", "~50 (500/5 movements, 2 each)"))
    rows.append((5, f"{rates[5]:.0f}", "~250"))
    print_rows("virtual-memory sampling rate vs spindle count", rows)
    assert rates[1] == pytest.approx(50, rel=0.2)
    assert rates[5] == pytest.approx(250, rel=0.2)


def test_multi_geo_scales_with_spindles(benchmark):
    """The sequential structure aggregates spindle bandwidth."""
    def run():
        out = {}
        config = MultiFileConfig(
            capacity=2_000_000, buffer_capacity=20_000, record_size=100,
            alpha_prime=0.9,
        )
        blocks = MultipleGeometricFiles.required_blocks(
            config, PARAMS.block_size
        )
        for n_disks in (1, 5):
            if n_disks == 1:
                device = SimulatedBlockDevice(blocks, PARAMS)
            else:
                device = StripedBlockDevice(blocks, n_disks, PARAMS)
            mf = MultipleGeometricFiles(device, config, seed=0)
            mf.ingest(2_000_000)                # fill
            fill_clock = mf.clock
            mf.ingest(2_000_000)                # steady state
            out[n_disks] = 2_000_000 / (mf.clock - fill_clock)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("spindles", "records/second")]
    for n_disks, rate in rates.items():
        rows.append((n_disks, f"{rate:,.0f}"))
    print_rows("multi-geo throughput vs spindle count", rows)
    # Sequential work parallelises; seeks only partially, so expect
    # a healthy (if sub-linear) speedup.
    assert rates[5] > 2 * rates[1]
