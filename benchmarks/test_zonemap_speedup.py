"""Extension benchmark -- zone-map index maintenance (Section 10).

The paper lists "efficient index maintenance for the geometric file, so
that samples with specific characteristics can be found quickly" as
future work.  This benchmark measures the zone-map implementation: the
fraction of subsamples a time-window query can skip, and the scan-work
reduction, as a function of window width.
"""

from conftest import print_rows
from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.zonemap import ZoneMapIndex
from repro.storage.device import SimulatedBlockDevice
from repro.storage.disk_model import DiskParameters
from repro.streams import SensorStream, take


def _loaded_file(stream_len=30_000, capacity=3000, seed=0):
    config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=150, record_size=50,
        retain_records=True, beta_records=15, admission="always",
    )
    blocks = GeometricFile.required_blocks(config, 4096)
    device = SimulatedBlockDevice(blocks, DiskParameters(block_size=4096))
    gf = GeometricFile(device, config, seed=seed)
    records = take(SensorStream(n_sensors=100, seed=seed), stream_len)
    for record in records:
        gf.offer(record)
    return gf, records


def test_pruning_vs_window_width(benchmark):
    def run():
        gf, records = _loaded_file()
        index = ZoneMapIndex(gf, field="timestamp")
        horizon = records[-1].timestamp
        out = []
        for window_fraction in (0.01, 0.05, 0.10, 0.25, 0.50, 1.00):
            low = horizon * (1 - window_fraction)
            matches = sum(1 for _ in index.query(low, horizon))
            stats = index.last_stats
            out.append((window_fraction, matches,
                        stats.records_scanned, stats.pruned_fraction))
        return out

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("window (of stream)", "matches", "records scanned",
             "subsamples pruned")]
    for fraction, matches, scanned, pruned in table:
        rows.append((f"last {fraction:.0%}", matches, scanned,
                     f"{pruned:.0%}"))
    print_rows("zone-map pruning vs time-window width", rows)

    # Narrow recent windows prune heavily; the full window prunes
    # nothing (every envelope intersects).
    assert table[0][3] > 0.5
    assert table[-1][3] == 0.0
    # Scan work is monotone in window width.
    scans = [row[2] for row in table]
    assert scans == sorted(scans)


def test_index_maintenance_costs_nothing_on_disk(benchmark):
    """Envelopes are computed from in-memory flush data: zero extra I/O."""
    def run():
        gf_plain, _ = _loaded_file(seed=1)
        gf_indexed, _ = _loaded_file(seed=1)
        ZoneMapIndex(gf_indexed, field="timestamp").refresh()
        return (gf_plain.device.model.stats.seeks,
                gf_indexed.device.model.stats.seeks)

    plain, indexed = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("seeks with and without index maintenance",
               [("plain", plain), ("indexed", indexed)])
    assert plain == indexed
