#!/usr/bin/env python3
"""Approximate query processing over a maintained sample (Sections 2, 9).

"Most of these algorithms could be viewed as potential users of a large
sample maintained as a geometric file" -- this example is such a user.
A skewed warehouse-style stream (zipfian category, lognormal amount)
flows into a geometric file; we then answer GROUP BY queries from the
sample and compare against exact answers, demonstrating:

* error bars that actually cover the truth;
* the Section 2 effect -- rare groups (small effective sample) get wide
  intervals, which is the case for very large samples;
* zone maps (the Section 10 extension) accelerating a time-window
  filter.

Run:
    python examples/approximate_query.py
"""

import os
import statistics

from repro import (
    GeometricFile,
    GeometricFileConfig,
    SampleQuery,
    SimulatedBlockDevice,
    ZoneMapIndex,
)
from repro.estimate import relative_error
from repro.storage.records import Record
from repro.streams import LogNormalStream, ZipfStream, take

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STREAM_LENGTH = 12_000 if _QUICK else 80_000
CAPACITY = 600 if _QUICK else 4_000
N_CATEGORIES = 12


def make_stream():
    """Orders: zipf-distributed category, lognormal amount."""
    categories = ZipfStream(N_CATEGORIES, exponent=1.3, seed=11)
    amounts = LogNormalStream(mean=100.0, std=250.0, seed=12)
    for cat_record, amount_record in zip(categories, amounts):
        yield Record(
            key=cat_record.key,
            value=amount_record.value,
            timestamp=cat_record.timestamp,
            payload=str(int(cat_record.value)).encode(),
        )


def category_of(record: Record) -> int:
    return int(record.payload)


def main() -> None:
    records = take(make_stream(), STREAM_LENGTH)

    config = GeometricFileConfig(
        capacity=CAPACITY, buffer_capacity=200, record_size=64,
        retain_records=True, beta_records=20, admission="uniform",
    )
    device = SimulatedBlockDevice(
        GeometricFile.required_blocks(config, 32 * 1024)
    )
    sample = GeometricFile(device, config, seed=1)
    for record in records:
        sample.offer(record)

    query = SampleQuery(sample.sample(), population_size=STREAM_LENGTH)
    print(f"maintained sample: {len(query):,} of {STREAM_LENGTH:,} "
          f"records ({sample.flushes} flushes, "
          f"{device.model.stats.seeks:,} seeks)\n")

    # -- GROUP BY category: estimated vs exact ---------------------------
    print(f"{'category':>8} {'exact avg':>10} {'estimate':>10} "
          f"{'95% interval':>22} {'n sampled':>10} {'covered':>8}")
    exact = {}
    for record in records:
        exact.setdefault(category_of(record), []).append(record.value)
    covered = 0
    groups = query.group_by(category_of, aggregate="avg",
                            min_group_size=2)
    for group in groups:
        truth = statistics.mean(exact[group.key])
        interval = group.interval(0.95)
        hit = interval.contains(truth)
        covered += hit
        print(f"{group.key:>8} {truth:>10.2f} "
              f"{group.estimate.value:>10.2f} "
              f"[{interval.low:>9.2f}, {interval.high:>9.2f}] "
              f"{group.n_sampled:>10} {'yes' if hit else 'NO':>8}")
    print(f"\n{covered}/{len(groups)} intervals cover the exact answer "
          f"(rare categories get honest, wide intervals)\n")

    # -- a SUM with scale-up ----------------------------------------------
    total = query.sum()
    truth_total = sum(r.value for r in records)
    print(f"SUM(amount) ~ {total.value:,.0f}  "
          f"(exact {truth_total:,.0f}, "
          f"error {relative_error(total.value, truth_total):.2%})")

    # -- zone-map accelerated time filter ---------------------------------
    index = ZoneMapIndex(sample, field="timestamp")
    cutoff = records[-1].timestamp * 0.9
    recent = [r.value for r in index.query(cutoff, records[-1].timestamp)]
    stats = index.last_stats
    print(f"\ntime-window filter via zone maps: scanned "
          f"{stats.records_scanned:,} records in "
          f"{stats.subsamples_scanned}/{stats.subsamples_total} "
          f"subsamples ({stats.pruned_fraction:.0%} pruned), "
          f"{len(recent)} matches")


if __name__ == "__main__":
    main()
