#!/usr/bin/env python3
"""The tiered AQP answer engine: memory first, disk only when needed.

The paper's Section 2 arithmetic says a broad aggregate needs only a
few hundred sample rows to hit a 5% error target -- far fewer than the
very large sample the geometric file maintains on disk.  The
:class:`repro.estimate.QueryPlanner` exploits that: every reservoir
front-end can carry a small memory-resident :class:`HotSubsample`
(kept coherent by the ingest hooks), and the planner answers from it
whenever its CLT bound already meets the target, escalating to a
right-sized disk draw only when it does not.

This example attaches a planner to a geometric file and shows:

* broad aggregates answered from memory, microseconds instead of a
  disk merge, with honest error bars;
* a highly selective predicate escalating (the Section 2 effect: tiny
  effective samples need many more rows), with the draw sized from
  the cache-observed variance;
* count-only ingestion breaking cache coherence and the next
  escalation healing it automatically.

Run:
    python examples/aqp_planner.py

See docs/AQP.md for the tier rules and the coherence protocol.
"""

import os
import time

import numpy as np

from repro import GeometricFile, GeometricFileConfig, SimulatedBlockDevice
from repro.estimate import QueryPlanner
from repro.storage.records import Record

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STREAM_LENGTH = 10_000 if _QUICK else 60_000
CAPACITY = 1_000 if _QUICK else 5_000
BUDGET = 2_048 if _QUICK else 4_096


def describe(label: str, answer, elapsed: float) -> None:
    interval = answer.interval
    print(f"  {label:<34} {answer.value:>14,.1f} "
          f"+/- {interval.half_width:>12,.1f}   "
          f"[{answer.tier:^5}] {elapsed * 1e3:>8.2f} ms"
          + (f"  (drew {answer.k_drawn}, {answer.reason})"
             if answer.tier == "disk" else ""))


def timed(method, **kwargs):
    t0 = time.perf_counter()
    answer = method(**kwargs)
    return answer, time.perf_counter() - t0


def main() -> None:
    config = GeometricFileConfig(
        capacity=CAPACITY, buffer_capacity=CAPACITY // 10, record_size=50,
        retain_records=True, admission="uniform",
    )
    device = SimulatedBlockDevice(
        GeometricFile.required_blocks(config, 32 * 1024))
    reservoir = GeometricFile(device, config, seed=7)

    # Attach the planner BEFORE ingest: the hot subsample then rides
    # the stream through the offer hooks and stays coherent for free.
    planner = QueryPlanner(reservoir, error=0.05, confidence=0.95,
                           budget=BUDGET, seed=7)

    print(f"streaming {STREAM_LENGTH:,} purchase records "
          f"(uniform amounts) into a {CAPACITY:,}-record geometric file")
    rng = np.random.default_rng(7)
    for start in range(0, STREAM_LENGTH, 2_000):
        n = min(2_000, STREAM_LENGTH - start)
        amounts = rng.uniform(0.0, 1000.0, size=n)
        reservoir.offer_batch([
            Record(key=start + i, value=float(amounts[i]), timestamp=0.0)
            for i in range(n)])
    print(f"hot subsample: {planner.cache.fill:,} of "
          f"{planner.cache.seen:,} stream records cached "
          f"(coherent={planner.cache.coherent})\n")

    print("broad aggregates (5% target -- a few hundred rows certify):")
    describe("AVG(amount)", *timed(planner.avg))
    describe("SUM(amount)", *timed(planner.sum))
    describe("COUNT(*)", *timed(planner.count))

    print("\na moderate range (60% of the stream still hits the cache):")
    describe("SUM(amount) WHERE 0<=amount<=600",
             *timed(planner.sum, where=("value", 0.0, 600.0)))

    print("\na rare predicate (1% tail) escalates to a sized disk draw:")
    describe("COUNT(*) WHERE amount>=990",
             *timed(planner.count, where=("value", 990.0, 1000.0)))

    print("\ncount-only ingest breaks coherence; the next query heals it:")
    planner.cache.observe_count(STREAM_LENGTH // 10)
    describe("AVG(amount)  (cache incoherent)", *timed(planner.avg))
    describe("AVG(amount)  (healed, 8% target)",
             *timed(planner.avg, error=0.08))

    print(f"\nplanner: {planner.queries} queries, "
          f"{planner.hits} cache hits "
          f"({planner.hit_rate:.0%} hit rate), "
          f"{planner.escalations} escalations, "
          f"{planner.cache.refreshes} cache refresh(es)")


if __name__ == "__main__":
    main()
