#!/usr/bin/env python3
"""The serving layer: a reservoir behind a real TCP server
(docs/SERVING.md).

A 4-shard :class:`ShardedReservoir` goes behind a
:class:`ReservoirServer` on an ephemeral port.  Concurrent async
writers stream sensor batches while readers draw uniform merged
samples mid-ingest -- reads are snapshot cuts and never block behind
writes.  A deliberately tight per-session token bucket shows
backpressure arriving as data (``rate_limited`` + ``retry_after``, the
429 idiom) and the client SDK absorbing it by sleeping exactly the
server-suggested backoff.  Shutdown is a drain: the engine is
checkpointed, and reopening its root proves every acknowledged record
survived.

Run:
    python examples/client_server.py
"""

import asyncio
import os
import tempfile

from repro import GeometricFileConfig
from repro.serve import AsyncServeClient, ReservoirServer, ServerConfig
from repro.service import ShardedReservoir
from repro.streams import SensorStream, take

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STREAM_LENGTH = 3_000 if _QUICK else 20_000
BATCH = 250 if _QUICK else 1_000
CAPACITY_PER_SHARD = 300 if _QUICK else 1_500
BUFFER_PER_SHARD = 30 if _QUICK else 150
SAMPLE_K = 100 if _QUICK else 400
WRITERS = 3
READER_DRAWS = 5
SHARDS = 4


def banner(text):
    print()
    print(text)
    print("-" * len(text))


def make_engine(root):
    config = GeometricFileConfig(
        capacity=CAPACITY_PER_SHARD,
        buffer_capacity=BUFFER_PER_SHARD,
        record_size=64,
        retain_records=True,
        admission="uniform",
    )
    return ShardedReservoir(root, config, shards=SHARDS, pool="inline",
                            seed=42)


async def writer(host, port, batches):
    """Stream batches over one session; the SDK absorbs throttling."""
    async with await AsyncServeClient.connect(host, port) as client:
        admitted = 0
        for batch in batches:
            admitted += await client.offer_batch(batch)
        return admitted, client.retries


async def reader(host, port):
    """Draw merged uniform samples while the writers are mid-stream."""
    async with await AsyncServeClient.connect(host, port) as client:
        while (await client.snapshot(0))[1] < 2 * SAMPLE_K:
            await asyncio.sleep(0.01)
        draws = []
        for _ in range(READER_DRAWS):
            records, seen = await client.snapshot(SAMPLE_K)
            draws.append((len(records), seen))
        return draws


async def drive(server, records):
    host, port = server.address
    per_writer = [records[i::WRITERS] for i in range(WRITERS)]
    batched = [[chunk[start:start + BATCH]
                for start in range(0, len(chunk), BATCH)]
               for chunk in per_writer]
    results = await asyncio.gather(
        *(writer(host, port, batches) for batches in batched),
        reader(host, port))
    return results[:WRITERS], results[WRITERS]


async def serve_and_drive(engine, records):
    # A tight bucket so the throttle is actually visible in a demo run.
    server = ReservoirServer(engine, ServerConfig(rate_rps=25.0,
                                                 rate_burst=2.0))
    await server.start()
    try:
        return await drive(server, records)
    finally:
        await server.shutdown()  # graceful drain: checkpoint included


def main():
    stream = SensorStream(n_sensors=400, n_regions=8, seed=7)
    records = take(stream, STREAM_LENGTH)

    banner(f"1. {SHARDS}-shard engine behind a TCP server, "
           f"{WRITERS} writers + 1 reader")
    print(f"  stream: {STREAM_LENGTH:,} sensor readings in "
          f"batches of {BATCH:,}, {WRITERS} concurrent sessions")
    print("  per-session rate limit: 25 req/s (burst 2)")

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as root:
        engine = make_engine(root)
        try:
            written, draws = asyncio.run(serve_and_drive(engine, records))
        finally:
            engine.close()

        banner("2. Backpressure arrived as data, not as a stuck socket")
        total = sum(admitted for admitted, _ in written)
        retries = sum(r for _, r in written)
        for i, (admitted, session_retries) in enumerate(written):
            print(f"  writer {i}: {admitted:,} records acknowledged, "
                  f"{session_retries} rate-limit retries")
        print(f"  total acknowledged: {total:,} / {STREAM_LENGTH:,}"
              f"  (client slept exactly the server's retry_after "
              f"{retries} times)")

        banner("3. Reads interleaved with ingest, never blocked")
        for drawn, seen in draws:
            print(f"  drew {drawn} records -- a uniform sample of the "
                  f"{seen:,} readings seen at that instant")

        banner("4. Drain-on-shutdown: reopen the root and count")
        with make_engine(root) as reopened:
            seen = reopened.stats().seen
            print(f"  reopened engine has seen = {seen:,} "
                  f"({'exact' if seen == total else 'MISMATCH'}) -- "
                  f"every acknowledged record survived the shutdown")
        print()
        print("  (bit-exactness of served vs direct calls is asserted "
              "in tests/test_serve.py via InlineTransport)")


if __name__ == "__main__":
    main()
