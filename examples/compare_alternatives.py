#!/usr/bin/env python3
"""Re-run the paper's Figure 7 (a) comparison and print the chart.

All five alternatives from Sections 3-6 maintain the same reservoir
from the same firehose; the simulated disk clock decides how many
records each one manages to absorb.  This is the library's benchmark
harness driven as an application -- the same thing `repro-bench fig7a`
does, condensed.

Run:
    python examples/compare_alternatives.py            # 1/200 scale, fast
    python examples/compare_alternatives.py --scale 1  # paper scale
"""

import argparse
import time

from repro.bench import (
    ALTERNATIVE_NAMES,
    ascii_chart,
    experiment_1,
    io_summary_table,
    run_until,
    throughput_table,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=int, default=200,
                        help="record-count divisor (1 = paper scale)")
    args = parser.parse_args()

    spec = experiment_1(scale=args.scale, seed=0)
    print(f"Experiment 1 at scale 1/{args.scale}: "
          f"{spec.capacity:,} x {spec.record_size} B reservoir, "
          f"{spec.buffer_capacity:,}-record buffer, "
          f"{spec.horizon_seconds / 3600:.2f} simulated hours\n")

    results = []
    for name in ALTERNATIVE_NAMES:
        t0 = time.time()
        result = run_until(spec.make(name), spec.horizon_seconds)
        print(f"  {name:<20} done in {time.time() - t0:5.1f}s wall "
              f"({result.final_samples:,} samples)")
        results.append(result)

    print()
    print(throughput_table(results, spec.horizon_seconds))
    print(io_summary_table(results))
    print(ascii_chart(results, spec.horizon_seconds))


if __name__ == "__main__":
    main()
