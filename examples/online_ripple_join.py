#!/usr/bin/env python3
"""Online aggregation and a ripple join over geometric-file samples.

Section 9: "a sample maintained as a geometric file could easily be
used as input to a ripple join or online aggregation."  This example
does exactly that:

1. two streams -- orders (zipf-distributed customer ids) and customers
   (one record per id) -- each feed their own geometric file;
2. online aggregation over the orders sample shows the running AVG with
   its interval shrinking, the stop-when-good-enough experience;
3. a ripple join across the two samples progressively estimates the
   join size |orders JOIN customers| without materialising it, and the
   estimate is compared to the exact answer.

Run:
    python examples/online_ripple_join.py
"""

import os
import random

from repro import (
    GeometricFile,
    GeometricFileConfig,
    SimulatedBlockDevice,
    ZipfStream,
)
from repro.estimate import RippleJoin, online_avg, relative_error
from repro.storage.records import Record
from repro.streams import take

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
N_ORDERS = 8_000 if _QUICK else 60_000
N_CUSTOMERS = 300 if _QUICK else 2_000
ORDER_SAMPLE = 800 if _QUICK else 5_000
CUSTOMER_SAMPLE = 150 if _QUICK else 1_000


def order_stream():
    """Orders: value = customer id (zipfian), amount in the payload."""
    rng = random.Random(21)
    for record in ZipfStream(N_CUSTOMERS, exponent=1.2, seed=20):
        yield Record(key=record.key, value=record.value,
                     timestamp=record.timestamp,
                     payload=str(rng.randrange(5, 500)).encode())


def customer_stream():
    """Customers: one record per id; value = the id."""
    for i in range(N_CUSTOMERS):
        yield Record(key=i, value=float(i + 1), timestamp=float(i))


def build_sample(stream, n_stream, capacity, seed):
    config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=max(20, capacity // 20),
        record_size=64, retain_records=True,
        beta_records=max(4, capacity // 200), admission="uniform",
    )
    device = SimulatedBlockDevice(
        GeometricFile.required_blocks(config, 32 * 1024)
    )
    gf = GeometricFile(device, config, seed=seed)
    for record in take(stream, n_stream):
        gf.offer(record)
    return gf


def main() -> None:
    print(f"building samples: {ORDER_SAMPLE:,} of {N_ORDERS:,} orders, "
          f"{CUSTOMER_SAMPLE:,} of {N_CUSTOMERS:,} customers ...")
    orders = build_sample(order_stream(), N_ORDERS, ORDER_SAMPLE, seed=1)
    customers = build_sample(customer_stream(), N_CUSTOMERS,
                             CUSTOMER_SAMPLE, seed=2)

    # -- online aggregation: watch the interval shrink -------------------
    print("\nonline AVG(order amount) over the orders sample:")
    order_sample = orders.sample()
    amount = lambda r: float(r.payload)  # noqa: E731
    for n_seen, estimate in online_avg(order_sample, value=amount,
                                       every=len(order_sample) // 5,
                                       rng=random.Random(3)):
        interval = estimate.interval(0.95)
        print(f"  after {n_seen:>6,} records: "
              f"{estimate.value:8.2f}  +-{interval.half_width:6.2f}")

    # -- ripple join -------------------------------------------------------
    print("\nripple join: |orders JOIN customers| (on customer id)")
    exact = 0
    customer_keys = {r.value for r in customers.sample()}
    for record in order_sample:
        if record.value in customer_keys:
            exact += 1
    exact_scaled = exact * (N_ORDERS / len(order_sample)) \
        * (N_CUSTOMERS / len(customer_keys))

    ripple = RippleJoin(
        order_sample, customers.sample(),
        left_key=lambda r: r.value, right_key=lambda r: r.value,
        left_population=N_ORDERS, right_population=N_CUSTOMERS,
        rng=random.Random(4),
    )
    for steps, estimate in ripple.snapshots(
            every=max(10, len(order_sample) // 6)):
        interval = estimate.interval(0.95)
        print(f"  after {steps:>6,} ripple steps: "
              f"{estimate.value:12,.0f}  "
              f"[{interval.low:12,.0f}, {interval.high:12,.0f}]")
    final = ripple.estimate_count()
    print(f"\nfinal estimate {final.value:,.0f} vs exhaustive "
          f"sample-join {exact_scaled:,.0f} "
          f"(diff {relative_error(final.value, exact_scaled):.2%}); "
          f"every order joins one customer, so truth ~ {N_ORDERS:,}")


if __name__ == "__main__":
    main()
