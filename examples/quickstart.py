#!/usr/bin/env python3
"""Quickstart: maintain a disk-resident reservoir sample from a stream.

The setting of the paper in fifty lines: a stream produces far more
records than memory can hold; we keep an always-valid uniform random
sample of ONE MILLION records on disk using a memory buffer of only ten
thousand, then answer a query from it with error bars.

Run:
    python examples/quickstart.py
"""

import os

from repro import (
    GeometricFile,
    GeometricFileConfig,
    SampleQuery,
    SimulatedBlockDevice,
    UniformStream,
)
from repro.streams import take

# REPRO_EXAMPLE_QUICK=1 shrinks the workload ~50x (used by CI smoke
# tests); the output narrative is unchanged.
_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
N = 20_000 if _QUICK else 1_000_000
B = 500 if _QUICK else 10_000
STREAM = 100_000 if _QUICK else 5_000_000


def main() -> None:
    # -- configure the sample: N = 1,000,000 records, B = 10,000 -------
    config = GeometricFileConfig(
        capacity=N,                # reservoir size N (records)
        buffer_capacity=B,         # in-memory buffer B (records)
        record_size=50,            # the paper's small-record workload
        retain_records=True,       # keep payloads so we can query
        admission="uniform",       # Algorithm 1's N/i gate
    )
    blocks = GeometricFile.required_blocks(config, block_size=32 * 1024)
    device = SimulatedBlockDevice(blocks, retain_data=False)
    sample = GeometricFile(device, config, seed=42)
    print(f"geometric file: alpha = {sample.alpha:.4f}, "
          f"{sample.ladder.n_disk_segments} segments per flush, "
          f"{blocks * 32 // 1024} MiB on disk")

    # -- stream millions of records past it ----------------------------
    stream = UniformStream(low=0.0, high=100.0, seed=7)
    for record in take(stream, STREAM):
        sample.offer(record)
    sample.check_invariants()
    print(f"stream position: {sample.seen:,} records seen, "
          f"{sample.samples_added:,} admitted, "
          f"{sample.flushes} buffer flushes, "
          f"{device.model.stats.seeks:,} head movements, "
          f"{sample.clock:.1f} s of simulated disk time")

    # -- the reservoir is a true uniform sample at any instant ---------
    snapshot = sample.sample()
    print(f"snapshot: {len(snapshot):,} records "
          f"(all distinct: {len({r.key for r in snapshot}) == len(snapshot)})")

    # -- query it with error bars ---------------------------------------
    query = SampleQuery(snapshot, population_size=sample.seen)
    average = query.avg()
    interval = average.interval(confidence=0.95)
    print(f"AVG(value) ~ {average.value:.3f} "
          f"(95% CI [{interval.low:.3f}, {interval.high:.3f}]; "
          f"true mean is 50.0)")

    selective = query.count(lambda r: r.value < 1.0)
    print(f"COUNT(value < 1)  ~ {selective.value:,.0f} of "
          f"{sample.seen:,}  (truth ~ {sample.seen / 100:,.0f})")
    assert interval.low < 50.0 < interval.high or _QUICK


if __name__ == "__main__":
    main()
