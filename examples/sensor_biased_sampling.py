#!/usr/bin/env python3
"""Biased sampling over a sensor stream (paper Section 7).

The paper's motivating scenario for biased sampling: "in sensor data
management, queries might refer to recent sensor readings far more
frequently than older ones".  This example maintains two disk-resident
samples of the same sensor stream side by side --

* a *uniform* geometric file, and
* a *recency-biased* one (exponential weights, configurable half-life)

-- then answers a "what is the average reading over the last 5% of
time?" query from both.  The biased sample has an order of magnitude
more supporting records in the window; and thanks to the true-weight
machinery of Section 7.3 (Horvitz-Thompson reweighting), it can still
answer *whole-stream* questions without bias.

Run:
    python examples/sensor_biased_sampling.py
"""

import os
import statistics

from repro import GeometricFile, GeometricFileConfig, SimulatedBlockDevice
from repro.core.biased_file import BiasedGeometricFile
from repro.estimate import horvitz_thompson_count, relative_error
from repro.sampling.weights import exponential_recency
from repro.streams import SensorStream, take

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STREAM_LENGTH = 10_000 if _QUICK else 60_000
CAPACITY = 500 if _QUICK else 3_000


def build(weight_fn=None, seed=0):
    config = GeometricFileConfig(
        capacity=CAPACITY, buffer_capacity=150, record_size=64,
        retain_records=True, beta_records=15, admission="uniform",
    )
    blocks = GeometricFile.required_blocks(config, block_size=32 * 1024)
    device = SimulatedBlockDevice(blocks)
    if weight_fn is None:
        return GeometricFile(device, config, seed=seed)
    return BiasedGeometricFile(device, config, weight_fn, seed=seed)


def main() -> None:
    print(f"streaming {STREAM_LENGTH:,} sensor readings "
          f"(100 sensors, 4 regions) ...")
    records = take(SensorStream(n_sensors=100, n_regions=4, seed=3),
                   STREAM_LENGTH)
    horizon = records[-1].timestamp
    half_life = horizon / 10.0

    uniform = build()
    biased = build(exponential_recency(half_life))
    for record in records:
        uniform.offer(record)
        biased.offer(record)

    # -- the recent-window query -----------------------------------------
    cutoff = horizon * 0.95
    truth = statistics.mean(r.value for r in records
                            if r.timestamp >= cutoff)

    uniform_window = [r.value for r in uniform.sample()
                      if r.timestamp >= cutoff]
    biased_window = [r.value for r, _w in biased.items()
                     if r.timestamp >= cutoff]

    print(f"\nquery: AVG(reading) over the last 5% of time "
          f"(truth {truth:.3f})")
    for label, window in (("uniform sample", uniform_window),
                          ("recency-biased sample", biased_window)):
        if len(window) >= 2:
            estimate = statistics.mean(window)
            print(f"  {label:<22} {len(window):>5} supporting records, "
                  f"estimate {estimate:.3f} "
                  f"(error {relative_error(estimate, truth):.2%})")
        else:
            print(f"  {label:<22} {len(window):>5} supporting records "
                  f"-- too few to estimate!")
    print(f"  -> the biased sample supports the recent-data query with "
          f"{len(biased_window) / max(1, len(uniform_window)):.0f}x "
          f"the records")

    # -- Section 7.3: the biased sample still answers global queries ----
    estimate = horvitz_thompson_count(
        biased.items(), biased.total_weight, biased.capacity,
        predicate=lambda r: True,
    )
    print(f"\nHorvitz-Thompson stream-length estimate from the biased "
          f"sample: {estimate.value:,.0f} "
          f"(truth {STREAM_LENGTH:,}; "
          f"error {relative_error(estimate.value, STREAM_LENGTH):.2%})")
    print(f"weight-overflow rescalings along the way: "
          f"{biased.overflow_events}")


if __name__ == "__main__":
    main()
