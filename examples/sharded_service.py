#!/usr/bin/env python3
"""The sharded sampling service: parallel ingest, uniform merged
queries, and surviving a shard crash (docs/SERVICE.md).

A sensor stream flows through a 4-shard :class:`ShardedReservoir` --
four worker processes, each maintaining its own checkpointed geometric
file on its own (simulated) spindle, fed hash-partitioned batches so
every sensor has a home shard.  Mid-stream we answer an approximate
SUM over *everything seen so far* from one merged uniform sample, with
CLT error bars checked against the exact running truth.  Then chaos: a
shard worker is SIGKILLed mid-stream, and the supervisor recovers it
from its last checkpoint plus journal replay -- the final record count
reconciles exactly, nothing lost, nothing double-counted.

Run:
    python examples/sharded_service.py
"""

import os
import tempfile

from repro import GeometricFileConfig
from repro.service import ShardedReservoir
from repro.streams import SensorStream, take

_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STREAM_LENGTH = 6_000 if _QUICK else 40_000
BATCH = 500 if _QUICK else 1_000
CAPACITY_PER_SHARD = 400 if _QUICK else 2_000
BUFFER_PER_SHARD = 40 if _QUICK else 200
SAMPLE_K = 150 if _QUICK else 600
SHARDS = 4


def banner(text):
    print()
    print(text)
    print("-" * len(text))


def show_estimate(label, estimate, truth):
    interval = estimate.interval(0.95)
    hit = "covers" if interval.contains(truth) else "MISSES"
    print(f"  {label}: {estimate.value:,.0f}  "
          f"+/- {interval.half_width:,.0f} (95%)   "
          f"exact {truth:,.0f}  -> interval {hit} the truth")


def main():
    stream = SensorStream(n_sensors=400, n_regions=8, seed=7)
    records = take(stream, STREAM_LENGTH)
    config = GeometricFileConfig(
        capacity=CAPACITY_PER_SHARD,
        buffer_capacity=BUFFER_PER_SHARD,
        record_size=64,
        retain_records=True,
        admission="uniform",
    )

    banner(f"1. A {SHARDS}-shard service ({SHARDS} worker processes)")
    print(f"  per-shard reservoir: {CAPACITY_PER_SHARD:,} records "
          f"(service capacity {SHARDS * CAPACITY_PER_SHARD:,})")
    print(f"  stream: {STREAM_LENGTH:,} sensor readings in "
          f"batches of {BATCH:,}, hash-partitioned by sensor id")

    with tempfile.TemporaryDirectory(prefix="repro-service-") as root, \
            ShardedReservoir(root, config, shards=SHARDS, seed=42,
                             checkpoint_batches=2) as service:
        truth = 0.0
        offered = 0
        killed = False
        for start in range(0, STREAM_LENGTH, BATCH):
            batch = records[start:start + BATCH]
            service.offer_batch(batch)
            truth += sum(r.value for r in batch)
            offered += len(batch)

            if offered >= STREAM_LENGTH // 3 and not killed:
                banner("2. Mid-stream AQP from one merged uniform sample")
                estimate = service.estimate_sum(SAMPLE_K)
                show_estimate(f"SUM over {offered:,} readings",
                              estimate, truth)

                banner("3. Chaos: SIGKILL shard 2's worker process")
                service.kill_shard(2, hard=True)
                killed = True
                print("  shard 2 is dead; ingest continues -- the "
                      "supervisor recovers it on first contact")

        banner("4. After recovery: the books balance exactly")
        stats = service.stats()
        print(f"  offered {offered:,} readings; service seen = "
              f"{stats.seen:,} "
              f"({'exact' if stats.seen == offered else 'MISMATCH'})")
        print(f"  per-shard seen: {stats.extra['seen_per_shard']}")
        print(f"  recoveries: {service.recoveries} "
              f"(last took {service.last_recovery_seconds * 1000:.1f} ms:"
              f" respawn + checkpoint restore + journal replay)")
        print(f"  journal depth now: {service.journal_depth} "
              f"unacknowledged batches")

        banner("5. Final merged sample and estimate")
        sample = service.sample(SAMPLE_K)
        regions = sorted({stream.region_of(r.key) for r in sample})
        print(f"  drew {len(sample)} records, uniform over all "
              f"{stats.seen:,} readings, spanning regions {regions}")
        show_estimate(f"SUM over {offered:,} readings",
                      service.estimate_sum(SAMPLE_K), truth)
        print()
        print("  (uniformity of the merged draw is chi-square tested "
              "in tests/test_service.py)")


if __name__ == "__main__":
    main()
