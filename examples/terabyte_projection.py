#!/usr/bin/env python3
"""The paper's terabyte scenario, end to end on the simulated disk.

Section 6 closes with: "If we wish to maintain a 1 TB reservoir of
100 B samples with 1 GB of memory, we can achieve alpha' = 0.9 by using
only 1.1 TB of disk storage in total.  For alpha' = 0.9, we will need
less than 100 segments per 1 GB buffer flush.  At 4 seeks per segment,
this is only 4 seconds of random disk head movements to write 1 GB of
new samples to disk."

This example checks every one of those numbers with the analytical
model, then *runs* the configuration (count-only mode, scaled 1/100 so
it finishes in seconds) and compares what the simulator measures against
what a single-geometric-file deployment would suffer.

Run:
    python examples/terabyte_projection.py
"""

from repro import (
    DiskParameters,
    GeometricFile,
    GeometricFileConfig,
    MultiFileConfig,
    MultipleGeometricFiles,
    SimulatedBlockDevice,
)
from repro.analysis import (
    files_needed,
    geometric_flush_cost,
    multi_file_storage_blowup,
    segments_per_flush,
)

TB = 1024 ** 4
GB = 1024 ** 3
RECORD = 100

PAPER_RESERVOIR = TB // RECORD      # 1 TB of 100 B records
PAPER_BUFFER = GB // RECORD         # 1 GB buffer
BETA = 320                          # one 32 KB block


def analytic_section() -> None:
    print("== the paper's arithmetic, recomputed ==")
    m = files_needed(PAPER_RESERVOIR, PAPER_BUFFER, 0.9)
    segments = segments_per_flush(PAPER_BUFFER, 0.9, BETA)
    cost = geometric_flush_cost(PAPER_BUFFER, RECORD, 0.9, BETA)
    blowup = multi_file_storage_blowup(0.9)
    alpha = 1 - PAPER_BUFFER / PAPER_RESERVOIR
    single_segments = segments_per_flush(PAPER_BUFFER, alpha, BETA)
    single_cost = geometric_flush_cost(PAPER_BUFFER, RECORD, alpha, BETA)

    print(f"  Lemma 1 pins a single file to alpha = {alpha:.4f} "
          f"-> {single_segments:,} segments per flush, "
          f"{single_cost.seek_seconds:.0f} s of seeks per GB")
    print(f"  striping over m = {m} files gives alpha' = 0.9 "
          f"-> {segments} segments per flush "
          f"(paper: 'less than 100')")
    print(f"  seek time per 1 GB flush: {cost.seek_seconds:.1f} s "
          f"(paper: 'only 4 seconds'), plus "
          f"{cost.transfer_seconds:.0f} s of sequential transfer")
    print(f"  total disk: {blowup:.1f} TB for the 1 TB reservoir "
          f"(paper: '1.1 TB')")


def simulated_section(scale: int = 100) -> None:
    print(f"\n== the same configuration, run for one simulated hour "
          f"(counts scaled 1/{scale}) ==")
    capacity = PAPER_RESERVOIR // scale
    buffer = PAPER_BUFFER // scale
    params = DiskParameters()  # the paper's measured disk
    horizon = 3600.0

    single_config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer, record_size=RECORD,
    )
    single_device = SimulatedBlockDevice(
        GeometricFile.required_blocks(single_config, params.block_size),
        params,
    )
    single = GeometricFile(single_device, single_config, seed=0)

    multi_config = MultiFileConfig(
        capacity=capacity, buffer_capacity=buffer, record_size=RECORD,
        alpha_prime=0.9,
    )
    multi_device = SimulatedBlockDevice(
        MultipleGeometricFiles.required_blocks(multi_config,
                                               params.block_size),
        params,
    )
    multi = MultipleGeometricFiles(multi_device, multi_config, seed=0)

    for structure in (single, multi):
        while structure.clock < horizon:
            structure.ingest(buffer)

    for label, structure, device in (
        ("single geometric file", single, single_device),
        (f"{multi.n_files} geometric files", multi, multi_device),
    ):
        stats = device.model.stats
        rate = structure.samples_added * RECORD / structure.clock / 2 ** 20
        print(f"  {label:<22} {structure.samples_added:>13,} samples"
              f"  {stats.seeks:>10,} seeks"
              f"  {100 * stats.random_io_fraction:5.1f}% seek time"
              f"  {rate:6.1f} MiB/s effective")
    speedup = multi.samples_added / single.samples_added
    print(f"  -> multi-file speedup: {speedup:.1f}x "
          f"(widens further at full scale; see EXPERIMENTS.md)")


def main() -> None:
    import os

    analytic_section()
    scale = 1000 if os.environ.get("REPRO_EXAMPLE_QUICK") else 100
    simulated_section(scale=scale)


if __name__ == "__main__":
    main()
