#!/usr/bin/env python3
"""Weighted and windowed sampling laws over the geometric file.

The paper's structure maintains a *uniform* reservoir; the pluggable
``SamplingLaw`` engine re-targets the same disk machinery -- buffer,
segment ladder, batched flushes -- at three other laws
(docs/SAMPLING_LAWS.md):

* ``law="aexpj"``   Efraimidis-Spirakis weighted-without-replacement:
                    inclusion probability proportional to a per-record
                    weight (here: the transaction amount).
* ``law="wr"``      weighted *with*-replacement: N exchangeable slots,
                    heavy records may occupy several.
* ``law="window"``  a uniform sample of the last W stream records.

We push one skewed payment stream through all four laws and compare
what each sample is good for: the uniform sample estimates the average
payment, the amount-weighted sample estimates *share-of-revenue*
statistics with far fewer rows, and the windowed sample answers
"what is happening right now".

Run:
    python examples/weighted_sampling.py
"""

import math
import os
import random

from repro import GeometricFile, GeometricFileConfig, Record, \
    SimulatedBlockDevice

# REPRO_EXAMPLE_QUICK=1 shrinks the workload ~50x (used by CI smoke
# tests); the output narrative is unchanged.
_QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
STREAM = 40_000 if _QUICK else 2_000_000
N = 1_000 if _QUICK else 20_000
B = 100 if _QUICK else 2_000
WINDOW = STREAM // 8
BATCH = 2_000

LAWS = (
    ("uniform", ()),
    ("aexpj", (("weight", "value"),)),
    ("wr", (("weight", "value"),)),
    # Sized so the expected candidate need s*(1 + ln(W/s)) fits the
    # N-record budget (docs/SAMPLING_LAWS.md).
    ("window", (("window", WINDOW), ("sample_size", N // 8))),
)


def make_file(law: str, law_params: tuple) -> GeometricFile:
    config = GeometricFileConfig(
        capacity=N,
        buffer_capacity=B,
        record_size=50,
        retain_records=True,       # non-uniform victims are by content
        admission="uniform",       # Algorithm 1's N/i gate (the
                                   # non-uniform laws supersede this)
        law=law,
        law_params=law_params,
    )
    blocks = GeometricFile.required_blocks(config, block_size=32 * 1024)
    device = SimulatedBlockDevice(blocks, retain_data=False)
    return GeometricFile(device, config, seed=42)


def payment_stream(n: int, seed: int = 7):
    """Lognormal payment amounts: a few records carry most revenue.

    Late in the stream the mean amount doubles -- a drift only the
    windowed sample can see.
    """
    rng = random.Random(seed)
    for i in range(n):
        amount = math.exp(rng.gauss(3.0, 1.2))
        if i >= n - n // 4:        # recent regime: prices doubled
            amount *= 2.0
        yield Record(key=i, value=round(amount, 2), timestamp=float(i))


def main() -> None:
    files = {law: make_file(law, params) for law, params in LAWS}

    # -- one stream, four laws, identical batched ingest ----------------
    batch = []
    for record in payment_stream(STREAM):
        batch.append(record)
        if len(batch) == BATCH:
            for gf in files.values():
                gf.offer_many(batch)
            batch.clear()
    for gf in files.values():
        if batch:
            gf.offer_many(batch)
        gf.check_invariants()
    print(f"stream: {STREAM:,} payments, reservoir N = {N:,}, "
          f"buffer B = {B:,}, window W = {WINDOW:,}\n")

    # -- what each law's sample looks like ------------------------------
    true_mean = sum(r.value for r in payment_stream(STREAM)) / STREAM
    for law, gf in files.items():
        sample = gf.sample()
        mean = sum(r.value for r in sample) / len(sample)
        extra = gf.stats().extra.get("law") or {}
        detail = ""
        if law == "aexpj":
            detail = (f"  admission threshold log T = "
                      f"{extra['log_threshold']:.2e}")
        elif law == "wr":
            distinct = len({r.key for r in sample})
            detail = (f"  {distinct} distinct records fill "
                      f"{len(sample)} slots")
        elif law == "window":
            oldest = min(r.key for r in sample)
            detail = (f"  oldest sampled key {oldest:,} "
                      f"(window floor {STREAM - WINDOW:,})")
        print(f"  {law:<8} {len(sample):>6,} records   "
              f"mean amount {mean:>8.2f}{detail}")
    print(f"  {'stream':<8} {STREAM:>6,} records   "
          f"mean amount {true_mean:>8.2f}   (ground truth)\n")

    # -- uniform answers per-record questions ---------------------------
    uniform = files["uniform"].sample()
    est = sum(r.value for r in uniform) / len(uniform)
    print(f"average payment:   uniform sample estimates {est:.2f} "
          f"(truth {true_mean:.2f})")

    # -- the weighted sample answers revenue-share questions ------------
    # P(record sampled) ~ amount, so *unweighted* statistics of the
    # A-ExpJ sample estimate *amount-weighted* stream statistics: the
    # fraction of sampled records above a cutoff estimates the share
    # of total revenue carried by payments above that cutoff.
    cutoff = 100.0
    weighted = files["aexpj"].sample()
    share_est = (sum(1 for r in weighted if r.value > cutoff)
                 / len(weighted))
    revenue = sum(r.value for r in payment_stream(STREAM))
    share_true = (sum(r.value for r in payment_stream(STREAM)
                      if r.value > cutoff) / revenue)
    print(f"revenue share of payments > {cutoff:.0f}:   "
          f"weighted sample estimates {share_est:.1%} "
          f"(truth {share_true:.1%})")

    # -- the windowed sample sees the recent regime ---------------------
    windowed = files["window"].sample()
    recent_mean = sum(r.value for r in windowed) / len(windowed)
    print(f"mean payment in the last {WINDOW:,} records:   "
          f"windowed sample estimates {recent_mean:.2f} "
          f"-- the price doubling is visible; the uniform sample "
          f"(={est:.2f}) averages it away")

    for gf in files.values():
        gf.close()


if __name__ == "__main__":
    main()
