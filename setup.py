"""Legacy shim: this environment lacks the `wheel` package (offline), so
PEP 660 editable installs fail; `python setup.py develop` uses this file
instead.  Metadata lives in pyproject.toml; the console script is
repeated here because the legacy path does not read [project.scripts]."""
from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["repro-bench=repro.cli:main"],
    },
)
