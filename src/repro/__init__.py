"""Reproduction of "Online Maintenance of Very Large Random Samples"
(Jermaine, Pol, Arumugam; SIGMOD 2004).

The package maintains disk-resident reservoir samples of ``N`` records
fed online from a data stream using a memory buffer of ``B << N``
records.  The headline structure is the *geometric file* and its
multi-file extension; the Section 3 baselines, biased sampling, and the
statistical machinery that motivates very large samples are all here
too.

Quick start::

    from repro import (GeometricFileConfig, GeometricFile,
                       SimulatedBlockDevice)

    config = GeometricFileConfig(capacity=1_000_000,
                                 buffer_capacity=10_000, record_size=50)
    blocks = GeometricFile.required_blocks(config, block_size=32 * 1024)
    device = SimulatedBlockDevice(blocks)
    sample = GeometricFile(device, config, seed=42)
    sample.ingest(50_000_000)   # stream fifty million records past it
    print(sample.disk_size, sample.stats().clock)

Observability: every structure and device answers ``stats()``, and
``instrument(registry, trace)`` wires live metrics and event tracing
(see docs/OBSERVABILITY.md)::

    from repro import MetricsRegistry, TraceSink

    registry, trace = MetricsRegistry(), TraceSink()
    sample.instrument(registry, trace)
    sample.ingest(1_000_000)
    print(registry.value("disk.seeks", structure="geo file"))

See README.md and the ``examples/`` directory.
"""

from .baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    VirtualMemoryReservoir,
)
from .core import (
    BiasedGeometricFile,
    BiasedMultipleGeometricFiles,
    GeometricFile,
    GeometricFileConfig,
    MultiFileConfig,
    MultipleGeometricFiles,
    Reservoir,
    ZoneMapIndex,
    load_geometric_file,
    save_geometric_file,
)
from .estimate import BatchQuery, SampleQuery, required_sample_size
from .obs import MetricsRegistry, ReservoirStats, TraceEvent, TraceSink
from .reservoir import StreamReservoir
from .sampling import BiasedReservoir, ReservoirSample, SkipReservoir
from .serve import (
    AsyncServeClient,
    InlineTransport,
    ReservoirServer,
    ServeClient,
    ServeError,
    ServerConfig,
)
from .service import ShardedReservoir
from .storage import (
    DeviceSpec,
    DiskModel,
    DiskParameters,
    FileBlockDevice,
    MemoryBlockDevice,
    Record,
    RecordBatch,
    SimulatedBlockDevice,
)
from .streams import SensorStream, UniformStream, ZipfStream

__version__ = "1.0.0"

__all__ = [
    "AsyncServeClient",
    "BatchQuery",
    "BiasedGeometricFile",
    "BiasedMultipleGeometricFiles",
    "BiasedReservoir",
    "DeviceSpec",
    "DiskModel",
    "DiskParameters",
    "DiskReservoirConfig",
    "FileBlockDevice",
    "GeometricFile",
    "GeometricFileConfig",
    "InlineTransport",
    "LocalOverwriteReservoir",
    "MemoryBlockDevice",
    "MetricsRegistry",
    "MultiFileConfig",
    "MultipleGeometricFiles",
    "Record",
    "RecordBatch",
    "Reservoir",
    "ReservoirSample",
    "ReservoirServer",
    "ReservoirStats",
    "SampleQuery",
    "ScanReservoir",
    "SensorStream",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ShardedReservoir",
    "SimulatedBlockDevice",
    "SkipReservoir",
    "StreamReservoir",
    "TraceEvent",
    "TraceSink",
    "UniformStream",
    "VirtualMemoryReservoir",
    "ZipfStream",
    "ZoneMapIndex",
    "load_geometric_file",
    "required_sample_size",
    "save_geometric_file",
]
