"""Analytical models: closed-form cost predictions (Sections 3, 5, 6)
and stack sizing bounds (Section 4.5.1)."""

from .cost import (
    FlushCost,
    files_needed,
    geometric_flush_cost,
    local_overwrite_saturated_cohorts,
    multi_file_storage_blowup,
    omega,
    scan_flush_cost,
    seeks_per_flush,
    seeks_per_record,
    segments_per_flush,
    virtual_memory_record_cost,
)
from .stack_bounds import (
    no_overflow_probability,
    overflow_probability,
    required_multiplier,
    subsample_size_sigma,
    survival_probability,
    worst_case_sigma,
)

__all__ = [
    "FlushCost",
    "files_needed",
    "geometric_flush_cost",
    "local_overwrite_saturated_cohorts",
    "multi_file_storage_blowup",
    "no_overflow_probability",
    "omega",
    "overflow_probability",
    "required_multiplier",
    "scan_flush_cost",
    "seeks_per_flush",
    "seeks_per_record",
    "segments_per_flush",
    "subsample_size_sigma",
    "survival_probability",
    "virtual_memory_record_cost",
    "worst_case_sigma",
]
