"""Closed-form cost predictions (paper Sections 3, 5 and 6).

The paper reasons about each alternative with back-of-the-envelope
arithmetic -- segments per flush, seeks per segment, sequential
transfer time -- before measuring it.  This module is that arithmetic
as code, used two ways:

* the Section 5 / Section 6 benchmarks print the paper's own in-text
  numbers (1029 and 10344 segments, the 40-versus-400-second seek
  budgets, "fewer than 100 segments" and "4 seconds of random disk
  head movements" at alpha' = 0.9);
* the integration tests cross-check the simulator against these
  predictions, so the benchmark harness cannot silently drift from the
  model it claims to implement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.geometry import alpha_for, file_count_for, segments_on_disk
from ..storage.disk_model import DiskParameters


def omega(alpha_prime: float) -> float:
    """Section 6's seek multiplier ``omega = 1 / log2(1/alpha')``.

    The introduction's headline cost -- ``(omega/B) * log2(B)`` head
    movements per sampled record -- uses this constant: the number of
    consolidated segments per flush is
    ``omega * (log2 B - log2 beta)``, see :func:`segments_per_flush`.
    """
    if not 0.0 < alpha_prime < 1.0:
        raise ValueError("alpha_prime must be in (0, 1)")
    return 1.0 / math.log2(1.0 / alpha_prime)


def segments_per_flush(buffer_records: int, alpha: float,
                       beta_records: int) -> int:
    """On-disk segments written per buffer flush (= per subsample)."""
    return segments_on_disk(buffer_records, alpha, beta_records)


def seeks_per_flush(buffer_records: int, alpha: float, beta_records: int,
                    seeks_per_segment: float = 4.0) -> float:
    """Random head movements per flush.

    The paper charges "around four disk seeks to write" each segment
    (write it and adjust the previous owner's stack, Section 5.1).
    """
    if seeks_per_segment <= 0:
        raise ValueError("seeks_per_segment must be positive")
    return seeks_per_segment * segments_per_flush(
        buffer_records, alpha, beta_records
    )


def seeks_per_record(buffer_records: int, alpha: float, beta_records: int,
                     seeks_per_segment: float = 4.0) -> float:
    """Amortised head movements per newly sampled record.

    This is the introduction's ``(omega / B) * log2 B`` quantity (up to
    the beta term and the per-segment constant).
    """
    return seeks_per_flush(buffer_records, alpha, beta_records,
                           seeks_per_segment) / buffer_records


@dataclass(frozen=True)
class FlushCost:
    """Predicted cost of one steady-state buffer flush."""

    seeks: float
    seek_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.seek_seconds + self.transfer_seconds

    @property
    def random_io_fraction(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.seek_seconds / self.total_seconds


def geometric_flush_cost(buffer_records: int, record_size: int,
                         alpha: float, beta_records: int,
                         disk: DiskParameters | None = None,
                         seeks_per_segment: float = 4.0) -> FlushCost:
    """Predicted flush cost for a (single or multi) geometric file.

    For the multi-file variant pass the *effective* per-file
    ``alpha_prime`` as ``alpha``: per flush only one file is written and
    its ladder is the alpha' ladder, so the same formula applies.
    """
    disk = disk or DiskParameters()
    seeks = seeks_per_flush(buffer_records, alpha, beta_records,
                            seeks_per_segment)
    transfer = buffer_records * record_size / disk.transfer_rate
    return FlushCost(seeks=seeks, seek_seconds=seeks * disk.seek_time,
                     transfer_seconds=transfer)


def scan_flush_cost(reservoir_records: int, buffer_records: int,
                    record_size: int,
                    disk: DiskParameters | None = None) -> FlushCost:
    """Massive rebuild: one full read plus one full write per flush."""
    disk = disk or DiskParameters()
    transfer = 2.0 * reservoir_records * record_size / disk.transfer_rate
    return FlushCost(seeks=2.0, seek_seconds=2.0 * disk.seek_time,
                     transfer_seconds=transfer)


def virtual_memory_record_cost(disk: DiskParameters | None = None,
                               record_size: int = 100,
                               ios_per_record: float = 2.0) -> float:
    """Seconds per admitted record for the virtual-memory option.

    "It will require two random disk I/Os: one to read in the block
    where the record will be written, and one to re-write it"
    (Section 3.2) -- the paper's 250-records-per-second arithmetic for
    five spindles, ~50/second for the single spindle modelled here.
    """
    disk = disk or DiskParameters()
    return ios_per_record * (disk.seek_time + disk.block_transfer_time)


def local_overwrite_saturated_cohorts(buffer_records: int,
                                      alpha: float) -> int:
    """Steady-state cohort count for the localized-overwrite option.

    A cohort of ``B`` records loses a ``(1-alpha)`` fraction per flush
    and dies when it reaches ~0 records, after about
    ``ln(B)/(1-alpha)`` flushes; that is also the saturated number of
    live cohorts -- and therefore seeks per flush.
    """
    if buffer_records < 1:
        raise ValueError("buffer must hold at least one record")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return max(1, math.ceil(math.log(buffer_records)
                            / -math.log(alpha)))


def multi_file_storage_blowup(alpha_prime: float) -> float:
    """Total disk needed relative to |R| for the multi-file variant.

    One dummy subsample (``B`` records) per file adds
    ``m * B = (1 - alpha') * |R|``: Section 6's "1 TB reservoir ...
    only 1.1 TB of disk storage" at ``alpha' = 0.9``.
    """
    if not 0.0 < alpha_prime < 1.0:
        raise ValueError("alpha_prime must be in (0, 1)")
    return 2.0 - alpha_prime


def files_needed(reservoir_records: int, buffer_records: int,
                 alpha_prime: float) -> int:
    """Number of geometric files ``m`` for a target ``alpha_prime``."""
    alpha = alpha_for(reservoir_records, buffer_records)
    return file_count_for(alpha, alpha_prime)
