"""Stack sizing analysis (paper Section 4.5.1).

How big must a subsample's pre-allocated LIFO stack be so that it
(essentially) never overflows?  The paper's argument, reproduced here
as code:

* while ``b`` new records have been added since a subsample ``S`` of
  initial size ``B`` was created, each of S's records survives
  independently with probability ``P = (1 - 1/|R|)**b``, so the number
  remaining is Binomial(B, P);
* the binomial is well-approximated by Normal(BP, BP(1-P)); its
  standard deviation peaks at ``0.5 * sqrt(B)`` when ``P = 0.5``;
* a stack of ``3 * sqrt(B)`` therefore allows a six-sigma excursion,
  giving ~1e-9 per-subsample overflow probability and a
  ``(1 - 1e-9)**100000 ~ 99.99990%`` chance that 100,000 flushes all
  survive.

``benchmarks/test_section4_stack_bounds.py`` prints the paper's numbers
from these functions, and the integration tests check the simulator's
observed stack high-water marks against the predicted sigma.
"""

from __future__ import annotations

import math

from ..estimate.clt import normal_cdf


def survival_probability(reservoir_records: int, additions: int) -> float:
    """P that a given record survives ``additions`` new admissions.

    Each admission overwrites a uniformly random resident, so a record
    survives one with probability ``1 - 1/|R|``.
    """
    if reservoir_records < 1:
        raise ValueError("reservoir must hold at least one record")
    if additions < 0:
        raise ValueError("additions must be non-negative")
    return (1.0 - 1.0 / reservoir_records) ** additions


def subsample_size_sigma(initial_size: int, survival: float) -> float:
    """Std dev of a subsample's surviving count: ``sqrt(B P (1-P))``."""
    if initial_size < 1:
        raise ValueError("subsample must start with at least one record")
    if not 0.0 <= survival <= 1.0:
        raise ValueError("survival probability must be in [0, 1]")
    return math.sqrt(initial_size * survival * (1.0 - survival))


def worst_case_sigma(initial_size: int) -> float:
    """The P = 0.5 peak: ``0.5 * sqrt(B)`` (Section 4.5.1)."""
    if initial_size < 1:
        raise ValueError("subsample must start with at least one record")
    return 0.5 * math.sqrt(initial_size)


def overflow_probability(initial_size: int, stack_multiplier: float = 3.0
                         ) -> float:
    """P that a stack of ``multiplier * sqrt(B)`` ever looks too small.

    The deviation of the surviving count from its mean is (normal
    approximation) at worst ``Normal(0, (0.5 sqrt(B))**2)``; a stack of
    ``multiplier * sqrt(B)`` is ``2 * multiplier`` sigmas, so the
    one-sided overflow probability is ``1 - Phi(2 * multiplier)`` --
    about 9.9e-10 for the paper's multiplier of 3 ("a 10^-9
    probability").
    """
    if initial_size < 1:
        raise ValueError("subsample must start with at least one record")
    if stack_multiplier <= 0:
        raise ValueError("stack multiplier must be positive")
    return 1.0 - normal_cdf(2.0 * stack_multiplier)


def no_overflow_probability(n_subsamples: int,
                            stack_multiplier: float = 3.0,
                            initial_size: int = 10 ** 7) -> float:
    """P that none of ``n_subsamples`` ever overflows its stack.

    The paper's closing number: "if the buffer is flushed to disk
    100,000 times, then using a stack of size 3 sqrt(B) will yield ...
    (1 - 1e-9)^100,000, or 99.99990%".
    """
    if n_subsamples < 0:
        raise ValueError("subsample count must be non-negative")
    p = overflow_probability(initial_size, stack_multiplier)
    return (1.0 - p) ** n_subsamples


def required_multiplier(target_overflow_probability: float) -> float:
    """Smallest stack multiplier achieving a per-subsample target.

    Inverts :func:`overflow_probability` by bisection on the normal
    tail (monotone), so callers can size stacks for their own risk
    budget instead of the paper's 3.
    """
    if not 0.0 < target_overflow_probability < 1.0:
        raise ValueError("target probability must be in (0, 1)")
    lo, hi = 0.0, 20.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if 1.0 - normal_cdf(2.0 * mid) > target_overflow_probability:
            lo = mid
        else:
            hi = mid
    return hi
