"""The three Section 3 alternatives the geometric file is benchmarked
against: virtual memory, massive rebuild (scan), and localized
overwrite."""

from .base import BufferedDiskReservoir, DiskReservoirConfig, SequentialAppender
from .local_overwrite import LocalOverwriteReservoir
from .scan_rebuild import ScanReservoir
from .virtual_memory import VirtualMemoryReservoir

__all__ = [
    "BufferedDiskReservoir",
    "DiskReservoirConfig",
    "LocalOverwriteReservoir",
    "ScanReservoir",
    "SequentialAppender",
    "VirtualMemoryReservoir",
]
