"""Shared plumbing for the Section 3 baseline alternatives.

All three baselines (and the geometric file) share the same outer loop:
an initial *fill* phase that streams the first ``N`` admitted records
"more or less directly to disk" (Section 8's observation that every
option writes the first 50 GB at sequential speed), followed by a
steady state in which new admissions displace old residents.  The scan
and localized-overwrite baselines additionally share the geometric
file's in-memory buffer of new samples (Algorithm 2).

:class:`DiskReservoirConfig` carries the sizing every baseline needs;
:class:`BufferedDiskReservoir` implements the fill phase, buffer
management, and count-only fast path once, leaving each baseline a
single ``_steady_flush`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.buffer import SampleBuffer
from ..pipeline import SCHEDULER_NAMES, FlushEngine, FlushPlan
from ..reservoir import AdmissionMode, StreamReservoir
from ..storage.device import BlockDevice, SimulatedBlockDevice, write_zeros
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema


@dataclass(frozen=True)
class DiskReservoirConfig:
    """Sizing shared by the baseline reservoir maintainers.

    Attributes:
        capacity: reservoir size ``N`` in records.
        buffer_capacity: new-sample buffer ``B`` in records (unused by
            the virtual-memory baseline, which spends all its memory on
            the LRU pool instead).
        record_size: bytes per record.
        pool_blocks: LRU buffer-pool capacity in blocks (the paper's
            100 MB read/write cache).
        retain_records: keep record payloads (tests / small runs).
        admission: see :class:`~repro.reservoir.StreamReservoir`.
        columnar: run the columnar record engine -- the new-sample
            buffer becomes a structured-array slab and retained state is
            held as :class:`~repro.storage.recordbatch.RecordBatch`
            slabs instead of record-object lists.  Implies
            ``retain_records``.  I/O charges are identical to the
            scalar path.
        pipeline: run steady-state flushes on a background writer
            thread; see
            :class:`~repro.core.geometric_file.GeometricFileConfig`.
        io_scheduler: ``"fifo"`` (recorded order) or ``"elevator"``
            (address-sorted, coalesced bursts); see :mod:`repro.pipeline`.
        stream_rate: records/second the ingest side produces, for the
            simulated overlap timeline; ``None`` = instantaneous.
    """

    capacity: int
    buffer_capacity: int
    record_size: int = 100
    pool_blocks: int = 64
    retain_records: bool = False
    admission: AdmissionMode = "always"
    columnar: bool = False
    pipeline: bool = False
    io_scheduler: str = "fifo"
    stream_rate: float | None = None

    def __post_init__(self) -> None:
        if self.columnar and not self.retain_records:
            object.__setattr__(self, "retain_records", True)
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if self.buffer_capacity < 1:
            raise ValueError("buffer must hold at least one record")
        if self.buffer_capacity >= self.capacity:
            raise ValueError("buffer must be smaller than the reservoir")
        if self.record_size < 1:
            raise ValueError("record_size must be positive")
        if self.pool_blocks < 1:
            raise ValueError("pool needs at least one block")
        if self.io_scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown io_scheduler {self.io_scheduler!r}; expected "
                f"one of {SCHEDULER_NAMES}"
            )
        if self.stream_rate is not None and self.stream_rate <= 0:
            raise ValueError("stream_rate must be positive")


class SequentialAppender:
    """Charges sequential block writes for a stream of appended records.

    Used by the fill phase: records are packed into blocks and written
    in large sequential bursts, so the simulated disk sees exactly the
    append pattern a real implementation would produce.  Only whole
    blocks are charged as they complete; the final partial block is
    flushed by :meth:`finish`.
    """

    def __init__(self, device: BlockDevice, schema: RecordSchema,
                 first_block: int = 0, *, burst_blocks: int = 256) -> None:
        self.device = device
        self.schema = schema
        self.records_per_block = schema.records_per_block(device.block_size)
        self._next_block = first_block
        self._partial = 0  # records in the currently-filling block
        self._burst = burst_blocks

    @property
    def next_block(self) -> int:
        return self._next_block

    def append(self, n_records: int) -> None:
        """Account for ``n_records`` more records appended."""
        if n_records < 0:
            raise ValueError("cannot append a negative count")
        total = self._partial + n_records
        whole_blocks = total // self.records_per_block
        self._partial = total % self.records_per_block
        if whole_blocks > 0:
            write_zeros(self.device, self._next_block, whole_blocks)
            self._next_block += whole_blocks

    def finish(self) -> None:
        """Flush the trailing partial block, if any."""
        if self._partial > 0:
            write_zeros(self.device, self._next_block, 1)
            self._next_block += 1
            self._partial = 0


class BufferedDiskReservoir(StreamReservoir):
    """Base for alternatives that buffer new samples then flush in bulk.

    Subclasses implement:

    * :meth:`_finish_fill` -- called once, when the reservoir has just
      filled (record mode receives the full record list);
    * :meth:`_steady_flush` -- called per buffer flush with the drained
      (shuffled) records, or ``None`` with a count in count-only mode.
    """

    def __init__(self, device: BlockDevice, config: DiskReservoirConfig,
                 *, seed: int | None = 0) -> None:
        super().__init__(config.capacity, admission=config.admission,
                         seed=seed)
        self.device = device
        self.config = config
        self.schema = RecordSchema(config.record_size)
        self.buffer = SampleBuffer(config.buffer_capacity, self._rng,
                                   retain_records=config.retain_records,
                                   np_rng=self._np_rng,
                                   schema=(self.schema if config.columnar
                                           else None))
        self._engine = FlushEngine.for_config(device, config)
        self._fill_appender = SequentialAppender(device, self.schema)
        self._filled = 0
        self._fill_records: list[Record] | None = (
            [] if config.retain_records else None
        )
        self.flushes = 0
        self.chunk_floor = config.buffer_capacity

    # -- hooks ---------------------------------------------------------------

    def _finish_fill(
            self, records: list[Record] | RecordBatch | None) -> None:
        raise NotImplementedError

    def _steady_flush(self, records: list[Record] | RecordBatch | None,
                      count: int, plan: FlushPlan) -> None:
        """Record one steady-state flush's device ops into ``plan``.

        Called on the ingest thread; all RNG draws and in-memory record
        splicing must happen here.  The recorded plan executes inline
        (``pipeline=False``) or on the writer thread afterwards.
        """
        raise NotImplementedError

    def _flush_buffer(self, records: list[Record] | RecordBatch | None,
                      count: int) -> None:
        """Drive one drained buffer through plan build, submit, and emit."""
        plan = FlushPlan()
        self._steady_flush(records, count, plan)
        self._submit_plan(plan, count)
        self.flushes += 1
        self._emit("flush", index=self.flushes, records=count,
                   phase="steady")

    # -- observers -------------------------------------------------------------

    def _clock(self) -> float:
        # Duck-typed: any cost-modelled device (simulated, striped)
        # exposes a simulated clock; byte-only backends do not.
        return getattr(self.device, "clock", 0.0)

    @property
    def in_fill_phase(self) -> bool:
        return self._filled < self.capacity

    @property
    def columnar(self) -> bool:
        """True when the columnar record engine is active."""
        return self.config.columnar

    # -- StreamReservoir hooks ---------------------------------------------------

    def _admit(self, record: Record | None) -> None:
        if self.in_fill_phase:
            self._fill_one(record)
            return
        self.buffer.add_admitted(record, self.capacity)
        if self.buffer.is_full:
            records, _, count = self.buffer.drain()
            self._flush_buffer(records, count)

    def _admit_many(self, records: list[Record | None]) -> None:
        # Batch form of _admit: the fill-phase prefix goes out as one
        # sequential append, the rest through the buffer's vectorised
        # absorb, flushing at the same boundaries as the scalar loop.
        i = self._fill_from_batch(records)
        n = len(records)
        while i < n:
            i += self.buffer.absorb_many(records, self.capacity, start=i)
            if self.buffer.is_full:
                drained, _, count = self.buffer.drain()
                self._flush_buffer(drained, count)

    def _admit_batch(self, batch: RecordBatch) -> None:
        # Columnar twin of _admit_many: the fill-phase prefix is decoded
        # once (the fill happens exactly once per reservoir), the steady
        # suffix goes through the buffer's slab absorb.
        if not self.columnar:
            super()._admit_batch(batch)
            return
        i = 0
        n = len(batch)
        if self.in_fill_phase:
            take = min(n, self.capacity - self._filled)
            i = self._fill_from_batch(list(batch[:take]))
        while i < n:
            i += self.buffer.absorb_batch(batch, self.capacity, start=i)
            if self.buffer.is_full:
                drained, _, count = self.buffer.drain()
                self._flush_buffer(drained, count)

    def _admit_count(self, n: int) -> None:
        if self.in_fill_phase:
            take = min(n, self.capacity - self._filled)
            self._fill_appender.append(take)
            self._filled += take
            n -= take
            if not self.in_fill_phase:
                self._complete_fill()
        while n > 0:
            take = min(n, self.buffer.capacity - self.buffer.count)
            self.buffer.append_count(take)
            n -= take
            if self.buffer.is_full:
                _, __, count = self.buffer.drain()
                self._flush_buffer(None, count)

    # -- fill phase ----------------------------------------------------------------

    def _fill_one(self, record: Record | None) -> None:
        self._fill_appender.append(1)
        self._filled += 1
        if self._fill_records is not None:
            if record is None:
                raise ValueError("record-retaining mode needs the record")
            self._fill_records.append(record)
        if not self.in_fill_phase:
            self._complete_fill()

    def _fill_from_batch(self, records: list[Record | None]) -> int:
        """Consume a batch's fill-phase prefix; returns records taken."""
        if not self.in_fill_phase:
            return 0
        take = min(len(records), self.capacity - self._filled)
        self._fill_appender.append(take)
        self._filled += take
        if self._fill_records is not None:
            chunk = records[:take]
            if any(r is None for r in chunk):
                raise ValueError("record-retaining mode needs the record")
            self._fill_records.extend(chunk)
        if not self.in_fill_phase:
            self._complete_fill()
        return take

    def _complete_fill(self) -> None:
        self._fill_appender.finish()
        records = self._fill_records
        self._fill_records = None
        if records is not None and self.columnar:
            # The fill list physicalises as one slab; from here on the
            # steady state works purely on structured rows.
            records = RecordBatch.from_records(self.schema, records)
        self._finish_fill(records)
