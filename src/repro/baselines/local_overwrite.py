"""The localized-overwrite extension (paper Section 3.2, third alternative).

"If data are clustered randomly, then we can simply write the buffer
sequentially to disk at any arbitrary position. ... The problem with
this solution is that after the buffered samples are added, the data
are no longer clustered randomly ... Any subsequent buffer flush will
need to overwrite portions of both the new and the old records to
preserve the algorithm's correctness, requiring an additional random
disk head movement.  With each subsequent flush, maintaining randomness
will become more costly, as data become more and more clustered by
insertion time."

Model.  The reservoir is a union of *cohorts* -- groups of records
written by the same flush, each internally in random order (the buffer
is randomized before writing).  The initial fill is one cohort of ``N``
records.  A flush must evict a uniform random ``B``-subset of the
reservoir, i.e. a hypergeometric share from every cohort.  Because a
cohort's records sit in random order, *any* contiguous run of positions
inside it is a uniform random subset of it -- that is the whole point
of the scheme -- so the flush needs exactly one contiguous write per
cohort it touches: one random head movement each.  All the pieces a
flush writes together form one *new* cohort (physically scattered into
several fragments, but fragments do not matter: future flushes again
need only one contiguous piece per cohort, placed in any
sufficiently-large fragment).

We charge one seek per cohort touched plus the sequential transfer.
This is the charitable reading -- when no single fragment of a cohort
can absorb its whole piece the write must split, costing extra seeks we
do not charge -- so the measured degradation is a lower bound on the
real one.  Cohorts die when their last record is evicted, which bounds
the cohort count (and the per-flush seek bill) near
``ln(B) / (1 - alpha)``; the paper's observed behaviour -- great at
first, steadily worse, never recovering without an offline
re-randomization -- follows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline import FlushPlan
from ..storage.device import BlockDevice
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record
from ..reservoir import draw_victim_counts
from .base import BufferedDiskReservoir, DiskReservoirConfig


@dataclass
class _Cohort:
    """One insertion-time cluster of records."""

    live: int
    region_block: int
    records: "list[Record] | RecordBatch | None" = None


class LocalOverwriteReservoir(BufferedDiskReservoir):
    """Reservoir maintained by per-cohort localized sequential writes."""

    name = "local overwrite"

    def __init__(self, device: BlockDevice, config: DiskReservoirConfig,
                 *, seed: int | None = 0) -> None:
        super().__init__(device, config, seed=seed)
        self._cohorts: list[_Cohort] = []
        self._file_blocks = self.schema.blocks_for_records(
            config.capacity, device.block_size
        )
        if self._file_blocks > device.n_blocks:
            raise ValueError(
                f"device too small: reservoir needs {self._file_blocks} "
                f"blocks, device has {device.n_blocks}"
            )
        #: Peak number of cohorts touched in a single flush (diagnostic).
        self.max_cohorts_touched = 0

    @classmethod
    def required_blocks(cls, config: DiskReservoirConfig,
                        block_size: int) -> int:
        from ..storage.records import RecordSchema

        schema = RecordSchema(config.record_size)
        return schema.blocks_for_records(config.capacity, block_size)

    @property
    def n_cohorts(self) -> int:
        return len(self._cohorts)

    def _stats_extra(self) -> dict:
        return {
            "n_cohorts": self.n_cohorts,
            "max_cohorts_touched": self.max_cohorts_touched,
        }

    def _finish_fill(
            self, records: list[Record] | RecordBatch | None) -> None:
        if isinstance(records, RecordBatch):
            # Shuffle an index list through the same random.Random the
            # object path shuffles its list with (identical RNG
            # consumption), then realise the permutation as one take.
            order = list(range(len(records)))
            self._rng.shuffle(order)
            records = records.take(order)
        elif records is not None:
            self._rng.shuffle(records)  # the fill is clustered randomly
        self._cohorts = [_Cohort(live=self.capacity, region_block=0,
                                 records=records)]

    def _steady_flush(self, records: list[Record] | None,
                      count: int, plan: FlushPlan) -> None:
        """Evict a uniform B-subset cohort-by-cohort; write one piece each.

        The eviction split is the same multivariate hypergeometric draw
        the geometric file uses (it is forced by correctness, not by
        the data structure).  Cohort writes land in the plan in cohort
        order; the elevator scheduler sorts them by region address and
        merges adjacent pieces, which is where the multi-cohort seek
        bill shrinks.
        """
        shares = self._hypergeometric_split(count)
        touched = 0
        first_region = 0
        for cohort, share in zip(self._cohorts, shares):
            if share == 0:
                continue
            touched += 1
            cohort.live -= share
            if cohort.records is not None:
                del cohort.records[len(cohort.records) - share:]
            # One head movement into this cohort's region, then a
            # sequential write of this cohort's piece of the flush.
            blocks = max(1, self.schema.blocks_for_records(
                share, self.device.block_size
            ))
            plan.write(cohort.region_block, blocks)
            if touched == 1:
                first_region = cohort.region_block
        self._cohorts = [c for c in self._cohorts if c.live > 0]
        # Everything this flush wrote is one cohort, whatever fragments
        # it physically landed in.
        self._cohorts.append(_Cohort(live=count, region_block=first_region,
                                     records=records))
        if touched > self.max_cohorts_touched:
            self.max_cohorts_touched = touched

    def _hypergeometric_split(self, count: int) -> list[int]:
        lives = [cohort.live for cohort in self._cohorts]
        return draw_victim_counts(self._np_rng, lives, count)

    def sample(self, k: int | None = None, *, rng=None) -> list[Record]:
        """Current reservoir contents plus pending buffered admissions;
        ``k`` optionally thins to a uniform subset (protocol form)."""
        self.flush_barrier()
        if self.config.retain_records is False:
            raise TypeError("reservoir is running in count-only mode")
        if self.in_fill_phase:
            full = list(self._fill_records or []) + list(self.buffer)
            return self._thin_records(full, k, rng)
        disk: list[Record] = []
        for cohort in self._cohorts:
            disk.extend(cohort.records or ())
        full = self.apply_pending(disk, list(self.buffer),
                                  rng if rng is not None else self._rng)
        return self._thin_records(full, k, rng)
