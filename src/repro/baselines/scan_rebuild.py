"""The massive-rebuild ("scan") extension (paper Section 3.2, Algorithm 2).

"We could make use of all of our available main memory to buffer new
samples.  When the buffer fills, we simply scan the entire reservoir
and replace a random subset of the existing records with the new,
buffered samples. ... The drawback of this approach is that we are
effectively rebuilding the entire reservoir to process a set of
buffered records that are a small fraction of the existing reservoir
size."

Steady state therefore costs one full sequential read plus one full
sequential write of the reservoir per ``B`` new records -- fast I/O,
terrible amortisation.  Which buffered record replaces which resident
is Algorithm 2's uniform choice: a uniformly random ``B``-subset of the
``N`` residents (record mode realises it explicitly; count-only mode
needs no record bookkeeping at all).
"""

from __future__ import annotations

import numpy as np

from ..pipeline import FlushPlan
from ..storage.device import BlockDevice
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record
from .base import BufferedDiskReservoir, DiskReservoirConfig


class ScanReservoir(BufferedDiskReservoir):
    """Reservoir rebuilt by a full sequential scan per buffer flush."""

    name = "scan"

    def __init__(self, device: BlockDevice, config: DiskReservoirConfig,
                 *, seed: int | None = 0) -> None:
        super().__init__(device, config, seed=seed)
        self._records: list[Record] | RecordBatch | None = None
        self._file_blocks = self.schema.blocks_for_records(
            config.capacity, device.block_size
        )
        if self._file_blocks > device.n_blocks:
            raise ValueError(
                f"device too small: reservoir needs {self._file_blocks} "
                f"blocks, device has {device.n_blocks}"
            )

    @classmethod
    def required_blocks(cls, config: DiskReservoirConfig,
                        block_size: int) -> int:
        from ..storage.records import RecordSchema

        schema = RecordSchema(config.record_size)
        return schema.blocks_for_records(config.capacity, block_size)

    def _finish_fill(self, records: list[Record] | None) -> None:
        self._records = records

    def _stats_extra(self) -> dict:
        return {"file_blocks": self._file_blocks}

    def _steady_flush(self, records: list[Record] | None,
                      count: int, plan: FlushPlan) -> None:
        """Read the whole file, splice in the new samples, write it back.

        The scan is charged as two full sequential passes in large
        bursts; with a big block size "most disk blocks will receive at
        least one new sample" (Section 3.2), so every block is
        rewritten.  The device charges are cost-only (the spliced
        records live in memory), so the elevator scheduler is free to
        run the rewrite pass before the scan pass.
        """
        self._charge_full_scan(plan)
        if self._records is not None and records is not None:
            # Same without-replacement draw in both engines, so the
            # modes stay bit-exact on a shared seed.
            victims = self._rng.sample(range(self.capacity), count)
            if isinstance(records, RecordBatch):
                # Victims are distinct, so one fancy-index scatter
                # splices the whole flush without record objects.
                self._records.array[
                    np.asarray(victims, dtype=np.intp)
                ] = records.array
            else:
                for slot, record in zip(victims, records):
                    self._records[slot] = record

    def _charge_full_scan(self, plan: FlushPlan) -> None:
        plan.read(0, self._file_blocks)
        plan.write(0, self._file_blocks)

    def sample(self, k: int | None = None, *, rng=None) -> list[Record]:
        """Current reservoir contents plus pending buffered admissions;
        ``k`` optionally thins to a uniform subset (protocol form)."""
        self.flush_barrier()
        if self._records is None and self._fill_records is None:
            raise TypeError("reservoir is running in count-only mode")
        if self._records is None:
            full = list(self._fill_records or []) + list(self.buffer)
            return self._thin_records(full, k, rng)
        full = self.apply_pending(self._records, list(self.buffer),
                                  rng if rng is not None else self._rng)
        return self._thin_records(full, k, rng)
