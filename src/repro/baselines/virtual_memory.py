"""The virtual-memory extension (paper Section 3.2, first alternative).

"The most obvious adaptation for very large sample sizes is to simply
treat the reservoir as if it were stored in virtual memory.  The
problem ... is that every new sample that is added to the reservoir
will overwrite a random, existing record on disk, and so it will
require two random disk I/Os: one to read in the block where the record
will be written, and one to re-write it with the new sample."

The implementation below is exactly that: the reservoir is a flat array
of record slots; each admitted record picks a uniformly random slot and
performs a read-modify-write of the containing block through an LRU
buffer pool that gets *all* of the option's memory (the paper gives it
the full 600 MB / 150 MB).  Once the reservoir dwarfs the pool, nearly
every access misses, evicts a dirty page, and therefore pays two random
head movements -- the paper's back-of-the-envelope "250 records per
second" with a terabyte reservoir.
"""

from __future__ import annotations

from ..storage.buffer_pool import LRUBufferPool
from ..storage.device import BlockDevice
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record
from .base import BufferedDiskReservoir, DiskReservoirConfig


class VirtualMemoryReservoir(BufferedDiskReservoir):
    """Reservoir maintained by random in-place block updates.

    The :class:`~repro.baselines.base.BufferedDiskReservoir` machinery
    is reused only for the sequential fill phase; in steady state every
    admitted record goes straight to a random slot (there is no
    new-sample buffer -- ``config.buffer_capacity`` is ignored, matching
    the paper's allocation of all memory to the LRU pool).
    """

    name = "virtual mem"

    def __init__(self, device: BlockDevice, config: DiskReservoirConfig,
                 *, seed: int | None = 0) -> None:
        super().__init__(device, config, seed=seed)
        self.pool = LRUBufferPool(device, config.pool_blocks)
        # Steady state pays per record, not per flush: let the runner
        # shrink chunks to track the horizon precisely.
        self.chunk_floor = 1
        self._records: list[Record] | RecordBatch | None = None
        self._n_blocks_used = self.schema.blocks_for_records(
            config.capacity, device.block_size
        )
        if self._n_blocks_used > device.n_blocks:
            raise ValueError(
                f"device too small: reservoir needs {self._n_blocks_used} "
                f"blocks, device has {device.n_blocks}"
            )

    @classmethod
    def required_blocks(cls, config: DiskReservoirConfig,
                        block_size: int) -> int:
        """Device size needed: just the packed reservoir."""
        from ..storage.records import RecordSchema

        schema = RecordSchema(config.record_size)
        return schema.blocks_for_records(config.capacity, block_size)

    # -- fill ------------------------------------------------------------------

    def _finish_fill(self, records: list[Record] | None) -> None:
        self._records = records

    # -- observability -------------------------------------------------------

    def _stats_extra(self) -> dict:
        pool = self.pool.stats
        return {
            "pool_blocks": self.pool.capacity,
            "pool_hits": pool.hits,
            "pool_misses": pool.misses,
            "pool_evictions": pool.evictions,
            "pool_hit_ratio": pool.hit_ratio,
        }

    # -- steady state -------------------------------------------------------------

    def _admit(self, record: Record | None) -> None:
        if self.in_fill_phase:
            self._fill_one(record)
            return
        self._overwrite_random_slot(record)

    def _admit_count(self, n: int) -> None:
        if self.in_fill_phase:
            take = min(n, self.capacity - self._filled)
            self._fill_appender.append(take)
            self._filled += take
            n -= take
            if not self.in_fill_phase:
                self._complete_fill()
        for _ in range(n):
            self._overwrite_random_slot(None)

    def _admit_many(self, records: list[Record | None]) -> None:
        # One vectorised slot draw for the whole steady-state suffix;
        # each slot still walks the LRU pool (the pool is the point of
        # this baseline), but the randrange-per-record overhead is gone.
        i = self._fill_from_batch(records)
        n = len(records)
        if i >= n:
            return
        slots = self._np_rng.integers(0, self.capacity, size=n - i)
        records_per_block = self.schema.records_per_block(
            self.device.block_size
        )
        for j, slot in enumerate(slots.tolist()):
            block = slot // records_per_block
            self.pool.get(block)
            self.pool.mark_dirty(block)
            if self._records is not None:
                record = records[i + j]
                if record is not None:
                    self._records[slot] = record

    def _admit_batch(self, batch: RecordBatch) -> None:
        # Columnar steady state: one vectorised slot draw (same
        # np_rng stream as _admit_many), one batched LRU walk, and an
        # in-order row scatter that matches the scalar loop bit for bit
        # even when a slot repeats (last write wins).
        if not self.columnar:
            super()._admit_batch(batch)
            return
        i = 0
        n = len(batch)
        if self.in_fill_phase:
            take = min(n, self.capacity - self._filled)
            i = self._fill_from_batch(list(batch[:take]))
        if i >= n:
            return
        slots = self._np_rng.integers(0, self.capacity, size=n - i)
        records_per_block = self.schema.records_per_block(
            self.device.block_size
        )
        self.pool.get_many((slots // records_per_block).tolist(),
                           dirty=True)
        if self._records is not None:
            dst = self._records.array
            src = batch.array
            for j, slot in enumerate(slots.tolist()):
                dst[slot] = src[i + j]

    def _overwrite_random_slot(self, record: Record | None) -> None:
        slot = self._rng.randrange(self.capacity)
        block = slot // self.schema.records_per_block(self.device.block_size)
        # Read-modify-write through the pool: a miss reads the block and
        # may evict (write back) a dirty page; the new content stays
        # dirty in the pool until it is evicted in turn.
        self.pool.get(block)
        self.pool.mark_dirty(block)
        if self._records is not None and record is not None:
            self._records[slot] = record

    def _steady_flush(self, records, count, plan) -> None:  # pragma: no cover
        raise AssertionError("virtual-memory option never batch-flushes")

    # -- inspection -----------------------------------------------------------------

    def sample(self, k: int | None = None, *, rng=None) -> list[Record]:
        """Current reservoir contents (record-retaining mode only);
        ``k`` optionally thins to a uniform subset (protocol form)."""
        self.flush_barrier()
        if self._records is None:
            if self._fill_records is not None:
                return self._thin_records(list(self._fill_records), k, rng)
            raise TypeError("reservoir is running in count-only mode")
        return self._thin_records(list(self._records), k, rng)
