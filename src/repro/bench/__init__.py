"""Benchmark harness: the Figure 7 experiment specs, the throughput
runner, and report rendering."""

from .experiments import (
    ALTERNATIVE_NAMES,
    ExperimentSpec,
    experiment_1,
    experiment_2,
    experiment_3,
)
from .aqp import aqp_smoke, render_aqp_report
from .laws import law_smoke, render_law_report
from .perf import (
    measure_ipc,
    perf_smoke,
    render_ipc_report,
    render_report,
    render_shard_report,
    shard_smoke,
    write_report,
)
from .pipeline import (
    pipeline_smoke,
    render_pipeline_report,
    write_pipeline_report,
)
from .query import query_smoke, render_query_report
from .report import ascii_chart, io_summary_table, throughput_table, to_csv
from .runner import RunResult, SeriesPoint, run_until
from .serve import render_serve_report, serve_smoke

__all__ = [
    "ALTERNATIVE_NAMES",
    "ExperimentSpec",
    "RunResult",
    "SeriesPoint",
    "aqp_smoke",
    "ascii_chart",
    "experiment_1",
    "experiment_2",
    "experiment_3",
    "io_summary_table",
    "law_smoke",
    "measure_ipc",
    "perf_smoke",
    "pipeline_smoke",
    "query_smoke",
    "render_aqp_report",
    "render_ipc_report",
    "render_law_report",
    "render_pipeline_report",
    "render_query_report",
    "render_report",
    "render_serve_report",
    "render_shard_report",
    "run_until",
    "serve_smoke",
    "shard_smoke",
    "throughput_table",
    "to_csv",
    "write_pipeline_report",
    "write_report",
]
