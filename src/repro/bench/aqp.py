"""Tiered AQP planner benchmark: ``repro-bench --report aqp``.

One inline-pool :class:`~repro.service.ShardedReservoir` (the serve
benchmark's engine shape) is loaded with a uniform value stream, a
:class:`~repro.estimate.QueryPlanner` is attached, and the *standard
workload* -- 70% broad aggregates, 15% moderate range filters, 15%
highly selective filters, all at a 5% relative-error target -- runs
against it.  The report gates three properties:

* **speedup** -- median cache-hit latency must beat the uncached disk
  path (a full ``snapshot_batch`` + columnar estimate, what every
  ``estimate_*`` call paid before the planner) by >= 50x.
* **hit rate** -- >= 80% of the workload must be answerable from the
  hot subsample within the 5% target (the Section 2 arithmetic: broad
  aggregates need a few hundred rows, so a 4096-row cache certifies
  them instantly; only the rare-predicate tail escalates).
* **bit-exactness** -- the planner never touches engine randomness: an
  uncached twin fed the same stream and issued the same escalation
  draws must finish with byte-identical samples, equal
  :class:`~repro.storage.disk_model.DiskStats` counters, and an equal
  simulated clock.

``benchmarks/perf_smoke.py`` asserts all three gates from the
``BENCH_aqp.json`` this module produces.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from ..storage.records import Record
from .serve import _percentile

#: Workload sizing: small enough for CI, large enough that the hit-rate
#: and latency percentiles are stable across seeds.
DEFAULT_STREAM = 30_000
DEFAULT_QUERIES = 80
DEFAULT_BUDGET = 4_096
DEFAULT_ERROR = 0.05
_BATCH = 2_000
_CAPACITY_PER_SHARD = 6_000
_BUFFER_PER_SHARD = 600
_SHARDS = 4


def _make_engine(root: str, seed: int):
    from ..core.geometric_file import GeometricFileConfig
    from ..service import ShardedReservoir

    config = GeometricFileConfig(
        capacity=_CAPACITY_PER_SHARD,
        buffer_capacity=_BUFFER_PER_SHARD,
        record_size=50,
        retain_records=True,
        admission="uniform",
    )
    return ShardedReservoir(root, config, shards=_SHARDS, pool="inline",
                            partition="round-robin", seed=seed)


def _stream_batches(stream: int, seed: int):
    """The benchmark stream: values uniform on [0, 1000), seeded."""
    rng = np.random.default_rng(seed)
    for start in range(0, stream, _BATCH):
        n = min(_BATCH, stream - start)
        values = rng.uniform(0.0, 1000.0, size=n)
        yield [Record(key=start + i, value=float(values[i]), timestamp=0.0)
               for i in range(n)]


def _workload(queries: int):
    """The standard workload: (label, method, kwargs) triples.

    Per 20 queries: 14 broad (no predicate -- a few hundred cache rows
    certify 5%), 3 moderate (60%-selective range), 3 highly selective
    (1% tail -- needs ~150k rows, forcing escalation).  Deterministic
    interleaving, no RNG.
    """
    plan = []
    for i in range(queries):
        slot = i % 20
        if slot < 14:
            kind = ("avg", "sum", "count")[i % 3]
            plan.append(("broad", kind, {}))
        elif slot < 17:
            kind = ("sum", "avg")[i % 2]
            where = ("value", 0.0, 600.0) if kind == "sum" \
                else ("value", 200.0, 800.0)
            plan.append(("moderate", kind, {"where": where}))
        else:
            kind = ("count", "sum")[i % 2]
            plan.append(("selective", kind,
                         {"where": ("value", 990.0, 1000.0)}))
    return plan


def _run_workload(planner, queries: int) -> dict:
    """Run the standard workload, recording tiers and latencies."""
    hit_lat: list[float] = []
    esc_lat: list[float] = []
    tiers: dict[str, dict[str, int]] = {}
    for label, kind, kwargs in _workload(queries):
        method = getattr(planner, kind)
        t0 = time.perf_counter()
        answer = method(**kwargs)
        elapsed = time.perf_counter() - t0
        (hit_lat if answer.tier == "cache" else esc_lat).append(elapsed)
        bucket = tiers.setdefault(label, {"cache": 0, "disk": 0})
        bucket[answer.tier] += 1
    return {
        "hit_latencies": hit_lat,
        "escalate_latencies": esc_lat,
        "tiers": tiers,
    }


def _core_stats(engine) -> dict:
    """The twin-comparable slice of ``stats()`` (no supervisor extras)."""
    stats = engine.stats().as_dict()
    return {field: stats.get(field)
            for field in ("seen", "samples_added", "flushes", "clock", "io")}


def _time_disk_path(engine, rounds: int) -> list[float]:
    """The uncached baseline: full merged draw + columnar estimate."""
    from ..estimate import BatchQuery

    latencies = []
    for i in range(rounds):
        t0 = time.perf_counter()
        batch, seen = engine.snapshot_batch(None)
        q = BatchQuery(batch, seen)
        (q.avg, q.sum, q.count)[i % 3]()
        latencies.append(time.perf_counter() - t0)
    return latencies


def aqp_smoke(*, seed: int = 0, stream: int = DEFAULT_STREAM,
              queries: int = DEFAULT_QUERIES, budget: int = DEFAULT_BUDGET,
              error: float = DEFAULT_ERROR) -> dict:
    """Run the tiered-AQP benchmark; returns the ``BENCH_aqp.json`` dict."""
    from ..estimate import QueryPlanner

    batches = list(_stream_batches(stream, seed))

    with tempfile.TemporaryDirectory(prefix="repro-aqp-bench-") as root_a, \
            tempfile.TemporaryDirectory(prefix="repro-aqp-twin-") as root_b:
        planner_engine = _make_engine(root_a, seed)
        twin = _make_engine(root_b, seed)
        try:
            # Record every escalation draw the planner issues so the
            # uncached twin can replay the exact call sequence.
            draws: list[int | None] = []
            inner = planner_engine.snapshot_batch

            def recording(k=None):
                draws.append(k)
                return inner(k)

            planner_engine.snapshot_batch = recording
            # Attached before ingest: the cache rides the stream through
            # the offer_batch hooks and stays coherent throughout.
            planner = QueryPlanner(planner_engine, error=error,
                                   confidence=0.95, budget=budget, seed=seed)
            for batch in batches:
                planner_engine.offer_batch(batch)
            run = _run_workload(planner, queries)
            del planner_engine.snapshot_batch  # restore the bound method

            # The uncached twin: identical stream, then the identical
            # escalation draws, then byte-for-byte comparison.
            for batch in batches:
                twin.offer_batch(batch)
            for k in draws:
                twin.snapshot_batch(k)
            batch_a, seen_a = planner_engine.snapshot_batch(None)
            batch_b, seen_b = twin.snapshot_batch(None)
            stats_a = _core_stats(planner_engine)
            stats_b = _core_stats(twin)
            bit_exact = {
                "samples": bool(
                    seen_a == seen_b
                    and batch_a.array.tobytes() == batch_b.array.tobytes()),
                "io": stats_a["io"] == stats_b["io"],
                "clock": stats_a["clock"] == stats_b["clock"],
            }

            disk_lat = _time_disk_path(twin, rounds=12)
        finally:
            planner_engine.close()
            twin.close()

    hit_p50 = _percentile(run["hit_latencies"], 0.50)
    disk_p50 = _percentile(disk_lat, 0.50)
    speedup = disk_p50 / hit_p50 if hit_p50 > 0 else 0.0
    hit_rate = planner.hit_rate
    gates = {
        "speedup_floor": 50.0,
        "hit_rate_floor": 0.80,
        "speedup": round(speedup, 1),
        "hit_rate": round(hit_rate, 4),
        "bit_exact": all(bit_exact.values()),
    }
    gates["pass"] = (gates["speedup"] >= gates["speedup_floor"]
                     and gates["hit_rate"] >= gates["hit_rate_floor"]
                     and gates["bit_exact"])
    return {
        "benchmark": "tiered AQP planner smoke",
        "config": {
            "seed": seed,
            "stream": stream,
            "queries": queries,
            "budget": budget,
            "error": error,
            "engine": f"sharded service ({_SHARDS} shards, inline pool, "
                      f"{_CAPACITY_PER_SHARD} records/shard)",
        },
        "workload": run["tiers"],
        "planner": {
            "queries": planner.queries,
            "hits": planner.hits,
            "escalations": planner.escalations,
            "hit_rate": round(hit_rate, 4),
            "cache_fill": planner.cache.fill,
            "cache_refreshes": planner.cache.refreshes,
            "escalation_draws": list(draws),
        },
        "latency": {
            "cache_hit_p50_us": round(hit_p50 * 1e6, 1),
            "cache_hit_p99_us": round(
                _percentile(run["hit_latencies"], 0.99) * 1e6, 1),
            "escalate_p50_us": round(
                _percentile(run["escalate_latencies"], 0.50) * 1e6, 1),
            "disk_p50_us": round(disk_p50 * 1e6, 1),
            "speedup_p50": round(speedup, 1),
        },
        "bit_exact": bit_exact,
        "gates": gates,
    }


def render_aqp_report(report: dict) -> str:
    """Human-readable table of the :func:`aqp_smoke` report dict."""
    config = report["config"]
    planner = report["planner"]
    latency = report["latency"]
    gates = report["gates"]
    exact = report["bit_exact"]
    tier_lines = []
    for label, bucket in sorted(report["workload"].items()):
        tier_lines.append(
            f"    {label:<10} cache {bucket['cache']:>3}   "
            f"disk {bucket['disk']:>3}")
    return "\n".join([
        f"tiered AQP planner ({config['engine']})",
        "",
        f"  workload: {planner['queries']} queries at "
        f"{config['error']:.0%} error, cache budget {config['budget']:,}",
        *tier_lines,
        f"  hit rate: {planner['hit_rate']:.1%}"
        f"   (floor {gates['hit_rate_floor']:.0%})",
        f"  latency: cache-hit P50 {latency['cache_hit_p50_us']:.0f} us"
        f"   disk P50 {latency['disk_p50_us']:.0f} us"
        f"   speedup {latency['speedup_p50']:.0f}x"
        f" (floor {gates['speedup_floor']:.0f}x)",
        f"  bit-exact twin: samples={exact['samples']}"
        f" io={exact['io']} clock={exact['clock']}",
        f"  gates: {'PASS' if gates['pass'] else 'FAIL'}",
    ])
