"""The paper's three benchmark experiments (Section 8 / Figure 7).

Each experiment maintains a 50 GB reservoir from a synthetic stream for
20 hours, comparing the five alternatives:

* Experiment 1 -- 1 billion 50 B records, 600 MB of memory
  (500 MB new-sample buffer + 100 MB LRU pool; the virtual-memory
  option gets the whole 600 MB as its pool);
* Experiment 2 -- 50 million 1 KB records, same memory;
* Experiment 3 -- 50 B records with memory cut to 150 MB
  (50 MB buffer + 100 MB pool).

The multi-file option uses ``alpha' = 0.9`` throughout, as the paper
did.  A ``scale`` divisor shrinks the record *counts* (never the record
size, block size, or disk parameters) so the suite can run quickly;
``scale=1`` is the paper's exact configuration, feasible here because
the count-only fast path does no per-record Python work.  Horizons are
expressed as the paper's 20 hours divided by the same scale, keeping
the x-axis in proportion to the (scale-invariant) reservoir fill time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import (
    DiskReservoirConfig,
    LocalOverwriteReservoir,
    ScanReservoir,
    VirtualMemoryReservoir,
)
from ..core.geometric_file import GeometricFile, GeometricFileConfig
from ..core.multi import MultiFileConfig, MultipleGeometricFiles
from ..reservoir import StreamReservoir
from ..storage.device import SimulatedBlockDevice
from ..storage.disk_model import DiskParameters

GIB = 1024 ** 3
MIB = 1024 ** 2

#: Canonical ordering of the alternatives in tables and figures.
ALTERNATIVE_NAMES = (
    "virtual mem",
    "scan",
    "local overwrite",
    "geo file",
    "multiple geo files",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One Figure 7 panel's parameters, at an adjustable scale.

    Attributes:
        name: label used in reports ("experiment 1 (fig 7a)").
        record_size: bytes per record.
        reservoir_bytes: paper-scale reservoir size.
        buffer_bytes: paper-scale new-sample buffer.
        pool_bytes: paper-scale LRU pool for the buffered options.
        vm_pool_bytes: LRU pool for the virtual-memory option (it gets
            everything).
        horizon_hours: paper-scale experiment duration.
        alpha_prime: per-file decay for the multi-file option.
        scale: divisor applied to record counts and the horizon.
            ``scale=0`` is *smoke mode*: a fixed tiny configuration
            (100k-record reservoir, 10k-record buffer, a horizon of a
            few fill times) for CI and the ``--metrics`` quick path.
    """

    name: str
    record_size: int
    reservoir_bytes: int = 50 * GIB
    buffer_bytes: int = 500 * MIB
    pool_bytes: int = 100 * MIB
    vm_pool_bytes: int = 600 * MIB
    horizon_hours: float = 20.0
    alpha_prime: float = 0.9
    scale: int = 1
    seed: int = 0

    #: Smoke-mode sizing (``scale=0``): B/N = 0.1 gives alpha = 0.9 =
    #: the default alpha', so the multi-file option degenerates to one
    #: file instead of rejecting the configuration.
    SMOKE_CAPACITY = 100_000
    SMOKE_BUFFER = 10_000

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError("scale must be non-negative (0 = smoke mode)")

    # -- derived, scaled quantities -------------------------------------------

    @property
    def capacity(self) -> int:
        """Reservoir size N in records, after scaling."""
        if self.scale == 0:
            return self.SMOKE_CAPACITY
        return max(1000, self.reservoir_bytes // self.record_size
                   // self.scale)

    @property
    def buffer_capacity(self) -> int:
        """New-sample buffer B in records, after scaling."""
        if self.scale == 0:
            return self.SMOKE_BUFFER
        return max(50, self.buffer_bytes // self.record_size // self.scale)

    @property
    def horizon_seconds(self) -> float:
        if self.scale == 0:
            # A few reservoir fill times: long enough to cross into the
            # steady state, short enough for a CI smoke run.
            fill = (self.capacity * self.record_size
                    / self.disk_parameters().transfer_rate)
            return 3.0 * fill + 0.5
        return self.horizon_hours * 3600.0 / self.scale

    def disk_parameters(self) -> DiskParameters:
        """The Section 8 disk: 10 ms access, 40 MB/s, 32 KB blocks."""
        return DiskParameters(seek_time=0.010,
                              transfer_rate=40 * MIB,
                              block_size=32 * 1024)

    def pool_blocks(self, block_size: int, *, virtual_memory: bool) -> int:
        """LRU pool size in blocks (scaled with the record counts)."""
        pool_bytes = (self.vm_pool_bytes if virtual_memory
                      else self.pool_bytes)
        if self.scale == 0:
            # Keep the paper's pool-to-reservoir ratio so the
            # virtual-memory option still misses (a pool covering the
            # whole smoke reservoir would never touch the disk).
            reservoir_blocks = -(-self.capacity * self.record_size
                                 // block_size)
            return max(4, reservoir_blocks * pool_bytes
                       // self.reservoir_bytes)
        return max(4, pool_bytes // block_size // self.scale)

    # -- factories -------------------------------------------------------------

    def make(self, name: str) -> StreamReservoir:
        """Instantiate one alternative with its own simulated disk."""
        params = self.disk_parameters()
        block = params.block_size
        if name == "geo file":
            config = GeometricFileConfig(
                capacity=self.capacity,
                buffer_capacity=self.buffer_capacity,
                record_size=self.record_size,
            )
            blocks = GeometricFile.required_blocks(config, block)
            device = SimulatedBlockDevice(blocks, params)
            return GeometricFile(device, config, seed=self.seed)
        if name == "multiple geo files":
            config = MultiFileConfig(
                capacity=self.capacity,
                buffer_capacity=self.buffer_capacity,
                record_size=self.record_size,
                alpha_prime=self.alpha_prime,
            )
            blocks = MultipleGeometricFiles.required_blocks(config, block)
            device = SimulatedBlockDevice(blocks, params)
            return MultipleGeometricFiles(device, config, seed=self.seed)
        baseline_classes = {
            "virtual mem": VirtualMemoryReservoir,
            "scan": ScanReservoir,
            "local overwrite": LocalOverwriteReservoir,
        }
        if name not in baseline_classes:
            raise ValueError(f"unknown alternative {name!r}")
        cls = baseline_classes[name]
        config = DiskReservoirConfig(
            capacity=self.capacity,
            buffer_capacity=self.buffer_capacity,
            record_size=self.record_size,
            pool_blocks=self.pool_blocks(
                block, virtual_memory=(name == "virtual mem")
            ),
        )
        blocks = cls.required_blocks(config, block)
        device = SimulatedBlockDevice(blocks, params)
        return cls(device, config, seed=self.seed)

    def make_all(self) -> dict[str, StreamReservoir]:
        """One instance of each of the five alternatives."""
        return {name: self.make(name) for name in ALTERNATIVE_NAMES}


def experiment_1(scale: int = 1, seed: int = 0) -> ExperimentSpec:
    """Figure 7 (a): 50 B records, 600 MB of memory."""
    return ExperimentSpec(name="experiment 1 (fig 7a)", record_size=50,
                          scale=scale, seed=seed)


def experiment_2(scale: int = 1, seed: int = 0) -> ExperimentSpec:
    """Figure 7 (b): 1 KB records, 600 MB of memory."""
    return ExperimentSpec(name="experiment 2 (fig 7b)", record_size=1024,
                          scale=scale, seed=seed)


def experiment_3(scale: int = 1, seed: int = 0) -> ExperimentSpec:
    """Figure 7 (c): 50 B records, memory cut to 150 MB."""
    return ExperimentSpec(name="experiment 3 (fig 7c)", record_size=50,
                          buffer_bytes=50 * MIB, vm_pool_bytes=150 * MIB,
                          scale=scale, seed=seed)
