"""Sampling-law benchmark: ``repro-bench --report law``.

Two properties of the pluggable law engine are measured and gated:

* **uniform twin parity** -- a geometric file built from a default
  (law-less) config and one built with an explicit ``law="uniform"``
  must be *bit-exact* after the same stream: identical sample keys,
  equal :class:`~repro.storage.disk_model.DiskStats` counters, and an
  equal simulated clock.  The uniform law's method bodies are the
  pre-refactor code on the same RNG objects, so any divergence means
  the refactor changed behaviour, not just structure.

* **weighted-ingest throughput** -- batched A-ExpJ ingest
  (``law="aexpj"``, value-proportional weights) must stay within a
  constant factor of uniform batched ingest on the same stream.  The
  gate is a *ratio* of two same-run wall-clock measurements, so it
  holds on any host; a trip means the weighted admission path fell
  back to per-record work (the exponential-jump batching or the
  vectorised key kernel stopped being used).

The per-law table (records/s, flushes, final sample size, law
counters) is informational; ``benchmarks/perf_smoke.py`` asserts the
two gates from the ``BENCH_law.json`` this module produces.
"""

from __future__ import annotations

import time

import numpy as np

from ..storage.records import Record

DEFAULT_RECORDS = 60_000
_BATCH = 2_000
_CAPACITY = 2_000
_BUFFER = 200

#: A-ExpJ batched ingest must stay within this factor of uniform
#: batched ingest (measured ~0.8-1.2x; the floor trips only when the
#: weighted path regresses to per-record speed).
WEIGHTED_RATIO_FLOOR = 0.2

#: Law configurations benchmarked, in run order.
LAW_CASES = (
    ("uniform", ()),
    ("aexpj", (("weight", "value"),)),
    ("wr", (("weight", "value"),)),
    # Sized so the expected candidate need s*(1 + ln(window/s)) ~ 1860
    # fits the 2000-record budget; overflow_events stays near zero.
    ("window", (("window", 10_000), ("sample_size", 400))),
)


def _make_file(law: str, law_params: tuple, seed: int):
    from ..core.geometric_file import GeometricFile, GeometricFileConfig
    from ..storage.device import SimulatedBlockDevice
    from ..storage.disk_model import DiskParameters

    config = GeometricFileConfig(
        capacity=_CAPACITY,
        buffer_capacity=_BUFFER,
        record_size=50,
        retain_records=True,
        law=law,
        law_params=law_params,
    )
    params = DiskParameters(seek_time=0.010,
                            transfer_rate=40 * 1024 * 1024,
                            block_size=4096)
    blocks = GeometricFile.required_blocks(config, params.block_size)
    device = SimulatedBlockDevice(blocks, params)
    return GeometricFile(device, config, seed=seed)


def _stream_batches(records: int, seed: int):
    """Benchmark stream: values uniform on [0, 1000), seeded."""
    rng = np.random.default_rng(seed)
    batches = []
    for start in range(0, records, _BATCH):
        n = min(_BATCH, records - start)
        values = rng.uniform(0.0, 1000.0, size=n)
        batches.append([
            Record(key=start + i, value=float(values[i]),
                   timestamp=float(start + i))
            for i in range(n)
        ])
    return batches


def _twin_parity(batches, seed: int) -> dict:
    """Default config vs explicit law='uniform': bit-exact or bust."""
    from ..core.geometric_file import GeometricFile, GeometricFileConfig
    from ..storage.device import SimulatedBlockDevice
    from ..storage.disk_model import DiskParameters

    params = DiskParameters(seek_time=0.010,
                            transfer_rate=40 * 1024 * 1024,
                            block_size=4096)
    twins = []
    for law_kw in ({}, {"law": "uniform"}):
        config = GeometricFileConfig(
            capacity=_CAPACITY, buffer_capacity=_BUFFER, record_size=50,
            retain_records=True, **law_kw)
        blocks = GeometricFile.required_blocks(config, params.block_size)
        gf = GeometricFile(SimulatedBlockDevice(blocks, params),
                           config, seed=seed)
        for batch in batches:
            gf.offer_many(batch)
        twins.append(gf)
    a, b = twins
    samples = ([r.key for r in a.sample()] == [r.key for r in b.sample()])
    return {
        "samples": bool(samples),
        "io": a.device.stats() == b.device.stats(),
        "clock": a._clock() == b._clock(),
    }


def _ingest(law: str, law_params: tuple, batches, seed: int) -> dict:
    gf = _make_file(law, law_params, seed)
    records = sum(len(b) for b in batches)
    t0 = time.perf_counter()
    for batch in batches:
        gf.offer_many(batch)
    elapsed = time.perf_counter() - t0
    gf.check_invariants()
    row = {
        "records_per_s": round(records / elapsed, 1),
        "flushes": gf.flushes,
        "sample_size": len(gf.sample()),
        "law": gf._stats_extra().get("law"),
    }
    gf.close()
    return row


def law_smoke(*, seed: int = 0, records: int = DEFAULT_RECORDS) -> dict:
    """Run the sampling-law benchmark; returns the BENCH_law.json dict."""
    batches = _stream_batches(records, seed)
    bit_exact = _twin_parity(batches, seed)
    laws = {law: _ingest(law, law_params, batches, seed)
            for law, law_params in LAW_CASES}
    ratio = (laws["aexpj"]["records_per_s"]
             / laws["uniform"]["records_per_s"])
    gates = {
        "weighted_ratio_floor": WEIGHTED_RATIO_FLOOR,
        "weighted_ratio": round(ratio, 3),
        "bit_exact": all(bit_exact.values()),
    }
    gates["pass"] = (gates["weighted_ratio"] >= WEIGHTED_RATIO_FLOOR
                     and gates["bit_exact"])
    return {
        "benchmark": "sampling-law engine smoke",
        "config": {
            "seed": seed,
            "records": records,
            "capacity": _CAPACITY,
            "buffer_capacity": _BUFFER,
            "cases": [
                {"law": law, "params": [list(p) for p in law_params]}
                for law, law_params in LAW_CASES
            ],
        },
        "laws": laws,
        "bit_exact": bit_exact,
        "gates": gates,
    }


def render_law_report(report: dict) -> str:
    """Human-readable table of the :func:`law_smoke` report dict."""
    config = report["config"]
    gates = report["gates"]
    exact = report["bit_exact"]
    rows = []
    for law, row in report["laws"].items():
        extra = ""
        law_stats = row.get("law") or {}
        for key in ("log_threshold", "total_weight", "overflow_events"):
            if key in law_stats:
                extra = f"   {key}={law_stats[key]:.6g}"
        rows.append(
            f"    {law:<8} {row['records_per_s']:>12,.0f} rec/s   "
            f"flushes {row['flushes']:>4}   "
            f"sample {row['sample_size']:>5}{extra}")
    return "\n".join([
        f"sampling-law engine ({config['records']:,} records, "
        f"capacity {config['capacity']:,})",
        "",
        *rows,
        f"  uniform twin: samples={exact['samples']}"
        f" io={exact['io']} clock={exact['clock']}",
        f"  weighted ingest ratio (aexpj/uniform): "
        f"{gates['weighted_ratio']:.2f}"
        f" (floor {gates['weighted_ratio_floor']:.2f})",
        f"  gates: {'PASS' if gates['pass'] else 'FAIL'}",
    ])
