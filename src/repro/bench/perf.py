"""Ingest-throughput micro-benchmark (the batch-pipeline smoke test).

Measures wall-clock records/second for the three ingestion paths of
every alternative at the fixed ``scale=0`` smoke configuration:

* ``offer`` -- the per-record scalar loop (the *before* number);
* ``offer_many`` -- the vectorised batch path (the *after* number);
* ``feed_stream`` -- Vitter skip feeding, scalar vs batched gap draws,
  for the uniform-admission geometric file.

The point is regression detection, not absolute speed: the report
(``BENCH_ingest.json``) pins the measured speedups so a change that
quietly sends the batch path back through per-record Python shows up
as a collapsed ratio.  Simulated-disk I/O is identical between paths
by construction (the admission law is the same); only Python CPU time
differs, so wall-clock is the right metric.
"""

from __future__ import annotations

import json
import time
from typing import Callable

from ..reservoir import StreamReservoir
from ..sampling.feeder import feed_stream
from .experiments import ALTERNATIVE_NAMES, ExperimentSpec, experiment_1

#: Default stream length: several smoke-reservoir fills, enough to put
#: every structure well into its steady state.
DEFAULT_RECORDS = 400_000

#: Default records per offer_many call.
DEFAULT_BATCH = 4096


def _time_run(total: int, step: Callable[[int], None],
              chunk: int) -> float:
    """Drive ``step`` over ``total`` records; returns records/second."""
    start = time.perf_counter()
    done = 0
    while done < total:
        take = min(chunk, total - done)
        step(take)
        done += take
    elapsed = time.perf_counter() - start
    return total / max(elapsed, 1e-9)


def measure_structure(spec: ExperimentSpec, name: str, *,
                      records: int = DEFAULT_RECORDS,
                      batch_size: int = DEFAULT_BATCH) -> dict:
    """offer vs offer_many throughput for one alternative."""
    scalar = spec.make(name)
    batch = [None] * batch_size

    def offer_step(take: int) -> None:
        offer = scalar.offer
        for _ in range(take):
            offer(None)

    offer_rps = _time_run(records, offer_step, batch_size)

    batched = spec.make(name)

    def offer_many_step(take: int) -> None:
        batched.offer_many(batch if take == batch_size else [None] * take)

    offer_many_rps = _time_run(records, offer_many_step, batch_size)
    if scalar.stats().seen != batched.stats().seen:
        raise AssertionError("paths consumed different stream lengths")
    return {
        "offer_rps": round(offer_rps),
        "offer_many_rps": round(offer_many_rps),
        "speedup": round(offer_many_rps / offer_rps, 2),
    }


def measure_feed(spec: ExperimentSpec, *, records: int = DEFAULT_RECORDS,
                 batch_size: int = DEFAULT_BATCH) -> dict:
    """Scalar vs batched skip feeding on a uniform-admission geo file."""
    stream = [None] * records

    def run(feed_batch: int) -> float:
        from ..core.geometric_file import GeometricFile, GeometricFileConfig
        from ..storage.device import SimulatedBlockDevice

        config = GeometricFileConfig(
            capacity=spec.capacity,
            buffer_capacity=spec.buffer_capacity,
            record_size=spec.record_size,
            admission="uniform",
        )
        params = spec.disk_parameters()
        blocks = GeometricFile.required_blocks(config, params.block_size)
        reservoir = GeometricFile(SimulatedBlockDevice(blocks, params),
                                  config, seed=spec.seed)
        start = time.perf_counter()
        consumed = feed_stream(stream, reservoir, batch_size=feed_batch)
        elapsed = time.perf_counter() - start
        if consumed != records:
            raise AssertionError(f"fed {consumed} of {records} records")
        return records / max(elapsed, 1e-9)

    scalar_rps = run(1)
    batched_rps = run(batch_size)
    return {
        "scalar_rps": round(scalar_rps),
        "batched_rps": round(batched_rps),
        "speedup": round(batched_rps / scalar_rps, 2),
    }


def perf_smoke(*, records: int = DEFAULT_RECORDS,
               batch_size: int = DEFAULT_BATCH, seed: int = 0,
               names: tuple[str, ...] = ALTERNATIVE_NAMES) -> dict:
    """Run the whole ingest benchmark; returns the report dict."""
    spec = experiment_1(scale=0, seed=seed)
    structures = {
        name: measure_structure(spec, name, records=records,
                                batch_size=batch_size)
        for name in names
    }
    report = {
        "benchmark": "batch-ingest smoke",
        "config": {
            "capacity": spec.capacity,
            "buffer_capacity": spec.buffer_capacity,
            "record_size": spec.record_size,
            "records": records,
            "batch_size": batch_size,
            "seed": seed,
        },
        "structures": structures,
        "feed_stream": measure_feed(spec, records=records,
                                    batch_size=batch_size),
        # The virtual-memory baseline is excluded from the headline
        # ratio: its steady state is one stateful LRU-pool walk per
        # record (that per-record cost is the paper's argument against
        # it), so batching only removes the admission overhead.
        "min_buffered_speedup": min(
            (row["speedup"] for name, row in structures.items()
             if name != "virtual mem"), default=0.0,
        ),
    }
    return report


def render_report(report: dict) -> str:
    """Human-readable table of the report dict."""
    lines = ["ingest throughput (records/second, wall clock)", ""]
    header = (f"  {'structure':<22} {'offer':>12} {'offer_many':>12} "
              f"{'speedup':>8}")
    lines.append(header)
    for name, row in report["structures"].items():
        lines.append(f"  {name:<22} {row['offer_rps']:>12,} "
                     f"{row['offer_many_rps']:>12,} "
                     f"{row['speedup']:>7.1f}x")
    feed = report["feed_stream"]
    lines.append("")
    lines.append(f"  {'feed_stream (uniform)':<22} "
                 f"{feed['scalar_rps']:>12,} {feed['batched_rps']:>12,} "
                 f"{feed['speedup']:>7.1f}x")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="ascii") as sink:
        json.dump(report, sink, indent=2, sort_keys=True)
        sink.write("\n")
