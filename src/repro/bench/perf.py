"""Ingest-throughput micro-benchmark (the batch-pipeline smoke test).

Measures wall-clock records/second for the three ingestion paths of
every alternative at the fixed ``scale=0`` smoke configuration:

* ``offer`` -- the per-record scalar loop (the *before* number);
* ``offer_many`` -- the vectorised batch path (the *after* number);
* ``feed_stream`` -- Vitter skip feeding, scalar vs batched gap draws,
  for the uniform-admission geometric file.

The point is regression detection, not absolute speed: the report
(``BENCH_ingest.json``) pins the measured speedups so a change that
quietly sends the batch path back through per-record Python shows up
as a collapsed ratio.  Simulated-disk I/O is identical between paths
by construction (the admission law is the same); only Python CPU time
differs, so wall-clock is the right metric.
"""

from __future__ import annotations

import json
import tempfile
import time
from typing import Callable

from ..reservoir import StreamReservoir
from ..sampling.feeder import feed_stream
from .experiments import ALTERNATIVE_NAMES, ExperimentSpec, experiment_1

#: Default stream length: several smoke-reservoir fills, enough to put
#: every structure well into its steady state.
DEFAULT_RECORDS = 400_000

#: Default records per offer_many call.
DEFAULT_BATCH = 4096


def _time_run(total: int, step: Callable[[int], None],
              chunk: int) -> float:
    """Drive ``step`` over ``total`` records; returns records/second."""
    start = time.perf_counter()
    done = 0
    while done < total:
        take = min(chunk, total - done)
        step(take)
        done += take
    elapsed = time.perf_counter() - start
    return total / max(elapsed, 1e-9)


def measure_structure(spec: ExperimentSpec, name: str, *,
                      records: int = DEFAULT_RECORDS,
                      batch_size: int = DEFAULT_BATCH) -> dict:
    """offer vs offer_many throughput for one alternative."""
    scalar = spec.make(name)
    batch = [None] * batch_size

    def offer_step(take: int) -> None:
        offer = scalar.offer
        for _ in range(take):
            offer(None)

    offer_rps = _time_run(records, offer_step, batch_size)

    batched = spec.make(name)

    def offer_many_step(take: int) -> None:
        batched.offer_many(batch if take == batch_size else [None] * take)

    offer_many_rps = _time_run(records, offer_many_step, batch_size)
    if scalar.stats().seen != batched.stats().seen:
        raise AssertionError("paths consumed different stream lengths")
    return {
        "offer_rps": round(offer_rps),
        "offer_many_rps": round(offer_many_rps),
        "speedup": round(offer_many_rps / offer_rps, 2),
    }


def measure_feed(spec: ExperimentSpec, *, records: int = DEFAULT_RECORDS,
                 batch_size: int = DEFAULT_BATCH) -> dict:
    """Scalar vs batched skip feeding on a uniform-admission geo file."""
    stream = [None] * records

    def run(feed_batch: int) -> float:
        from ..core.geometric_file import GeometricFile, GeometricFileConfig
        from ..storage.device import SimulatedBlockDevice

        config = GeometricFileConfig(
            capacity=spec.capacity,
            buffer_capacity=spec.buffer_capacity,
            record_size=spec.record_size,
            admission="uniform",
        )
        params = spec.disk_parameters()
        blocks = GeometricFile.required_blocks(config, params.block_size)
        reservoir = GeometricFile(SimulatedBlockDevice(blocks, params),
                                  config, seed=spec.seed)
        start = time.perf_counter()
        consumed = feed_stream(stream, reservoir, batch_size=feed_batch)
        elapsed = time.perf_counter() - start
        if consumed != records:
            raise AssertionError(f"fed {consumed} of {records} records")
        return records / max(elapsed, 1e-9)

    scalar_rps = run(1)
    batched_rps = run(batch_size)
    return {
        "scalar_rps": round(scalar_rps),
        "batched_rps": round(batched_rps),
        "speedup": round(batched_rps / scalar_rps, 2),
    }


def perf_smoke(*, records: int = DEFAULT_RECORDS,
               batch_size: int = DEFAULT_BATCH, seed: int = 0,
               names: tuple[str, ...] = ALTERNATIVE_NAMES) -> dict:
    """Run the whole ingest benchmark; returns the report dict."""
    spec = experiment_1(scale=0, seed=seed)
    structures = {
        name: measure_structure(spec, name, records=records,
                                batch_size=batch_size)
        for name in names
    }
    report = {
        "benchmark": "batch-ingest smoke",
        "config": {
            "capacity": spec.capacity,
            "buffer_capacity": spec.buffer_capacity,
            "record_size": spec.record_size,
            "records": records,
            "batch_size": batch_size,
            "seed": seed,
        },
        "structures": structures,
        "feed_stream": measure_feed(spec, records=records,
                                    batch_size=batch_size),
        # The virtual-memory baseline is excluded from the headline
        # ratio: its steady state is one stateful LRU-pool walk per
        # record (that per-record cost is the paper's argument against
        # it), so batching only removes the admission overhead.
        "min_buffered_speedup": min(
            (row["speedup"] for name, row in structures.items()
             if name != "virtual mem"), default=0.0,
        ),
    }
    return report


#: IPC-comparison workload: per-shard reservoir deliberately small so
#: the transport, not the reservoir arithmetic, dominates wall time.
IPC_RECORDS = 200_000
IPC_CAPACITY = 2_000
IPC_BUFFER = 400
IPC_K = 2_000
IPC_REPEATS = 5


def _ipc_batches(records: int, batch_size: int):
    """The columnar ingest workload both transports are fed."""
    from ..storage.recordbatch import RecordBatch
    from ..storage.records import RecordSchema

    schema = RecordSchema(50)
    batches = []
    for start in range(0, records, batch_size):
        n = min(batch_size, records - start)
        keys = list(range(start, start + n))
        batches.append(RecordBatch.from_columns(
            schema, keys, values=[float(k % 97) for k in keys]))
    return batches


def _ipc_run(batches, *, shards: int, seed: int, ipc: str, k: int,
             repeats: int) -> dict:
    """One cross-process run of the IPC workload on one transport."""
    from ..core.geometric_file import GeometricFileConfig
    from ..service import ShardedReservoir

    config = GeometricFileConfig(
        capacity=IPC_CAPACITY, buffer_capacity=IPC_BUFFER, record_size=50,
        admission="uniform", retain_records=True)
    records = sum(len(batch) for batch in batches)
    with tempfile.TemporaryDirectory(prefix="repro-ipc-bench-") as root:
        with ShardedReservoir(root, config, shards=shards, pool="process",
                              partition="round-robin", ipc=ipc,
                              seed=seed, timeout=120.0) as service:
            start = time.perf_counter()
            for batch in batches:
                service.offer_batch(batch)
            service.stats()  # drains every inbox: an ingest barrier
            ingest = time.perf_counter() - start
            start = time.perf_counter()
            for _ in range(repeats):
                service.sample_batch(k)
            query = (time.perf_counter() - start) / repeats
            final = service.sample_batch(k)
            return {
                "ingest_seconds": round(ingest, 4),
                "ingest_rps": round(records / max(ingest, 1e-9)),
                "query_seconds": round(query, 5),
                "sample_keys": sorted(final.keys.tolist()),
                "ipc": service.ipc_stats(),
            }


def measure_ipc(*, shards: int = 4, records: int = IPC_RECORDS,
                batch_size: int = DEFAULT_BATCH, seed: int = 0,
                k: int = IPC_K, repeats: int = IPC_REPEATS) -> dict:
    """Queue vs shared-memory transport on the same columnar workload.

    Both runs are fed identical :class:`RecordBatch` streams through
    real worker processes, so the only difference is how the bytes
    travel: pickled through ``multiprocessing.Queue`` versus zero-copy
    slabs over the per-shard shared-memory rings.  ``bit_exact``
    compares the final merged sample's keys across the two runs -- the
    transports must be indistinguishable to the sampling math.
    """
    from ..service import HAVE_SHM

    if not HAVE_SHM:  # pragma: no cover - shm is baked into CPython
        return {"skipped": "multiprocessing.shared_memory unavailable"}
    batches = _ipc_batches(records, batch_size)
    queue = _ipc_run(batches, shards=shards, seed=seed, ipc="queue",
                     k=k, repeats=repeats)
    shm = _ipc_run(batches, shards=shards, seed=seed, ipc="shm",
                   k=k, repeats=repeats)
    bit_exact = queue.pop("sample_keys") == shm.pop("sample_keys")
    return {
        "config": {
            "shards": shards,
            "records": records,
            "batch_size": batch_size,
            "capacity_per_shard": IPC_CAPACITY,
            "buffer_per_shard": IPC_BUFFER,
            "record_size": 50,
            "k": k,
            "query_repeats": repeats,
            "seed": seed,
        },
        "queue": queue,
        "shm": shm,
        "ingest_speedup": round(
            queue["ingest_seconds"] / max(shm["ingest_seconds"], 1e-9), 2),
        "query_speedup": round(
            queue["query_seconds"] / max(shm["query_seconds"], 1e-9), 2),
        "bit_exact": bit_exact,
    }


def _shard_config(spec: ExperimentSpec, shards: int):
    """Per-shard sizing: the smoke reservoir split ``shards`` ways.

    Holding the *total* capacity fixed is what makes the comparison a
    scale-out one: ``S`` shards each own ``1/S`` of the reservoir and
    absorb ``1/S`` of the stream on their own simulated spindle.
    """
    from ..core.geometric_file import GeometricFileConfig

    return GeometricFileConfig(
        capacity=spec.capacity // shards,
        buffer_capacity=spec.buffer_capacity // shards,
        record_size=spec.record_size,
        admission="uniform",
    )


def _run_sharded(spec: ExperimentSpec, shards: int, *, records: int,
                 batch_size: int, pool: str, queue_depth: int,
                 measure_recovery: bool, ipc: str = "shm") -> dict:
    """Drive one ShardedReservoir over the stream; returns its row."""
    from ..service import ShardedReservoir

    config = _shard_config(spec, shards)
    batch = [None] * batch_size
    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as root:
        with ShardedReservoir(root, config, shards=shards, pool=pool,
                              partition="round-robin",
                              queue_depth=queue_depth, ipc=ipc,
                              seed=spec.seed) as service:
            start = time.perf_counter()
            done = 0
            while done < records:
                take = min(batch_size, records - done)
                service.offer_batch(batch if take == batch_size
                                   else [None] * take)
                done += take
            stats = service.stats()  # drains every inbox: a barrier
            wall = time.perf_counter() - start
            per_shard = [
                {
                    "shard": i,
                    "seen": s.seen,
                    "sim_clock": round(s.clock, 3),
                    "sim_rps": round(s.seen / max(s.clock, 1e-9)),
                }
                for i, s in enumerate(service.shard_stats())
            ]
            row = {
                "wall_rps": round(records / max(wall, 1e-9)),
                "sim_clock": round(stats.clock, 3),
                "sim_rps": round(records / max(stats.clock, 1e-9)),
                "per_shard": per_shard,
                "queue_depth": queue_depth,
                "backpressure_stalls": service.backpressure_stalls,
            }
            if measure_recovery:
                service.kill_shard(0, hard=pool == "process")
                service.recover()
                row["recoveries"] = service.recoveries
                row["recovery_seconds"] = round(
                    service.last_recovery_seconds, 4)
            return row


def shard_smoke(*, shards: int = 4, records: int = DEFAULT_RECORDS,
                batch_size: int = DEFAULT_BATCH, seed: int = 0,
                pool: str = "process", queue_depth: int = 8,
                ipc: str = "shm") -> dict:
    """Single-shard vs ``shards``-way ingest at the smoke configuration.

    Reports wall-clock *and* simulated-disk throughput.  The headline
    number is the simulated one: each shard owns an independent
    simulated spindle and the aggregate clock is the slowest shard
    (:func:`repro.obs.aggregate_stats`), so the simulated speedup
    measures the parallelism of the sharded layout itself, independent
    of how many CPU cores the benchmark host happens to have.

    ``ipc`` picks the process pool's data-plane transport for the main
    runs; with a process pool the report additionally carries an
    ``"ipc"`` section benchmarking *both* transports head to head on a
    columnar workload (see :func:`measure_ipc`), so one entry point
    produces the queue-baseline and shared-memory numbers together.
    """
    if shards < 2:
        raise ValueError("the shard benchmark needs at least 2 shards")
    spec = experiment_1(scale=0, seed=seed)
    single = _run_sharded(spec, 1, records=records, batch_size=batch_size,
                          pool=pool, queue_depth=queue_depth,
                          measure_recovery=False, ipc=ipc)
    sharded = _run_sharded(spec, shards, records=records,
                           batch_size=batch_size, pool=pool,
                           queue_depth=queue_depth, measure_recovery=True,
                           ipc=ipc)
    report = {
        "benchmark": "sharded ingest smoke",
        "config": {
            "capacity_total": spec.capacity,
            "buffer_total": spec.buffer_capacity,
            "record_size": spec.record_size,
            "records": records,
            "batch_size": batch_size,
            "shards": shards,
            "pool": pool,
            "queue_depth": queue_depth,
            "ipc": ipc,
            "seed": seed,
        },
        "single": single,
        "sharded": sharded,
        "sim_speedup": round(sharded["sim_rps"] / single["sim_rps"], 2),
        "wall_speedup": round(sharded["wall_rps"] / single["wall_rps"], 2),
    }
    if pool == "process":
        report["ipc"] = measure_ipc(shards=shards, batch_size=batch_size,
                                    seed=seed)
    return report


def render_shard_report(report: dict) -> str:
    """Human-readable table of the shard_smoke report dict."""
    config = report["config"]
    single, sharded = report["single"], report["sharded"]
    lines = [
        f"sharded ingest (pool={config['pool']}, "
        f"{config['records']:,} records, batch {config['batch_size']})",
        "",
        f"  {'layout':<16} {'wall rps':>12} {'sim rps':>12} "
        f"{'sim clock':>10}",
        f"  {'1 shard':<16} {single['wall_rps']:>12,} "
        f"{single['sim_rps']:>12,} {single['sim_clock']:>9.2f}s",
        f"  {str(config['shards']) + ' shards':<16} "
        f"{sharded['wall_rps']:>12,} {sharded['sim_rps']:>12,} "
        f"{sharded['sim_clock']:>9.2f}s",
        "",
        f"  simulated speedup: {report['sim_speedup']:.1f}x"
        f"   wall speedup: {report['wall_speedup']:.1f}x",
        f"  queue depth: {sharded['queue_depth']}"
        f"   backpressure stalls: {sharded['backpressure_stalls']}"
        f"   recovery: {sharded['recovery_seconds'] * 1000:.1f} ms",
        "",
        f"  {'shard':<8} {'seen':>10} {'sim rps':>12} {'sim clock':>10}",
    ]
    for row in sharded["per_shard"]:
        lines.append(f"  {row['shard']:<8} {row['seen']:>10,} "
                     f"{row['sim_rps']:>12,} {row['sim_clock']:>9.2f}s")
    ipc = report.get("ipc")
    if ipc and "skipped" not in ipc:
        lines.append("")
        lines.append(render_ipc_report(ipc))
    return "\n".join(lines)


def render_ipc_report(report: dict) -> str:
    """Human-readable table of the measure_ipc report dict."""
    if "skipped" in report:
        return f"ipc comparison skipped: {report['skipped']}"
    config = report["config"]
    queue, shm = report["queue"], report["shm"]
    stats = shm["ipc"]
    lines = [
        f"ipc plane (queue vs shm, {config['shards']} shards, "
        f"{config['records']:,} records, k={config['k']})",
        "",
        f"  {'transport':<10} {'ingest':>10} {'ingest rps':>12} "
        f"{'query':>10}",
        f"  {'queue':<10} {queue['ingest_seconds']:>9.2f}s "
        f"{queue['ingest_rps']:>12,} "
        f"{queue['query_seconds'] * 1000:>8.1f}ms",
        f"  {'shm':<10} {shm['ingest_seconds']:>9.2f}s "
        f"{shm['ingest_rps']:>12,} "
        f"{shm['query_seconds'] * 1000:>8.1f}ms",
        "",
        f"  ingest speedup: {report['ingest_speedup']:.1f}x"
        f"   query speedup: {report['query_speedup']:.1f}x"
        f"   bit-exact: {report['bit_exact']}",
        f"  zero-copy bytes: {stats['zero_copy_bytes']:,}"
        f"   fallback slabs: {stats['fallback_slabs']}"
        f"   ring stalls: {stats['ring_stalls']}",
    ]
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Human-readable table of the report dict."""
    lines = ["ingest throughput (records/second, wall clock)", ""]
    header = (f"  {'structure':<22} {'offer':>12} {'offer_many':>12} "
              f"{'speedup':>8}")
    lines.append(header)
    for name, row in report["structures"].items():
        lines.append(f"  {name:<22} {row['offer_rps']:>12,} "
                     f"{row['offer_many_rps']:>12,} "
                     f"{row['speedup']:>7.1f}x")
    feed = report["feed_stream"]
    lines.append("")
    lines.append(f"  {'feed_stream (uniform)':<22} "
                 f"{feed['scalar_rps']:>12,} {feed['batched_rps']:>12,} "
                 f"{feed['speedup']:>7.1f}x")
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="ascii") as sink:
        json.dump(report, sink, indent=2, sort_keys=True)
        sink.write("\n")
