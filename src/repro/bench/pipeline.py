"""Pipelined-flush micro-benchmark (``repro-bench --pipeline``).

Two questions, answered on the simulated disk so the result is
deterministic and host-independent:

1. **Overlap** -- with a finite ``stream_rate`` (CPU-side admission
   work per flush), how much of the disk drain does the background
   writer hide?  Synchronous elapsed time is ``sum(fill + disk)`` per
   flush; pipelined elapsed is ``fill_1 + sum(max(fill, prev_disk)) +
   disk_last`` (the double-buffer timeline of
   :class:`~repro.pipeline.FlushEngine`).  The smoke configuration is
   transfer-dominated (1 KB records, 32 KB blocks), where the overlap
   credit is largest; the gate pins the speedup at >= 1.5x.

2. **Elevator** -- on the multi-file structure, whose flush scatters
   one segment write into every sub-file, how many head movements does
   address-sorting + extent coalescing save?  The gate requires
   strictly fewer seeks than FIFO order.

Both engines run the identical flush plans, so the speedup is pure
scheduling: the benchmark asserts bit-exact :class:`~repro.storage.
disk_model.DiskStats` and device-clock parity between the modes before
reporting anything.
"""

from __future__ import annotations

import json

from ..core.geometric_file import GeometricFile, GeometricFileConfig
from ..core.multi import MultiFileConfig, MultipleGeometricFiles
from ..storage.device import SimulatedBlockDevice
from ..storage.disk_model import DiskParameters

#: Overlap run: 1 KB records on 32 KB blocks keeps each flush
#: transfer-dominated, the regime where double buffering pays most.
OVERLAP_CAPACITY = 262_144
OVERLAP_BUFFER = 65_536
OVERLAP_RECORD_SIZE = 1024
OVERLAP_BLOCK_SIZE = 32_768
#: CPU-side admission rate (records/second).  Chosen so the fill time
#: of one buffer roughly matches its disk drain -- the regime where
#: double buffering hides the most (perfect balance would reach 2x).
OVERLAP_STREAM_RATE = 28_672.0
#: Stream length: the fill phase plus enough steady flushes for the
#: timeline to converge.
OVERLAP_RECORDS = 1_048_576

#: Elevator run: the Section 6 multi-file layout at 50 B records; every
#: flush writes one segment per sub-file, so FIFO order pays one seek
#: bundle per file while the elevator can sort and coalesce.
MULTI_CAPACITY = 40_000
MULTI_BUFFER = 2_000
MULTI_RECORD_SIZE = 50
MULTI_BETA = 50
MULTI_ALPHA_PRIME = 0.9
MULTI_RECORDS = 120_000


def _run_geometric(*, pipeline: bool, io_scheduler: str,
                   seed: int) -> GeometricFile:
    config = GeometricFileConfig(
        capacity=OVERLAP_CAPACITY,
        buffer_capacity=OVERLAP_BUFFER,
        record_size=OVERLAP_RECORD_SIZE,
        pipeline=pipeline,
        io_scheduler=io_scheduler,
        stream_rate=OVERLAP_STREAM_RATE,
    )
    params = DiskParameters(block_size=OVERLAP_BLOCK_SIZE)
    blocks = GeometricFile.required_blocks(config, params.block_size)
    structure = GeometricFile(SimulatedBlockDevice(blocks, params),
                              config, seed=seed)
    structure.ingest(OVERLAP_RECORDS)
    structure.close()
    return structure


def _run_multi(*, io_scheduler: str, seed: int) -> MultipleGeometricFiles:
    config = MultiFileConfig(
        capacity=MULTI_CAPACITY,
        buffer_capacity=MULTI_BUFFER,
        record_size=MULTI_RECORD_SIZE,
        beta_records=MULTI_BETA,
        alpha_prime=MULTI_ALPHA_PRIME,
        io_scheduler=io_scheduler,
    )
    params = DiskParameters()
    blocks = MultipleGeometricFiles.required_blocks(config,
                                                    params.block_size)
    structure = MultipleGeometricFiles(
        SimulatedBlockDevice(blocks, params), config, seed=seed)
    structure.ingest(MULTI_RECORDS)
    structure.close()
    return structure


def _require_parity(sync: GeometricFile, piped: GeometricFile) -> None:
    """Twin engines must be bit-exact on DiskStats and device clock."""
    a = sync.device.model.stats.snapshot()
    b = piped.device.model.stats.snapshot()
    if a != b:
        raise AssertionError(
            f"pipelined DiskStats diverged from synchronous: {a} != {b}"
        )
    if sync.device.clock != piped.device.clock:
        raise AssertionError(
            f"pipelined device clock diverged: "
            f"{sync.device.clock} != {piped.device.clock}"
        )


def pipeline_smoke(*, seed: int = 0) -> dict:
    """Run the pipelined-flush benchmark; returns the report dict."""
    sync = _run_geometric(pipeline=False, io_scheduler="elevator",
                          seed=seed)
    piped = _run_geometric(pipeline=True, io_scheduler="elevator",
                           seed=seed)
    _require_parity(sync, piped)
    sync_engine = sync.stats().extra["pipeline"]
    piped_engine = piped.stats().extra["pipeline"]
    sync_elapsed = sync_engine["elapsed_seconds"]
    piped_elapsed = piped_engine["elapsed_seconds"]
    overlap = {
        "records": OVERLAP_RECORDS,
        "stream_rate": OVERLAP_STREAM_RATE,
        "flushes": sync_engine["submitted"],
        "sync_elapsed_s": round(sync_elapsed, 3),
        "pipelined_elapsed_s": round(piped_elapsed, 3),
        "sync_rps": round(OVERLAP_RECORDS / max(sync_elapsed, 1e-9)),
        "pipelined_rps": round(OVERLAP_RECORDS / max(piped_elapsed, 1e-9)),
        "speedup": round(sync_elapsed / max(piped_elapsed, 1e-9), 2),
        "fill_seconds": round(piped_engine["fill_seconds"], 3),
        "disk_seconds": round(piped_engine["disk_seconds"], 3),
        "stall_seconds": round(piped_engine["stall_seconds"], 3),
        "parity": True,  # _require_parity raised otherwise
    }

    fifo = _run_multi(io_scheduler="fifo", seed=seed)
    elevator = _run_multi(io_scheduler="elevator", seed=seed)
    if fifo.disk_size != elevator.disk_size:
        raise AssertionError("schedulers changed the sample itself")
    fifo_seeks = fifo.device.model.stats.seeks
    elevator_seeks = elevator.device.model.stats.seeks
    engine = elevator.stats().extra["pipeline"]
    multi = {
        "records": MULTI_RECORDS,
        "n_files": len(elevator.files),
        "fifo_seeks": fifo_seeks,
        "elevator_seeks": elevator_seeks,
        "seeks_saved": fifo_seeks - elevator_seeks,
        "extents_in": engine["extents_in"],
        "bursts_out": engine["bursts_out"],
        "merged_extents": engine["merged_extents"],
        "bridged_blocks": engine["bridged_blocks"],
        "fifo_clock_s": round(fifo.device.clock, 3),
        "elevator_clock_s": round(elevator.device.clock, 3),
    }

    return {
        "benchmark": "pipelined flush smoke",
        "config": {
            "overlap": {
                "capacity": OVERLAP_CAPACITY,
                "buffer_capacity": OVERLAP_BUFFER,
                "record_size": OVERLAP_RECORD_SIZE,
                "block_size": OVERLAP_BLOCK_SIZE,
            },
            "multi": {
                "capacity": MULTI_CAPACITY,
                "buffer_capacity": MULTI_BUFFER,
                "record_size": MULTI_RECORD_SIZE,
                "beta_records": MULTI_BETA,
                "alpha_prime": MULTI_ALPHA_PRIME,
            },
            "seed": seed,
        },
        "overlap": overlap,
        "multi_file": multi,
        "speedup": overlap["speedup"],
        "seeks_saved": multi["seeks_saved"],
    }


def render_pipeline_report(report: dict) -> str:
    """Human-readable table of the pipeline_smoke report dict."""
    overlap = report["overlap"]
    multi = report["multi_file"]
    lines = [
        "pipelined flush (simulated disk timeline)",
        "",
        f"  {'engine':<14} {'elapsed':>10} {'rps':>12}",
        f"  {'synchronous':<14} {overlap['sync_elapsed_s']:>9.2f}s "
        f"{overlap['sync_rps']:>12,}",
        f"  {'pipelined':<14} {overlap['pipelined_elapsed_s']:>9.2f}s "
        f"{overlap['pipelined_rps']:>12,}",
        "",
        f"  speedup: {overlap['speedup']:.2f}x over "
        f"{overlap['flushes']} flushes "
        f"(fill {overlap['fill_seconds']:.1f}s, "
        f"disk {overlap['disk_seconds']:.1f}s, "
        f"stall {overlap['stall_seconds']:.1f}s)",
        "",
        f"elevator scheduling ({multi['n_files']}-file structure)",
        "",
        f"  {'scheduler':<14} {'seeks':>10} {'clock':>10}",
        f"  {'fifo':<14} {multi['fifo_seeks']:>10,} "
        f"{multi['fifo_clock_s']:>9.2f}s",
        f"  {'elevator':<14} {multi['elevator_seeks']:>10,} "
        f"{multi['elevator_clock_s']:>9.2f}s",
        "",
        f"  seeks saved: {multi['seeks_saved']:,}  "
        f"(merged {multi['merged_extents']:,} of "
        f"{multi['extents_in']:,} extents into "
        f"{multi['bursts_out']:,} bursts, "
        f"bridged {multi['bridged_blocks']:,} gap blocks)",
    ]
    return "\n".join(lines)


def write_pipeline_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="ascii") as sink:
        json.dump(report, sink, indent=2, sort_keys=True)
        sink.write("\n")
