"""Columnar-engine micro-benchmark: flush encode, query, and AQP.

The columnar record engine promises three wins over the scalar object
path, and this module measures each one on twin smoke-scale geometric
files (same seed, same stream, one ``columnar=False`` and one
``columnar=True``):

* ``flush_encode`` -- serialising a whole segment:
  :meth:`RecordSchema.encode_batch` over record objects (one compiled
  ``pack_into`` per record) vs :meth:`RecordBatch.to_bytes` (one
  ``tobytes`` over the structured slab);
* ``query_aqp`` -- the end-to-end query loop: ``sample()`` +
  :class:`~repro.estimate.aqp.SampleQuery` (decode every ledger row
  into a ``Record``, then per-record Python predicates and sums) vs
  ``sample_batch()`` + :class:`~repro.estimate.aqp.BatchQuery` (column
  views and ``numpy`` reductions, no record objects at all);
* ``zone_map`` -- a pruned range scan:
  :meth:`~repro.core.zonemap.ZoneMapIndex.query` vs
  :meth:`~repro.core.zonemap.ZoneMapIndex.query_batch`.

As with the ingest smoke test, the point is regression detection: the
report (``BENCH_query.json``) pins the measured speedups so a change
that quietly re-routes the columnar path through per-record Python
shows up as a collapsed ratio.  The two engines charge identical
simulated I/O by construction (tested bit-exactly), so wall-clock CPU
time is the right metric here.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.geometric_file import GeometricFile, GeometricFileConfig
from ..core.zonemap import ZoneMapIndex
from ..estimate.aqp import BatchQuery, SampleQuery
from ..storage.device import SimulatedBlockDevice
from ..storage.recordbatch import RecordBatch
from ..storage.records import RecordSchema
from .experiments import ExperimentSpec, experiment_1

#: Default stream length: two smoke-reservoir fills, enough to push the
#: twin files well past startup into steady-state flushing.
DEFAULT_RECORDS = 200_000

#: Default records per ingest chunk.
DEFAULT_BATCH = 4096

#: Default timed repetitions per measured operation.
DEFAULT_ROUNDS = 3


def _make_file(spec: ExperimentSpec, *, columnar: bool) -> GeometricFile:
    config = GeometricFileConfig(
        capacity=spec.capacity,
        buffer_capacity=spec.buffer_capacity,
        record_size=spec.record_size,
        retain_records=True,
        admission="uniform",
        columnar=columnar,
    )
    params = spec.disk_parameters()
    blocks = GeometricFile.required_blocks(config, params.block_size)
    return GeometricFile(SimulatedBlockDevice(blocks, params), config,
                         seed=spec.seed)


def _make_stream(schema: RecordSchema, records: int,
                 seed: int) -> RecordBatch:
    """A value-bearing, time-correlated stream as one batch.

    Values are lognormal (a plausible AQP measure column); timestamps
    are stream order, which is what makes the zone-map comparison
    meaningful (envelopes prune to a suffix).
    """
    rng = np.random.default_rng(seed)
    return RecordBatch.from_columns(
        schema,
        keys=np.arange(records, dtype=np.int64),
        values=rng.lognormal(mean=3.0, sigma=0.5, size=records),
        timestamps=np.arange(records, dtype=np.float64),
    )


def _ingest_twins(spec: ExperimentSpec, stream: RecordBatch,
                  batch_size: int) -> tuple[GeometricFile, GeometricFile]:
    scalar = _make_file(spec, columnar=False)
    columnar = _make_file(spec, columnar=True)
    rows = stream.to_records()
    for start in range(0, len(stream), batch_size):
        scalar.offer_many(rows[start:start + batch_size])
        columnar.offer_batch(stream[start:start + batch_size])
    if scalar.stats().seen != columnar.stats().seen:
        raise AssertionError("twin files consumed different stream lengths")
    return scalar, columnar


def _time_rounds(op, rounds: int) -> float:
    """Wall-clock seconds for ``rounds`` calls of ``op``."""
    start = time.perf_counter()
    for _ in range(rounds):
        op()
    return max(time.perf_counter() - start, 1e-9)


def measure_flush_encode(schema: RecordSchema, batch: RecordBatch, *,
                         rounds: int = DEFAULT_ROUNDS) -> dict:
    """Whole-segment serialisation: object codec vs columnar slab."""
    rows = batch.to_records()
    expected = schema.encode_batch(rows)
    if batch.to_bytes() != expected:
        raise AssertionError("columnar encode is not byte-identical")
    scalar_s = _time_rounds(lambda: schema.encode_batch(rows), rounds)
    columnar_s = _time_rounds(batch.to_bytes, rounds)
    n = len(batch) * rounds
    scalar_rps = n / scalar_s
    columnar_rps = n / columnar_s
    return {
        "records": len(batch),
        "scalar_rps": round(scalar_rps),
        "columnar_rps": round(columnar_rps),
        "speedup": round(columnar_rps / scalar_rps, 2),
    }


def measure_query_aqp(scalar: GeometricFile, columnar: GeometricFile, *,
                      rounds: int = DEFAULT_ROUNDS) -> dict:
    """sample() + SampleQuery vs sample_batch() + BatchQuery.

    One round is the full AQP loop the docs demonstrate: materialise
    the sample, range-filter on ``value``, then AVG over the selection
    plus SUM and a predicate COUNT over the whole sample.
    """
    population = scalar.stats().seen
    low, high = 15.0, 35.0

    def scalar_round() -> None:
        query = SampleQuery(scalar.sample(), population_size=population)
        selection = query.filter(lambda r: low <= r.value <= high)
        selection.avg()
        query.sum()
        query.count(lambda r: r.value >= high)

    def columnar_round() -> None:
        query = BatchQuery(columnar.sample_batch(),
                           population_size=population)
        selection = query.filter("value", low, high)
        selection.avg()
        query.sum()
        query.count(query.mask("value", low=high))

    sample_size = len(columnar.sample_batch())
    scalar_s = _time_rounds(scalar_round, rounds)
    columnar_s = _time_rounds(columnar_round, rounds)
    n = sample_size * rounds
    scalar_rps = n / scalar_s
    columnar_rps = n / columnar_s
    return {
        "sample_size": sample_size,
        "scalar_rps": round(scalar_rps),
        "columnar_rps": round(columnar_rps),
        "speedup": round(columnar_rps / scalar_rps, 2),
    }


def measure_zone_map(scalar: GeometricFile, columnar: GeometricFile, *,
                     rounds: int = DEFAULT_ROUNDS) -> dict:
    """Pruned range scan: iterator query vs columnar query_batch.

    The window is the newest tenth of the (time-correlated) stream, so
    the envelopes prune most subsamples and the comparison isolates the
    per-record cost of scanning the survivors.
    """
    seen = scalar.stats().seen
    low, high = seen * 0.9, float(seen)
    scalar_index = ZoneMapIndex(scalar, field="timestamp")
    columnar_index = ZoneMapIndex(columnar, field="timestamp")
    matched = len(columnar_index.query_batch(low, high))
    if matched != sum(1 for _ in scalar_index.query(low, high)):
        raise AssertionError("zone-map engines matched different row sets")
    scalar_s = _time_rounds(
        lambda: sum(1 for _ in scalar_index.query(low, high)), rounds)
    columnar_s = _time_rounds(
        lambda: columnar_index.query_batch(low, high), rounds)
    scanned = columnar_index.stats().records_scanned
    n = max(scanned, 1) * rounds
    scalar_rps = n / scalar_s
    columnar_rps = n / columnar_s
    return {
        "records_scanned": scanned,
        "records_matched": matched,
        "scalar_rps": round(scalar_rps),
        "columnar_rps": round(columnar_rps),
        "speedup": round(columnar_rps / scalar_rps, 2),
    }


def query_smoke(*, records: int = DEFAULT_RECORDS,
                batch_size: int = DEFAULT_BATCH, seed: int = 0,
                rounds: int = DEFAULT_ROUNDS) -> dict:
    """Run the whole columnar query benchmark; returns the report dict."""
    spec = experiment_1(scale=0, seed=seed)
    schema = RecordSchema(spec.record_size)
    stream = _make_stream(schema, records, seed)
    scalar, columnar = _ingest_twins(spec, stream, batch_size)
    resident = columnar.sample_batch()
    return {
        "benchmark": "columnar query smoke",
        "config": {
            "capacity": spec.capacity,
            "buffer_capacity": spec.buffer_capacity,
            "record_size": spec.record_size,
            "records": records,
            "batch_size": batch_size,
            "rounds": rounds,
            "seed": seed,
        },
        "flush_encode": measure_flush_encode(schema, resident,
                                             rounds=rounds),
        "query_aqp": measure_query_aqp(scalar, columnar, rounds=rounds),
        "zone_map": measure_zone_map(scalar, columnar, rounds=rounds),
    }


def render_query_report(report: dict) -> str:
    """Human-readable table of the query_smoke report dict."""
    lines = ["columnar engine (records/second, wall clock)", ""]
    lines.append(f"  {'path':<22} {'scalar':>14} {'columnar':>14} "
                 f"{'speedup':>8}")
    for key in ("flush_encode", "query_aqp", "zone_map"):
        row = report[key]
        lines.append(f"  {key:<22} {row['scalar_rps']:>14,} "
                     f"{row['columnar_rps']:>14,} {row['speedup']:>7.1f}x")
    zone = report["zone_map"]
    lines.append("")
    lines.append(f"  zone map scanned {zone['records_scanned']:,} records, "
                 f"matched {zone['records_matched']:,}")
    return "\n".join(lines)
