"""Rendering benchmark results: tables, ASCII curves, CSV.

The paper reports its evaluation as throughput curves (Figure 7); the
harness reproduces the same series and renders them as a fixed-width
table (one column per alternative, one row per time checkpoint) plus a
crude ASCII chart, both suitable for EXPERIMENTS.md and terminal
output.
"""

from __future__ import annotations

import io
from typing import Sequence

from .runner import RunResult


def throughput_table(results: Sequence[RunResult], horizon: float,
                     n_rows: int = 10, unit: float = 1e6,
                     unit_label: str = "M") -> str:
    """Samples-added-so-far at evenly spaced times, one row per time.

    Args:
        results: one :class:`RunResult` per alternative.
        horizon: experiment duration in simulated seconds.
        n_rows: number of time checkpoints printed.
        unit: y-axis divisor (1e6 prints millions).
        unit_label: suffix for the unit ("M", "B").
    """
    if not results:
        raise ValueError("no results to tabulate")
    out = io.StringIO()
    names = [r.name for r in results]
    width = max(12, max(len(n) for n in names) + 2)
    out.write("time".rjust(10))
    for name in names:
        out.write(name.rjust(width))
    out.write("\n")
    for i in range(1, n_rows + 1):
        t = horizon * i / n_rows
        out.write(_format_time(t).rjust(10))
        for result in results:
            value = result.samples_at(t) / unit
            out.write(f"{value:,.1f}{unit_label}".rjust(width))
        out.write("\n")
    return out.getvalue()


def io_summary_table(results: Sequence[RunResult]) -> str:
    """Final I/O statistics per alternative."""
    out = io.StringIO()
    header = (f"{'alternative':<20}{'samples':>14}{'seeks':>12}"
              f"{'blk written':>13}{'blk read':>11}{'seq ratio':>11}"
              f"{'seek time%':>12}\n")
    out.write(header)
    for r in results:
        out.write(
            f"{r.name:<20}{r.final_samples:>14,}{r.seeks:>12,}"
            f"{r.blocks_written:>13,}{r.blocks_read:>11,}"
            f"{r.sequential_ratio:>11.3f}"
            f"{100 * r.random_io_fraction:>11.1f}%\n"
        )
    return out.getvalue()


def ascii_chart(results: Sequence[RunResult], horizon: float,
                width: int = 68, height: int = 16) -> str:
    """A Figure 7 style ASCII chart: samples added vs. time.

    Each alternative is drawn with its own marker; the legend maps
    markers back to names.
    """
    if not results:
        raise ValueError("no results to chart")
    markers = "*o+x#@%&"
    y_max = max(r.final_samples for r in results) or 1
    grid = [[" "] * width for _ in range(height)]
    for idx, result in enumerate(results):
        marker = markers[idx % len(markers)]
        for col in range(width):
            t = horizon * (col + 1) / width
            y = result.samples_at(t)
            row = int((height - 1) * (1.0 - y / y_max))
            row = min(height - 1, max(0, row))
            if grid[row][col] == " ":
                grid[row][col] = marker
    out = io.StringIO()
    top_label = f"{y_max:,.0f} samples"
    out.write(top_label + "\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    out.write(f"0 {' ' * (width - len(_format_time(horizon)) - 2)}"
              f"{_format_time(horizon)}\n")
    for idx, result in enumerate(results):
        out.write(f"  {markers[idx % len(markers)]} {result.name}\n")
    return out.getvalue()


def to_csv(results: Sequence[RunResult]) -> str:
    """Raw checkpoints as CSV (alternative,clock_seconds,samples_added)."""
    out = io.StringIO()
    out.write("alternative,clock_seconds,samples_added\n")
    for result in results:
        for point in result.points:
            out.write(f"{result.name},{point.clock:.3f},"
                      f"{point.samples_added}\n")
    return out.getvalue()


def _format_time(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"
