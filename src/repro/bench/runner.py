"""Experiment runner for the Figure 7 style benchmarks.

The paper's experiments produce one curve per alternative: cumulative
samples added to the reservoir (y) against elapsed time (x), with the
stream producing records "as many as each of the five options could
handle".  The runner reproduces exactly that protocol against the
simulated disk clock: it keeps feeding a
:class:`~repro.reservoir.StreamReservoir` in chunks until the clock
passes the horizon, recording ``(clock, samples_added)`` checkpoints
along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..reservoir import StreamReservoir


@dataclass(frozen=True)
class SeriesPoint:
    """One checkpoint of a throughput curve."""

    clock: float
    samples_added: int


@dataclass
class RunResult:
    """One alternative's complete benchmark outcome."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)
    seeks: int = 0
    blocks_written: int = 0
    blocks_read: int = 0
    sequential_ratio: float = 1.0
    random_io_fraction: float = 0.0

    @property
    def final_samples(self) -> int:
        return self.points[-1].samples_added if self.points else 0

    @property
    def final_clock(self) -> float:
        return self.points[-1].clock if self.points else 0.0

    def samples_at(self, clock: float) -> float:
        """Linear interpolation of the curve at an arbitrary time."""
        if not self.points:
            return 0.0
        prev = SeriesPoint(0.0, 0)
        for point in self.points:
            if point.clock >= clock:
                if point.clock == prev.clock:
                    return float(point.samples_added)
                frac = (clock - prev.clock) / (point.clock - prev.clock)
                return (prev.samples_added
                        + frac * (point.samples_added - prev.samples_added))
            prev = point
        return float(prev.samples_added)


def run_until(reservoir: StreamReservoir, horizon_seconds: float,
              *, chunk_records: int | None = None,
              max_records: int | None = None,
              record_points: int = 64) -> RunResult:
    """Feed a reservoir until its simulated clock passes the horizon.

    Args:
        reservoir: any maintainer implementing the count-only
            :meth:`~repro.reservoir.StreamReservoir.ingest` fast path.
        horizon_seconds: the experiment's simulated duration (the
            paper's 20 hours).
        chunk_records: records per ingest call; defaults to the
            reservoir's buffer capacity when it has one (one flush per
            chunk), else 1000.  Smaller chunks give finer checkpoints
            for slow alternatives.
        max_records: optional stream-length cap (safety valve so an
            impossibly fast alternative cannot run forever).
        record_points: approximate number of checkpoints retained.

    Returns:
        The alternative's :class:`RunResult` curve plus I/O statistics.
    """
    if horizon_seconds <= 0:
        raise ValueError("horizon must be positive")
    adaptive = chunk_records is None
    chunk_floor = max(1, getattr(reservoir, "chunk_floor", 1))
    if adaptive:
        buffer = getattr(reservoir, "buffer", None)
        chunk_records = getattr(buffer, "capacity", 1000) or 1000
        chunk_records = max(chunk_records, chunk_floor)
    if chunk_records < 1:
        raise ValueError("chunk must be at least one record")

    # Adaptive chunking: an alternative that burns simulated minutes per
    # record (the virtual-memory option in steady state) must not be fed
    # buffer-sized chunks, or the final call would overshoot the horizon
    # by hours and distort its totals.  Aim each chunk at roughly one
    # checkpoint interval of simulated time, but never go below the
    # reservoir's own flush quantum (``chunk_floor``): flush-based
    # options pay a fixed cost per flush that smaller chunks cannot
    # reduce.
    target_dt = horizon_seconds / record_points
    result = RunResult(name=reservoir.name)
    next_checkpoint = target_dt
    while reservoir._clock() < horizon_seconds:
        take = chunk_records
        if max_records is not None:
            take = min(take, max_records - reservoir._seen)
            if take <= 0:
                break
        before = reservoir._clock()
        reservoir.ingest(take)
        clock = reservoir._clock()
        elapsed = clock - before
        if adaptive and elapsed > 2.0 * target_dt:
            chunk_records = max(chunk_floor, chunk_records // 2)
        if clock >= next_checkpoint:
            result.points.append(
                SeriesPoint(clock, reservoir._samples_added)
            )
            while next_checkpoint <= clock:
                next_checkpoint += target_dt
    result.points.append(SeriesPoint(reservoir._clock(),
                                     reservoir._samples_added))

    # The unified stats() protocol reports the whole backing volume --
    # including every spindle of a striped device, which the old
    # ``device.model.stats`` read-out undercounted.
    io = reservoir.stats().io
    if io is not None:
        result.seeks = io.seeks
        result.blocks_written = io.blocks_written
        result.blocks_read = io.blocks_read
        result.sequential_ratio = io.sequential_ratio
        result.random_io_fraction = io.random_io_fraction
    return result
