"""Serving-layer load benchmark: ``repro-bench --report serve``.

Two phases against the same engine shape (an inline-pool
:class:`~repro.service.ShardedReservoir` at the smoke configuration):

* **inline** -- a :class:`~repro.serve.transport.InlineTransport`
  session measures the pure protocol cost (encode + dispatch +
  decode, no sockets): batch-ingest throughput in records/s and
  query latency percentiles.
* **tcp** -- an asyncio server with ``sessions`` concurrent
  :class:`~repro.serve.AsyncServeClient` load generators, each
  interleaving ``offer_batch`` / ``sample`` / ``stats`` requests.
  The headline numbers are sustained requests/s across all sessions
  and the P50/P99 request latency, which ``benchmarks/perf_smoke.py``
  gates.

Latencies are wall-clock (this benchmark measures the serving stack,
not the simulated disk), so thresholds in the perf gate are set far
below what any healthy host achieves.
"""

from __future__ import annotations

import asyncio
import tempfile
import time

from ..storage.records import Record
from .experiments import experiment_1

#: Load-phase sizing: small enough for CI, large enough to amortise
#: connection setup out of the percentiles.
DEFAULT_SESSIONS = 4
DEFAULT_REQUESTS = 80
DEFAULT_BATCH = 256
DEFAULT_SAMPLE_K = 64


def _make_engine(root: str, seed: int):
    from ..core.geometric_file import GeometricFileConfig
    from ..service import ShardedReservoir

    spec = experiment_1(scale=0, seed=seed)
    config = GeometricFileConfig(
        capacity=spec.capacity // 4,
        buffer_capacity=spec.buffer_capacity // 4,
        record_size=spec.record_size,
        retain_records=True,
        admission="uniform",
    )
    return ShardedReservoir(root, config, shards=4, pool="inline",
                            partition="round-robin", seed=seed)


def _records(n: int, start: int = 0) -> list[Record]:
    return [Record(key=start + i, value=float(start + i), timestamp=0.0)
            for i in range(n)]


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (no numpy needed for a report field)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _inline_phase(seed: int, *, batches: int, batch_size: int,
                  queries: int, sample_k: int) -> dict:
    from ..serve import ReservoirServer, ServeClient, ServerConfig

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        engine = _make_engine(root, seed)
        server = ReservoirServer(engine, ServerConfig())
        client = ServeClient.in_process(server)
        try:
            # Untimed warm-up: first-touch costs (session handshake, shard
            # file creation, allocator warm paths) land here, not in the
            # percentiles the perf gate reads.
            client.hello()
            client.offer_batch(_records(batch_size, 90_000_000))
            client.sample(sample_k)
            start = time.perf_counter()
            for i in range(batches):
                client.offer_batch(_records(batch_size, i * batch_size))
            ingest_wall = time.perf_counter() - start
            latencies: list[float] = []
            for _ in range(queries):
                t0 = time.perf_counter()
                client.sample(sample_k)
                latencies.append(time.perf_counter() - t0)
            return {
                "batches": batches,
                "batch_size": batch_size,
                "ingest_records_per_s": round(
                    batches * batch_size / max(ingest_wall, 1e-9)),
                "queries": queries,
                "query_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
                "query_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            }
        finally:
            client.close()
            engine.close()


async def _tcp_load(server, *, sessions: int, requests: int,
                    batch_size: int, sample_k: int) -> dict:
    from ..serve import AsyncServeClient

    host, port = server.address
    latencies: list[float] = []
    retries = 0

    async def one_session(session_index: int) -> None:
        nonlocal retries
        client = await AsyncServeClient.connect(host, port)
        base = 10_000_000 * (session_index + 1)
        try:
            # Per-session untimed warm-up round: connection setup, the
            # hello exchange, and the engine's first-touch work stay out
            # of the timed percentiles (they are session constants, not
            # steady-state serving costs).
            await client.hello()
            await client.offer_batch(_records(batch_size, base - batch_size))
            await client.sample(sample_k)
            for i in range(requests):
                t0 = time.perf_counter()
                if i % 4 == 3:
                    await client.sample(sample_k)
                elif i % 16 == 9:
                    await client.stats()
                else:
                    await client.offer_batch(
                        _records(batch_size, base + i * batch_size))
                latencies.append(time.perf_counter() - t0)
            retries += client.retries
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(one_session(i) for i in range(sessions)))
    elapsed = time.perf_counter() - start
    total = sessions * requests
    return {
        "sessions": sessions,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "qps": round(total / max(elapsed, 1e-9)),
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "retries": retries,
    }


def _tcp_phase(seed: int, *, sessions: int, requests: int,
               batch_size: int, sample_k: int) -> dict:
    from ..serve import ReservoirServer, ServerConfig

    async def run() -> dict:
        with tempfile.TemporaryDirectory(
                prefix="repro-serve-bench-") as root:
            engine = _make_engine(root, seed)
            server = ReservoirServer(engine, ServerConfig())
            await server.start()
            try:
                return await _tcp_load(server, sessions=sessions,
                                       requests=requests,
                                       batch_size=batch_size,
                                       sample_k=sample_k)
            finally:
                await server.shutdown()
                engine.close()

    return asyncio.run(run())


def serve_smoke(*, seed: int = 0, sessions: int = DEFAULT_SESSIONS,
                requests: int = DEFAULT_REQUESTS,
                batch_size: int = DEFAULT_BATCH,
                sample_k: int = DEFAULT_SAMPLE_K) -> dict:
    """Run both serving phases; returns the ``BENCH_serve.json`` dict."""
    inline = _inline_phase(seed, batches=max(8, requests // 4),
                           batch_size=batch_size,
                           queries=max(32, requests // 2),
                           sample_k=sample_k)
    tcp = _tcp_phase(seed, sessions=sessions, requests=requests,
                     batch_size=batch_size, sample_k=sample_k)
    return {
        "benchmark": "serving-layer load smoke",
        "config": {
            "seed": seed,
            "sessions": sessions,
            "requests_per_session": requests,
            "batch_size": batch_size,
            "sample_k": sample_k,
            "engine": "sharded service (4 shards, inline pool)",
        },
        "inline": inline,
        "tcp": tcp,
    }


def render_serve_report(report: dict) -> str:
    """Human-readable table of the :func:`serve_smoke` report dict."""
    config = report["config"]
    inline, tcp = report["inline"], report["tcp"]
    return "\n".join([
        f"serving-layer load ({config['engine']})",
        "",
        f"  inline twin: {inline['ingest_records_per_s']:>10,} rec/s ingest"
        f"   sample P50 {inline['query_p50_ms']:.2f} ms"
        f"   P99 {inline['query_p99_ms']:.2f} ms",
        f"  tcp ({tcp['sessions']} sessions): "
        f"{tcp['qps']:>6,} req/s sustained"
        f"   P50 {tcp['p50_ms']:.2f} ms   P99 {tcp['p99_ms']:.2f} ms",
        f"  {tcp['requests']:,} requests in {tcp['elapsed_s']:.2f}s"
        f"   retries after pushback: {tcp['retries']}",
    ])
