"""Command-line entry point: ``repro-bench``.

Runs the paper's Figure 7 experiments end to end and prints the
throughput table, I/O summary, and an ASCII rendition of the figure.
``--scale 1`` reproduces the paper's exact record counts (a billion
50 B records); larger scales shrink the run proportionally, and
``--scale 0`` is a fixed smoke configuration for CI.

Benchmark reports all hang off one repeatable flag::

    --report KIND[=PATH]

with KIND one of ``ingest`` (batch-ingest throughput), ``query``
(columnar query/AQP), ``pipeline`` (flush overlap + elevator),
``shard`` (sharded-service ingest; honours ``--shards`` / ``--pool`` /
``--ipc``, and benchmarks both IPC transports head to head),
``serve`` (client/server load over the asyncio front-end), ``aqp``
(the tiered planner's cache-hit speedup / hit-rate / bit-exactness
gates), and ``law`` (the sampling-law engine: uniform twin parity and
the weighted-ingest throughput ratio).  PATH
defaults to ``BENCH_<KIND>.json``.  The legacy spellings
(``--perf-smoke``, ``--query-report``, ``--pipeline``,
``--shard-report``) still parse as hidden deprecated aliases.

Observability: ``--metrics PATH`` dumps the full metrics registry
(device counters mirrored per structure plus ``events.*`` totals) and
every structure's ``stats()`` snapshot as JSON (``-`` = stdout);
``--trace PATH`` streams structured events (flushes, segment
overwrites, dummy rotations, ...) to a JSONL file as they happen.

Examples::

    repro-bench fig7a --scale 100
    repro-bench fig7b --scale 1 --csv results.csv
    repro-bench fig7c --only "geo file" --only "multiple geo files"
    repro-bench fig7a --scale 0 --metrics - --trace /tmp/trace.jsonl
    repro-bench --report ingest --batch-size 4096
    repro-bench --report ingest --report query=/tmp/q.json
    repro-bench --report shard --shards 4 --pool process --ipc shm
    repro-bench serve --report serve
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .bench import (
    ALTERNATIVE_NAMES,
    aqp_smoke,
    ascii_chart,
    experiment_1,
    experiment_2,
    experiment_3,
    io_summary_table,
    law_smoke,
    perf_smoke,
    pipeline_smoke,
    query_smoke,
    render_aqp_report,
    render_law_report,
    render_pipeline_report,
    render_query_report,
    render_report,
    render_serve_report,
    render_shard_report,
    run_until,
    serve_smoke,
    shard_smoke,
    throughput_table,
    to_csv,
    write_report,
)
from .obs import MetricsRegistry, TraceSink, warn_deprecated

_EXPERIMENTS = {
    "fig7a": experiment_1,
    "fig7b": experiment_2,
    "fig7c": experiment_3,
}

#: Benchmark report kinds accepted by ``--report KIND[=PATH]``, in the
#: order they run when several are requested together.
REPORT_KINDS = ("ingest", "query", "pipeline", "shard", "serve", "aqp",
                "law")


def default_report_path(kind: str) -> str:
    """The JSON report path a bare ``--report KIND`` writes to."""
    return f"BENCH_{kind}.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the SIGMOD 2004 geometric-file benchmarks.",
    )
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["serve"],
                        nargs="?", default=None,
                        help="which Figure 7 panel to run, or 'serve' "
                             "for the serving-layer load benchmark "
                             "(optional with --report)")
    parser.add_argument("--report", action="append", default=None,
                        metavar="KIND[=PATH]", dest="reports",
                        help="run a benchmark report instead of a "
                             "Figure 7 panel and write its JSON "
                             f"(KIND: {', '.join(REPORT_KINDS)}; "
                             "PATH defaults to BENCH_<KIND>.json; "
                             "repeatable)")
    parser.add_argument("--scale", type=int, default=100,
                        help="record-count divisor; 1 = paper scale, "
                             "0 = fixed smoke configuration "
                             "(default: 100)")
    parser.add_argument("--batch-size", type=int, default=None,
                        metavar="N",
                        help="records per ingest chunk for the Figure 7 "
                             "runs, and per offer_batch batch for "
                             "--report ingest/query/shard")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard workers for --report shard "
                             "(default: 4; implies --report shard when "
                             "no report is requested)")
    parser.add_argument("--pool", choices=("process", "inline"),
                        default="process",
                        help="worker harness for --report shard: real "
                             "worker processes or the deterministic "
                             "in-process pool (default: process)")
    parser.add_argument("--ipc", choices=("shm", "queue"),
                        default="shm",
                        help="process-pool data-plane transport for "
                             "--report shard: zero-copy shared-memory "
                             "slab rings or pickled queues (default: "
                             "shm; the report's ipc section benchmarks "
                             "both either way)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default: 0)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=ALTERNATIVE_NAMES,
                        help="run only this alternative (repeatable)")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write raw checkpoints as CSV")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="dump the metrics registry and per-structure "
                             "stats() as JSON ('-' = stdout)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="stream structured trace events to a JSONL "
                             "file ('-' = stdout)")
    parser.add_argument("--no-chart", action="store_true",
                        help="skip the ASCII chart")
    # -- deprecated aliases, hidden from --help ---------------------------
    parser.add_argument("--perf-smoke", metavar="PATH", nargs="?",
                        const=default_report_path("ingest"), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--query-report", metavar="PATH", nargs="?",
                        const=default_report_path("query"), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--pipeline", metavar="PATH", nargs="?",
                        const=default_report_path("pipeline"), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--shard-report", metavar="PATH", default=None,
                        help=argparse.SUPPRESS)
    return parser


def _resolve_reports(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> list[tuple[str, str]]:
    """Fold ``--report`` entries and deprecated aliases into an ordered
    ``(kind, path)`` run list."""
    reports: list[tuple[str, str]] = []
    for entry in args.reports or []:
        kind, sep, path = entry.partition("=")
        if kind not in REPORT_KINDS:
            parser.error(
                f"unknown report kind {kind!r} "
                f"(choose from {', '.join(REPORT_KINDS)})")
        reports.append((kind, path if sep else default_report_path(kind)))
    alias_map = [
        ("perf_smoke", "--perf-smoke", "ingest"),
        ("query_report", "--query-report", "query"),
        ("pipeline", "--pipeline", "pipeline"),
    ]
    for attr, flag, kind in alias_map:
        path = getattr(args, attr)
        if path is not None:
            warn_deprecated(f"repro-bench {flag}",
                            f"--report {kind}[=PATH]")
            reports.append((kind, path))
    if args.shard_report is not None:
        warn_deprecated("repro-bench --shard-report",
                        "--report shard[=PATH]")
        reports.append(("shard", args.shard_report))
    elif args.shards is not None and all(k != "shard" for k, _ in reports):
        reports.append(("shard", default_report_path("shard")))
    if (args.experiment == "serve"
            and all(k != "serve" for k, _ in reports)):
        reports.append(("serve", default_report_path("serve")))
    return reports


def _run_report(kind: str, args: argparse.Namespace) -> tuple[dict, str]:
    """Run one report kind; returns (report dict, rendered text)."""
    sized = {"seed": args.seed}
    if args.batch_size is not None:
        sized["batch_size"] = args.batch_size
    if kind == "ingest":
        report = perf_smoke(**sized)
        return report, render_report(report)
    if kind == "query":
        report = query_smoke(**sized)
        return report, render_query_report(report)
    if kind == "pipeline":
        report = pipeline_smoke(seed=args.seed)
        return report, render_pipeline_report(report)
    if kind == "shard":
        sized["shards"] = 4 if args.shards is None else args.shards
        sized["pool"] = args.pool
        sized["ipc"] = args.ipc
        report = shard_smoke(**sized)
        return report, render_shard_report(report)
    if kind == "serve":
        kwargs = {"seed": args.seed}
        if args.batch_size is not None:
            kwargs["batch_size"] = args.batch_size
        report = serve_smoke(**kwargs)
        return report, render_serve_report(report)
    if kind == "aqp":
        report = aqp_smoke(seed=args.seed)
        return report, render_aqp_report(report)
    assert kind == "law"
    report = law_smoke(seed=args.seed)
    return report, render_law_report(report)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size is not None and args.batch_size < 1:
        parser.error("--batch-size must be at least 1")
    if args.shards is not None and args.shards < 2:
        parser.error("--shards needs at least 2 shard workers")
    reports = _resolve_reports(parser, args)
    if reports:
        for index, (kind, path) in enumerate(reports):
            if index:
                print()
            report, rendered = _run_report(kind, args)
            print(rendered)
            write_report(report, path)
            print(f"\nwrote {path}")
        return 0
    if args.experiment is None or args.experiment == "serve":
        parser.error("an experiment is required unless --report is set")
    spec = _EXPERIMENTS[args.experiment](scale=args.scale, seed=args.seed)
    names = args.only or list(ALTERNATIVE_NAMES)

    registry = MetricsRegistry() if args.metrics is not None else None
    trace_file = None
    trace = None
    if args.trace is not None:
        trace_file = (sys.stdout if args.trace == "-"
                      else open(args.trace, "w", encoding="ascii"))
        trace = TraceSink(stream=trace_file)
    observing = registry is not None or trace is not None
    if observing and registry is None:
        registry = MetricsRegistry()

    scale_label = "smoke" if args.scale == 0 else f"1/{args.scale}"
    print(f"{spec.name}  scale={scale_label}")
    print(f"  reservoir: {spec.capacity:,} x {spec.record_size} B records"
          f"  buffer: {spec.buffer_capacity:,} records"
          f"  horizon: {spec.horizon_seconds / 3600:.2f} simulated hours")
    print()

    results = []
    snapshots = []
    for name in names:
        t0 = time.time()
        reservoir = spec.make(name)
        if observing:
            reservoir.instrument(registry, trace)
        result = run_until(reservoir, spec.horizon_seconds,
                           chunk_records=args.batch_size)
        print(f"  ran {name:<20} ({time.time() - t0:6.1f}s wall, "
              f"{result.final_samples:>16,} samples)")
        results.append(result)
        snapshots.append(reservoir.stats())
    print()
    print(throughput_table(results, spec.horizon_seconds))
    print(io_summary_table(results))
    if not args.no_chart:
        print(ascii_chart(results, spec.horizon_seconds))
    if args.csv:
        with open(args.csv, "w", encoding="ascii") as sink:
            sink.write(to_csv(results))
        print(f"wrote {args.csv}")
    if args.metrics is not None:
        payload = {
            "experiment": spec.name,
            "scale": args.scale,
            "structures": [s.as_dict() for s in snapshots],
        }
        payload.update(registry.as_dict())
        if trace is not None:
            payload["trace_event_counts"] = trace.counts()
        text = json.dumps(payload, indent=2)
        if args.metrics == "-":
            print(text)
        else:
            with open(args.metrics, "w", encoding="ascii") as sink:
                sink.write(text)
                sink.write("\n")
            print(f"wrote {args.metrics}")
    if trace_file is not None and trace_file is not sys.stdout:
        trace_file.close()
        print(f"wrote {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
