"""Command-line entry point: ``repro-bench``.

Runs the paper's Figure 7 experiments end to end and prints the
throughput table, I/O summary, and an ASCII rendition of the figure.
``--scale 1`` reproduces the paper's exact record counts (a billion
50 B records); larger scales shrink the run proportionally.

Examples::

    repro-bench fig7a --scale 100
    repro-bench fig7b --scale 1 --csv results.csv
    repro-bench fig7c --only "geo file" --only "multiple geo files"
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench import (
    ALTERNATIVE_NAMES,
    ascii_chart,
    experiment_1,
    experiment_2,
    experiment_3,
    io_summary_table,
    run_until,
    throughput_table,
    to_csv,
)

_EXPERIMENTS = {
    "fig7a": experiment_1,
    "fig7b": experiment_2,
    "fig7c": experiment_3,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the SIGMOD 2004 geometric-file benchmarks.",
    )
    parser.add_argument("experiment", choices=sorted(_EXPERIMENTS),
                        help="which Figure 7 panel to run")
    parser.add_argument("--scale", type=int, default=100,
                        help="record-count divisor; 1 = paper scale "
                             "(default: 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default: 0)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=ALTERNATIVE_NAMES,
                        help="run only this alternative (repeatable)")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write raw checkpoints as CSV")
    parser.add_argument("--no-chart", action="store_true",
                        help="skip the ASCII chart")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    spec = _EXPERIMENTS[args.experiment](scale=args.scale, seed=args.seed)
    names = args.only or list(ALTERNATIVE_NAMES)

    print(f"{spec.name}  scale=1/{args.scale}")
    print(f"  reservoir: {spec.capacity:,} x {spec.record_size} B records"
          f"  buffer: {spec.buffer_capacity:,} records"
          f"  horizon: {spec.horizon_seconds / 3600:.2f} simulated hours")
    print()

    results = []
    for name in names:
        t0 = time.time()
        reservoir = spec.make(name)
        result = run_until(reservoir, spec.horizon_seconds)
        print(f"  ran {name:<20} ({time.time() - t0:6.1f}s wall, "
              f"{result.final_samples:>16,} samples)")
        results.append(result)
    print()
    print(throughput_table(results, spec.horizon_seconds))
    print(io_summary_table(results))
    if not args.no_chart:
        print(ascii_chart(results, spec.horizon_seconds))
    if args.csv:
        with open(args.csv, "w", encoding="ascii") as sink:
            sink.write(to_csv(results))
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
