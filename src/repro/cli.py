"""Command-line entry point: ``repro-bench``.

Runs the paper's Figure 7 experiments end to end and prints the
throughput table, I/O summary, and an ASCII rendition of the figure.
``--scale 1`` reproduces the paper's exact record counts (a billion
50 B records); larger scales shrink the run proportionally, and
``--scale 0`` is a fixed smoke configuration for CI.

Observability: ``--metrics PATH`` dumps the full metrics registry
(device counters mirrored per structure plus ``events.*`` totals) and
every structure's ``stats()`` snapshot as JSON (``-`` = stdout);
``--trace PATH`` streams structured events (flushes, segment
overwrites, dummy rotations, ...) to a JSONL file as they happen.

Examples::

    repro-bench fig7a --scale 100
    repro-bench fig7b --scale 1 --csv results.csv
    repro-bench fig7c --only "geo file" --only "multiple geo files"
    repro-bench fig7a --scale 0 --metrics - --trace /tmp/trace.jsonl
    repro-bench --perf-smoke BENCH_ingest.json --batch-size 4096
    repro-bench --scale 0 --perf-smoke --query-report
    repro-bench --pipeline BENCH_pipeline.json
    repro-bench --shards 4 --pool process
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .bench import (
    ALTERNATIVE_NAMES,
    ascii_chart,
    experiment_1,
    experiment_2,
    experiment_3,
    io_summary_table,
    perf_smoke,
    pipeline_smoke,
    query_smoke,
    render_pipeline_report,
    render_query_report,
    render_report,
    render_shard_report,
    run_until,
    shard_smoke,
    throughput_table,
    to_csv,
    write_report,
)
from .obs import MetricsRegistry, TraceSink

_EXPERIMENTS = {
    "fig7a": experiment_1,
    "fig7b": experiment_2,
    "fig7c": experiment_3,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the SIGMOD 2004 geometric-file benchmarks.",
    )
    parser.add_argument("experiment", choices=sorted(_EXPERIMENTS),
                        nargs="?", default=None,
                        help="which Figure 7 panel to run (optional with "
                             "--perf-smoke / --query-report)")
    parser.add_argument("--scale", type=int, default=100,
                        help="record-count divisor; 1 = paper scale, "
                             "0 = fixed smoke configuration "
                             "(default: 100)")
    parser.add_argument("--batch-size", type=int, default=None,
                        metavar="N",
                        help="records per ingest chunk for the Figure 7 "
                             "runs, and per offer_many batch for "
                             "--perf-smoke")
    parser.add_argument("--perf-smoke", metavar="PATH", nargs="?",
                        const="BENCH_ingest.json", default=None,
                        help="run the batch-ingest throughput benchmark "
                             "instead of a Figure 7 panel and write its "
                             "JSON report (default: BENCH_ingest.json)")
    parser.add_argument("--query-report", metavar="PATH", nargs="?",
                        const="BENCH_query.json", default=None,
                        help="run the columnar query/AQP benchmark "
                             "(composable with --perf-smoke) and write "
                             "its JSON report (default: BENCH_query.json)")
    parser.add_argument("--pipeline", metavar="PATH", nargs="?",
                        const="BENCH_pipeline.json", default=None,
                        help="run the pipelined-flush benchmark "
                             "(double-buffer overlap + elevator seek "
                             "savings; composable with the other smoke "
                             "flags) and write its JSON report "
                             "(default: BENCH_pipeline.json)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run the sharded-service ingest benchmark "
                             "with N shard workers instead of a Figure 7 "
                             "panel and write BENCH_shard.json")
    parser.add_argument("--shard-report", metavar="PATH",
                        default="BENCH_shard.json",
                        help="report path for --shards "
                             "(default: BENCH_shard.json)")
    parser.add_argument("--pool", choices=("process", "inline"),
                        default="process",
                        help="worker harness for --shards: real worker "
                             "processes or the deterministic in-process "
                             "pool (default: process)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed (default: 0)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=ALTERNATIVE_NAMES,
                        help="run only this alternative (repeatable)")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="also write raw checkpoints as CSV")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="dump the metrics registry and per-structure "
                             "stats() as JSON ('-' = stdout)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="stream structured trace events to a JSONL "
                             "file ('-' = stdout)")
    parser.add_argument("--no-chart", action="store_true",
                        help="skip the ASCII chart")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.batch_size is not None and args.batch_size < 1:
        parser.error("--batch-size must be at least 1")
    ran_smoke = False
    if args.perf_smoke is not None:
        kwargs = {"seed": args.seed}
        if args.batch_size is not None:
            kwargs["batch_size"] = args.batch_size
        report = perf_smoke(**kwargs)
        print(render_report(report))
        write_report(report, args.perf_smoke)
        print(f"\nwrote {args.perf_smoke}")
        ran_smoke = True
    if args.query_report is not None:
        kwargs = {"seed": args.seed}
        if args.batch_size is not None:
            kwargs["batch_size"] = args.batch_size
        report = query_smoke(**kwargs)
        if ran_smoke:
            print()
        print(render_query_report(report))
        write_report(report, args.query_report)
        print(f"\nwrote {args.query_report}")
        ran_smoke = True
    if args.pipeline is not None:
        report = pipeline_smoke(seed=args.seed)
        if ran_smoke:
            print()
        print(render_pipeline_report(report))
        write_report(report, args.pipeline)
        print(f"\nwrote {args.pipeline}")
        ran_smoke = True
    if ran_smoke:
        return 0
    if args.shards is not None:
        if args.shards < 2:
            parser.error("--shards needs at least 2 shard workers")
        kwargs = {"shards": args.shards, "seed": args.seed,
                  "pool": args.pool}
        if args.batch_size is not None:
            kwargs["batch_size"] = args.batch_size
        report = shard_smoke(**kwargs)
        print(render_shard_report(report))
        write_report(report, args.shard_report)
        print(f"\nwrote {args.shard_report}")
        return 0
    if args.experiment is None:
        parser.error("an experiment is required unless --perf-smoke, "
                     "--query-report, --pipeline, or --shards is set")
    spec = _EXPERIMENTS[args.experiment](scale=args.scale, seed=args.seed)
    names = args.only or list(ALTERNATIVE_NAMES)

    registry = MetricsRegistry() if args.metrics is not None else None
    trace_file = None
    trace = None
    if args.trace is not None:
        trace_file = (sys.stdout if args.trace == "-"
                      else open(args.trace, "w", encoding="ascii"))
        trace = TraceSink(stream=trace_file)
    observing = registry is not None or trace is not None
    if observing and registry is None:
        registry = MetricsRegistry()

    scale_label = "smoke" if args.scale == 0 else f"1/{args.scale}"
    print(f"{spec.name}  scale={scale_label}")
    print(f"  reservoir: {spec.capacity:,} x {spec.record_size} B records"
          f"  buffer: {spec.buffer_capacity:,} records"
          f"  horizon: {spec.horizon_seconds / 3600:.2f} simulated hours")
    print()

    results = []
    snapshots = []
    for name in names:
        t0 = time.time()
        reservoir = spec.make(name)
        if observing:
            reservoir.instrument(registry, trace)
        result = run_until(reservoir, spec.horizon_seconds,
                           chunk_records=args.batch_size)
        print(f"  ran {name:<20} ({time.time() - t0:6.1f}s wall, "
              f"{result.final_samples:>16,} samples)")
        results.append(result)
        snapshots.append(reservoir.stats())
    print()
    print(throughput_table(results, spec.horizon_seconds))
    print(io_summary_table(results))
    if not args.no_chart:
        print(ascii_chart(results, spec.horizon_seconds))
    if args.csv:
        with open(args.csv, "w", encoding="ascii") as sink:
            sink.write(to_csv(results))
        print(f"wrote {args.csv}")
    if args.metrics is not None:
        payload = {
            "experiment": spec.name,
            "scale": args.scale,
            "structures": [s.as_dict() for s in snapshots],
        }
        payload.update(registry.as_dict())
        if trace is not None:
            payload["trace_event_counts"] = trace.counts()
        text = json.dumps(payload, indent=2)
        if args.metrics == "-":
            print(text)
        else:
            with open(args.metrics, "w", encoding="ascii") as sink:
                sink.write(text)
                sink.write("\n")
            print(f"wrote {args.metrics}")
    if trace_file is not None and trace_file is not sys.stdout:
        trace_file.close()
        print(f"wrote {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
