"""The paper's contribution: the geometric file (Sections 4-5), the
multi-file construction (Section 6), biased sampling (Section 7), and
the engineering around them (checkpointing, zone maps)."""

from .biased_file import (
    BiasedGeometricFile,
    BiasedMultipleGeometricFiles,
    BiasedSamplingMixin,
)
from .buffer import SampleBuffer
from .checkpoint import load_geometric_file, save_geometric_file
from .geometric_file import FileLayout, GeometricFile, GeometricFileConfig
from .managed import ManagedSample
from .geometry import (
    SegmentLadder,
    alpha_for,
    build_ladder,
    effective_alpha,
    file_count_for,
    geometric_sum,
    geometric_tail_start,
    geometric_total,
    segments_on_disk,
    startup_fill_sizes,
)
from .multi import MultiFileConfig, MultipleGeometricFiles
from .protocols import Reservoir
from .subsample import StackEvent, SubsampleLedger
from .zonemap import ZoneMapIndex, ZoneMapStats

__all__ = [
    "BiasedGeometricFile",
    "BiasedMultipleGeometricFiles",
    "BiasedSamplingMixin",
    "FileLayout",
    "GeometricFile",
    "GeometricFileConfig",
    "ManagedSample",
    "MultiFileConfig",
    "MultipleGeometricFiles",
    "Reservoir",
    "SampleBuffer",
    "SegmentLadder",
    "StackEvent",
    "SubsampleLedger",
    "ZoneMapIndex",
    "ZoneMapStats",
    "alpha_for",
    "build_ladder",
    "effective_alpha",
    "file_count_for",
    "geometric_sum",
    "geometric_tail_start",
    "geometric_total",
    "load_geometric_file",
    "save_geometric_file",
    "segments_on_disk",
    "startup_fill_sizes",
]
