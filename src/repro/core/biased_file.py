"""Biased sampling with the geometric file (paper Section 7.3).

The disk mechanics of the geometric file are untouched by biased
sampling: Algorithm 4 evicts *uniformly* -- bias enters only through
the admission probability ``|R| * f(r) / totalWeight`` -- so the flush,
segment, and stack machinery is inherited verbatim from the unbiased
structures.  What Section 7.3 adds is the weight bookkeeping:

* every record's *effective weight* ``r.weight`` is stored with it
  (here: a weights list parallel to each ledger's record list; on a
  byte-backed deployment the weighted
  :class:`~repro.storage.records.RecordSchema` stores it in the
  record slot);
* every subsample carries an in-memory *weight multiplier* ``M_j``;
  the true weight of a record is ``M_j * r.weight`` (Definition 2);
* during start-up all records get effective weight 1, and when the
  reservoir fills every initial subsample's multiplier is set to the
  *mean* weight ``totalWeight / |R|`` ("a necessary evil");
* when a record arrives whose admission probability would exceed one,
  every existing multiplier and every buffered weight is scaled up so
  that it is exactly one, and ``totalWeight`` is reset to
  ``|R| * f(r)`` (Section 7.3.2's three steps, implemented literally).

Lemma 3's guarantee -- ``Pr[r in R] = |R| * M(r) * r.weight /
totalWeight`` -- is what :meth:`BiasedSamplingMixin.items` exposes to
the Horvitz-Thompson estimators in :mod:`repro.estimate`.

Both the single-file (:class:`BiasedGeometricFile`) and the Section 6
multi-file (:class:`BiasedMultipleGeometricFiles`) hosts are provided;
the weighted machinery is a mixin because it is orthogonal to the
physical layout.  Biased operation requires record retention (weights
are per-record state), so the count-only benchmark fast path is
disabled.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..sampling.weights import WeightFunction, uniform_weight
from ..storage.device import BlockDevice
from ..storage.records import Record
from .geometric_file import GeometricFile, GeometricFileConfig
from .multi import MultiFileConfig, MultipleGeometricFiles
from .subsample import SubsampleLedger


class BiasedSamplingMixin:
    """Algorithm 4 admission plus Section 7.3 weight bookkeeping.

    Host requirements (both geometric structures satisfy them): the
    startup/flush machinery of the unbiased structures
    (``buffer``, ``in_startup``, ``_startup_sizes``, ``_startup_flush``,
    ``_flush``, ``_new_ledger``) and a :meth:`_biased_ledgers` iterator.
    """

    # -- host hook ----------------------------------------------------------

    def _biased_ledgers(self) -> Iterable[SubsampleLedger]:
        raise NotImplementedError

    # -- shared initialisation ------------------------------------------------

    def _init_biased(self, weight_fn: WeightFunction) -> None:
        self.weight_fn = weight_fn
        #: Sum of true weights over every stream record so far
        #: (the paper's ``totalWeight``).
        self.total_weight = 0.0
        #: Per-subsample weight multipliers, ident -> M_j.
        self.multipliers: dict[int, float] = {}
        self.overflow_events = 0

    # -- stream interface -------------------------------------------------------

    def offer(self, record: Record) -> None:
        """Present one stream record (Algorithm 4 admission)."""
        self._check_engine()
        weight = self.weight_fn(record)
        if weight <= 0:
            raise ValueError(
                f"weight function returned {weight!r}; must be positive"
            )
        self._seen += 1

        if self.in_startup:
            # Start-up: everything is admitted with effective weight 1;
            # multipliers are fixed up when the reservoir completes.
            self.total_weight += weight
            self._samples_added += 1
            self.buffer.append(record, weight=1.0)
            if self.buffer.count >= self._startup_sizes[self._startup_index]:
                was_last = (self._startup_index
                            == len(self._startup_sizes) - 1)
                self._startup_flush()
                if was_last:
                    self._finish_startup_weights()
            return

        self.total_weight += weight
        admit_probability = (self.capacity * weight) / self.total_weight
        if admit_probability > 1.0:
            self._scale_all_weights(admit_probability, weight)
            admit_probability = 1.0
        if self._rng.random() >= admit_probability:
            return
        self._samples_added += 1
        self.buffer.add_admitted(record, self.capacity, weight=weight)
        if self.buffer.is_full:
            self._flush()

    def offer_many(self, records) -> int:
        """Present a batch of records through the weighted path.

        Algorithm 4's admission probability depends on ``totalWeight``,
        which every record updates, so the decisions are inherently
        sequential -- this exists for interface parity with the uniform
        structures (the inherited vectorised gate would apply the wrong
        admission law), not as a fast path.
        """
        before = self._samples_added
        offer = self.offer
        for record in records:
            offer(record)
        return self._samples_added - before

    def ingest(self, n: int) -> None:
        """Count-only ingestion is undefined for weighted streams."""
        raise TypeError(
            "biased sampling needs each record's weight; use offer()"
        )

    # -- weighted views -----------------------------------------------------------

    def items(self) -> Iterator[tuple[Record, float]]:
        """Yield ``(record, true_weight)`` for every disk-resident record.

        True weight is ``M_j * effective_weight`` (Definition 2); with
        ``totalWeight`` this gives Lemma 3's inclusion probabilities,
        ready for :func:`repro.estimate.horvitz_thompson_sum`.
        """
        for ledger in self._biased_ledgers():
            multiplier = self.multipliers.get(ledger.ident, 1.0)
            records = ledger.records or []
            weights = ledger.weights or []
            for record, weight in zip(records, weights):
                yield record, multiplier * weight

    def true_weight_total(self) -> float:
        """Sum of resident true weights (diagnostic; <= total_weight)."""
        return sum(weight for _record, weight in self.items())

    def inclusion_probability(self, true_weight: float) -> float:
        """Lemma 3: ``Pr[r in R] = |R| * true_weight / totalWeight``."""
        if self.total_weight <= 0:
            raise ValueError("no records offered yet")
        return min(1.0, self.capacity * true_weight / self.total_weight)

    def check_invariants(self) -> None:
        super().check_invariants()
        for ledger in self._biased_ledgers():
            if ledger.weights is None or ledger.records is None:
                raise AssertionError("biased ledger lost its weights")
            if len(ledger.weights) != len(ledger.records):
                raise AssertionError(
                    f"subsample {ledger.ident}: {len(ledger.weights)} "
                    f"weights for {len(ledger.records)} records"
                )

    # -- internals ------------------------------------------------------------------

    def _scale_all_weights(self, factor: float, new_weight: float) -> None:
        """Section 7.3.2's three steps, verbatim."""
        for ident in self.multipliers:
            self.multipliers[ident] *= factor          # step (1)
        self.buffer.scale_weights(factor)              # step (2)
        self.total_weight = self.capacity * new_weight  # step (3)
        self.overflow_events += 1
        self._emit("overflow", what="weight", factor=factor)

    def _finish_startup_weights(self) -> None:
        """Give the initial subsamples the mean true weight.

        "When the reservoir is finished filling, M_i is set to
        totalWeight / |R| for every one of the initial subsamples."
        """
        mean_weight = self.total_weight / self.capacity
        for ident in self.multipliers:
            self.multipliers[ident] = mean_weight

    def _stats_extra(self) -> dict:
        extra = super()._stats_extra()
        extra["overflow_events"] = self.overflow_events
        extra["total_weight"] = self.total_weight
        return extra

    def _new_ledger(self, sizes, first_level, tail, records):
        ledger = super()._new_ledger(sizes, first_level, tail, records)
        # "When the buffer fills and the jth subsample is ... written to
        # disk, M_j is set to 1."  (Start-up multipliers are rewritten
        # by _finish_startup_weights once the reservoir completes.)
        self.multipliers[ledger.ident] = 1.0
        return ledger

    def _flush(self) -> None:
        # The host drains the buffer (which co-shuffles weights with
        # records) and attaches both to the new ledger.
        super()._flush()
        self._drop_dead_multipliers()

    def _drop_dead_multipliers(self) -> None:
        alive = {ledger.ident for ledger in self._biased_ledgers()}
        for ident in list(self.multipliers):
            if ident not in alive:
                del self.multipliers[ident]

    @staticmethod
    def _require_record_retention(config: GeometricFileConfig) -> None:
        if not config.retain_records:
            raise ValueError(
                "biased sampling stores per-record weights; configure "
                "retain_records=True"
            )
        if config.law != "uniform":
            raise ValueError(
                "biased structures implement Algorithm 4 directly and "
                "require law='uniform'; use the plain structures with "
                f"law={config.law!r} instead"
            )


class BiasedGeometricFile(BiasedSamplingMixin, GeometricFile):
    """A single geometric file maintaining a Definition 1 biased sample.

    Args:
        device: backing store (sized via
            :meth:`~repro.core.geometric_file.GeometricFile.required_blocks`).
        config: sizing; must have ``retain_records=True``.
        weight_fn: the user utility function ``f``; must be strictly
            positive.  With the default uniform weight the structure
            behaves exactly like its parent (tested).
        seed: RNG seed.
    """

    name = "biased geo file"

    def __init__(self, device: BlockDevice, config: GeometricFileConfig,
                 weight_fn: WeightFunction = uniform_weight,
                 *, seed: int | None = 0) -> None:
        self._require_record_retention(config)
        super().__init__(device, config, seed=seed)
        self._init_biased(weight_fn)

    def _biased_ledgers(self):
        return self.subsamples


class BiasedMultipleGeometricFiles(BiasedSamplingMixin,
                                   MultipleGeometricFiles):
    """Sections 6 and 7 composed: a striped, biased disk-resident sample.

    The paper presents the two extensions separately but they are
    orthogonal: bias only changes admission and the in-memory weight
    bookkeeping, striping only changes the physical layout, so the
    terabyte-scale configuration with a recency-weighted sample is
    exactly this class.
    """

    name = "biased multiple geo files"

    def __init__(self, device: BlockDevice, config: MultiFileConfig,
                 weight_fn: WeightFunction = uniform_weight,
                 *, seed: int | None = 0) -> None:
        self._require_record_retention(config)
        super().__init__(device, config, seed=seed)
        self._init_biased(weight_fn)

    def _biased_ledgers(self):
        return self._all_ledgers()
