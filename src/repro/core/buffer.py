"""The in-memory buffer of newly captured samples (Algorithm 2).

Between flushes, admitted records accumulate here.  Algorithm 2's key
subtlety (lines 6-8) is that a newly admitted record must evict a
uniformly random member of the *whole* current reservoir -- and with
probability ``count(B)/|R|`` that member is itself a buffered record
that has not reached disk yet.  In that case the replacement happens in
memory and the buffer count stays put; otherwise the new record joins
the buffer and one disk-resident record is doomed (which one is decided
collectively at flush time by Algorithm 3's randomized partitioning).

The buffer also supports the weighted variant: each slot can carry an
effective weight, and Section 7.3.2's overflow events scale every
buffered weight -- implemented with an epoch factor instead of an O(B)
sweep, exactly as in
:class:`~repro.sampling.biased_reservoir.BiasedReservoir`.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

import numpy as np

from ..storage.records import Record

_RENORMALIZE_ABOVE = 1e100


class SampleBuffer:
    """Fixed-capacity staging area for admitted records.

    Args:
        capacity: maximum records held (``|B|`` in the paper).
        rng: randomness for the in-buffer replacement draw.
        retain_records: keep the actual record objects.  Count-only
            mode (``False``) powers the large benchmark runs, where
            per-record Python objects would dominate the cost of the
            experiment without affecting any I/O behaviour.
        np_rng: numpy generator for the batched coin flips of
            :meth:`absorb_many`; derived deterministically from ``rng``
            when not supplied.
    """

    def __init__(self, capacity: int, rng: random.Random,
                 *, retain_records: bool = True,
                 np_rng: np.random.Generator | None = None) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        self.capacity = capacity
        self._rng = rng
        self._np_rng = np_rng
        self._retain = retain_records
        self._records: list[Record] | None = [] if retain_records else None
        self._weights: list[float] | None = None
        self._count = 0
        self._scale = 1.0

    # -- observers --------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

    @property
    def retains_records(self) -> bool:
        return self._retain

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Record]:
        if self._records is None:
            raise TypeError("buffer is running in count-only mode")
        return iter(self._records)

    def weights(self) -> list[float]:
        """Current effective weights (scaled), weighted buffers only."""
        if self._weights is None:
            raise TypeError("buffer holds no weights")
        return [w * self._scale for w in self._weights]

    # -- mutation ---------------------------------------------------------

    def append(self, record: Record | None, weight: float | None = None) -> None:
        """Add one record unconditionally (start-up phase).

        While the reservoir is still filling nothing is ever evicted, so
        admitted records simply join the buffer; the in-buffer
        replacement branch only exists once the reservoir is full.
        """
        if self.is_full:
            raise ValueError("buffer full; flush before appending more")
        if weight is not None and self._weights is None:
            if self._count > 0:
                raise ValueError("cannot switch to weighted mode mid-fill")
            self._weights = []
        if self._records is not None:
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            self._records.append(record)
        if self._weights is not None:
            if weight is None:
                raise ValueError("weighted buffer requires a weight")
            self._weights.append(weight / self._scale)
        self._count += 1

    def append_count(self, n: int) -> None:
        """Add ``n`` anonymous records (count-only fast path)."""
        if n < 0:
            raise ValueError("cannot append a negative count")
        if self._retain:
            raise TypeError("buffer retains records; use append instead")
        if self._count + n > self.capacity:
            raise ValueError("append_count would overfill the buffer")
        self._count += n

    def add_admitted(self, record: Record | None, reservoir_size: int,
                     weight: float | None = None) -> bool:
        """Place one admitted record (Algorithm 2, lines 6-10).

        Args:
            record: the record, or ``None`` in count-only mode.
            reservoir_size: ``|R|``, the fixed reservoir capacity.
            weight: effective weight for weighted operation; the first
                weighted add switches the buffer into weighted mode.

        Returns:
            True if the record *joined* the buffer (deferring one disk
            eviction), False if it replaced an already-buffered record.

        Raises:
            ValueError: if called on a full buffer -- the caller must
                flush first, mirroring Algorithm 2's line 12 check.
        """
        if self.is_full:
            raise ValueError("buffer full; flush before admitting more")
        if weight is not None and self._weights is None:
            if self._count > 0:
                raise ValueError("cannot switch to weighted mode mid-fill")
            self._weights = []
        # In-buffer replacement with probability count / |R|.
        if self._count > 0 and self._rng.random() * reservoir_size < self._count:
            slot = self._rng.randrange(self._count)
            if self._records is not None and record is not None:
                self._records[slot] = record
            if self._weights is not None:
                if weight is None:
                    raise ValueError("weighted buffer requires a weight")
                self._weights[slot] = weight / self._scale
            return False
        if self._records is not None:
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            self._records.append(record)
        if self._weights is not None:
            if weight is None:
                raise ValueError("weighted buffer requires a weight")
            self._weights.append(weight / self._scale)
        self._count += 1
        return True

    def extend(self, records: Sequence[Record | None]) -> None:
        """Batch :meth:`append` for the start-up phase.

        No eviction branch exists while the reservoir is filling, so a
        whole slice of admitted records joins in one list extension.
        Weighted buffers append per record (weights are per-record
        state).
        """
        n = len(records)
        if n == 0:
            return
        if self._count + n > self.capacity:
            raise ValueError("extend would overfill the buffer")
        if self._weights is not None:
            raise TypeError("weighted buffers append per record")
        if self._records is not None:
            if any(record is None for record in records):
                raise ValueError("record-retaining buffer needs the record")
            self._records.extend(records)
        self._count += n

    def absorb_many(self, records: Sequence[Record | None],
                    reservoir_size: int, *, start: int = 0) -> int:
        """Batch :meth:`add_admitted`: one vectorised coin-flip draw.

        Processes ``records[start:]`` until the buffer fills or the
        batch is exhausted, and returns how many records were consumed
        -- the caller flushes on ``is_full`` and re-enters with the
        remainder, mirroring Algorithm 2's per-record flush check.

        The in-buffer replacement probability ``count/|R|`` depends on
        the running join count, so the decisions are not i.i.d.; the
        batch draw exploits that the count assuming *all* prior records
        joined is an upper bound on the true count.  Records whose
        uniform exceeds even that bound are certain joins (the vast
        majority, since ``count/|R| <= B/N``); only the rare candidates
        below the bound are resolved sequentially.  Identical output
        distribution to a loop of :meth:`add_admitted` calls (tested).
        """
        if self.is_full:
            raise ValueError("buffer full; flush before admitting more")
        if self._weights is not None:
            raise TypeError("weighted buffers admit per record; "
                            "use add_admitted")
        n = len(records)
        if not 0 <= start <= n:
            raise ValueError(f"start {start} outside the batch of {n}")
        consumed = 0
        while start + consumed < n and not self.is_full:
            room = self.capacity - self._count
            chunk = min(n - start - consumed, max(2 * room, 64))
            consumed += self._absorb_chunk(records, start + consumed,
                                           chunk, reservoir_size)
        return consumed

    def _absorb_chunk(self, records: Sequence[Record | None], base: int,
                      m: int, reservoir_size: int) -> int:
        if self._np_rng is None:
            self._np_rng = np.random.default_rng(self._rng.getrandbits(64))
        w = self._np_rng.random(m) * reservoir_size
        # Count upper bound at each index: every prior record joined.
        candidates = np.flatnonzero(w < self._count + np.arange(m))
        count = self._count
        cap = self.capacity
        #: Confirmed replacements as (batch index, count at that moment).
        replaces: list[tuple[int, int]] = []
        consumed = m
        prev = -1
        for j in candidates:
            j = int(j)
            gap = j - prev - 1  # certain joins between candidates
            if count + gap >= cap:
                consumed = prev + 1 + (cap - count)
                count = cap
                break
            count += gap
            if w[j] < count:
                replaces.append((j, count))
            else:
                count += 1
                if count >= cap:
                    consumed = j + 1
                    prev = j
                    break
            prev = j
        else:
            tail = m - prev - 1
            if count + tail >= cap:
                consumed = prev + 1 + (cap - count)
                count = cap
            else:
                count += tail
        if self._records is not None:
            if any(records[base + j] is None for j in range(consumed)):
                raise ValueError("record-retaining buffer needs the record")
            recs = self._records
            position = 0
            for j, _count_at in replaces:
                recs.extend(records[base + position:base + j])
                position = j + 1
            recs.extend(records[base + position:base + consumed])
            # Replaying the replacements after the joins is equivalent
            # to interleaving: joins only append, and each replacement
            # slot draw uses the buffer size of its own moment.
            randrange = self._rng.randrange
            for j, count_at in replaces:
                recs[randrange(count_at)] = records[base + j]
        self._count = count
        return consumed

    def scale_weights(self, factor: float) -> None:
        """Section 7.3.2 step (2): scale every buffered effective weight."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if self._weights is None:
            raise TypeError("buffer holds no weights")
        self._scale *= factor
        if self._scale > _RENORMALIZE_ABOVE:
            self._weights = [w * self._scale for w in self._weights]
            self._scale = 1.0

    def drain(self) -> tuple[list[Record] | None, list[float] | None, int]:
        """Empty the buffer, returning (records, weights, count).

        Records come back *shuffled* -- the paper's flush step begins
        "first randomize the ordering of the sampled records in the
        buffer" (Section 4.3), and the ledger's pop-from-the-end
        eviction rule depends on it.
        """
        count = self._count
        records = self._records
        weights = None
        if self._weights is not None:
            weights = [w * self._scale for w in self._weights]
        if records is not None:
            paired = (list(zip(records, weights)) if weights is not None
                      else None)
            if paired is not None:
                self._rng.shuffle(paired)
                records = [r for r, _ in paired]
                weights = [w for _, w in paired]
            else:
                records = list(records)
                self._rng.shuffle(records)
        self._count = 0
        self._records = [] if self._retain else None
        self._weights = [] if self._weights is not None else None
        self._scale = 1.0
        return records, weights, count
