"""The in-memory buffer of newly captured samples (Algorithm 2).

Between flushes, admitted records accumulate here.  Algorithm 2's key
subtlety (lines 6-8) is that a newly admitted record must evict a
uniformly random member of the *whole* current reservoir -- and with
probability ``count(B)/|R|`` that member is itself a buffered record
that has not reached disk yet.  In that case the replacement happens in
memory and the buffer count stays put; otherwise the new record joins
the buffer and one disk-resident record is doomed (which one is decided
collectively at flush time by Algorithm 3's randomized partitioning).

The buffer also supports the weighted variant: each slot can carry an
effective weight, and Section 7.3.2's overflow events scale every
buffered weight -- implemented with an epoch factor instead of an O(B)
sweep, exactly as in
:class:`~repro.sampling.biased_reservoir.BiasedReservoir`.

Storage comes in three modes:

* *object* (``retain_records=True``): a Python list of
  :class:`~repro.storage.records.Record`;
* *count-only* (``retain_records=False``): no storage at all;
* *columnar* (``schema=...``): a preallocated structured-array slab of
  ``capacity`` rows (:attr:`RecordSchema.dtype`).  Joins are row (or
  slice) writes into the slab, :meth:`drain` hands back one
  :class:`~repro.storage.recordbatch.RecordBatch`, and the batch entry
  points (:meth:`extend_batch` / :meth:`absorb_batch`) absorb whole
  column slices without materialising a single record object.  The
  admission law is shared with the object mode -- the same decision
  kernel runs against either storage -- so the two are
  distributionally identical (tested).  Columnar buffers are
  uniform-only; weighted sampling stays on the object path.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

import numpy as np

from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema

_RENORMALIZE_ABOVE = 1e100


class SampleBuffer:
    """Fixed-capacity staging area for admitted records.

    Args:
        capacity: maximum records held (``|B|`` in the paper).
        rng: randomness for the in-buffer replacement draw.
        retain_records: keep the actual record objects.  Count-only
            mode (``False``) powers the large benchmark runs, where
            per-record Python objects would dominate the cost of the
            experiment without affecting any I/O behaviour.
        np_rng: numpy generator for the batched coin flips of
            :meth:`absorb_many`; derived deterministically from ``rng``
            when not supplied.
        schema: switch to columnar slab storage over this record
            schema (implies record retention; uniform-only).
        aux_width: float64 auxiliary columns carried per record for
            non-uniform sampling laws (keys, stream positions).  Aux
            rows ride :meth:`append` / :meth:`replace` in lock-step
            with the records and come back permuted identically by
            :meth:`drain` (via :meth:`take_aux`); the Algorithm 2
            replacement verbs are uniform-law-only and refuse an
            aux-carrying buffer.
    """

    def __init__(self, capacity: int, rng: random.Random,
                 *, retain_records: bool = True,
                 np_rng: np.random.Generator | None = None,
                 schema: RecordSchema | None = None,
                 aux_width: int = 0) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        if schema is not None and schema.weighted:
            raise ValueError("columnar buffers are uniform-only; weighted "
                             "sampling stays on the object path")
        if aux_width < 0:
            raise ValueError("aux_width cannot be negative")
        if aux_width and not (retain_records or schema is not None):
            raise ValueError("aux columns require record retention")
        self.capacity = capacity
        self._rng = rng
        self._np_rng = np_rng
        self._schema = schema
        self._slab: np.ndarray | None = (
            np.zeros(capacity, dtype=schema.dtype)
            if schema is not None else None
        )
        self._retain = retain_records or schema is not None
        self._records: list[Record] | None = (
            [] if self._retain and schema is None else None
        )
        self._weights: list[float] | None = None
        self._aux: np.ndarray | None = (
            np.zeros((capacity, aux_width)) if aux_width else None
        )
        self._drained_aux: np.ndarray | None = None
        self._count = 0
        self._scale = 1.0

    # -- observers --------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count >= self.capacity

    @property
    def retains_records(self) -> bool:
        return self._retain

    @property
    def columnar(self) -> bool:
        return self._slab is not None

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Record]:
        if self._slab is not None:
            return iter(RecordBatch(self._schema,
                                    self._slab[:self._count]))
        if self._records is None:
            raise TypeError("buffer is running in count-only mode")
        return iter(self._records)

    def pending_view(self) -> np.ndarray:
        """The live slab rows (columnar mode): a view, not a copy.

        The query path concatenates this straight into its combined
        array; callers must not hold the view across a mutation.
        """
        if self._slab is None:
            raise TypeError("buffer is not columnar")
        return self._slab[:self._count]

    def weights(self) -> list[float]:
        """Current effective weights (scaled), weighted buffers only."""
        if self._weights is None:
            raise TypeError("buffer holds no weights")
        return [w * self._scale for w in self._weights]

    @property
    def aux_width(self) -> int:
        return 0 if self._aux is None else self._aux.shape[1]

    def aux_view(self) -> np.ndarray:
        """The live aux rows: a view, not a copy (see pending_view)."""
        if self._aux is None:
            raise TypeError("buffer carries no aux columns")
        return self._aux[:self._count]

    # -- mutation ---------------------------------------------------------

    def append(self, record: Record | None, weight: float | None = None,
               *, aux=None) -> None:
        """Add one record unconditionally (start-up phase).

        While the reservoir is still filling nothing is ever evicted, so
        admitted records simply join the buffer; the in-buffer
        replacement branch only exists once the reservoir is full.

        ``aux`` is the record's auxiliary row when the buffer carries
        aux columns (non-uniform laws stage *every* admitted record
        through this verb, startup and steady alike).
        """
        if self.is_full:
            raise ValueError("buffer full; flush before appending more")
        if (aux is None) != (self._aux is None):
            raise TypeError("aux row and buffer aux_width must agree")
        if aux is not None:
            self._aux[self._count] = aux
        if self._slab is not None:
            if weight is not None:
                raise TypeError("columnar buffers are uniform-only")
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            self._slab[self._count] = self._encode_row(record)
            self._count += 1
            return
        if weight is not None and self._weights is None:
            if self._count > 0:
                raise ValueError("cannot switch to weighted mode mid-fill")
            self._weights = []
        if self._records is not None:
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            self._records.append(record)
        if self._weights is not None:
            if weight is None:
                raise ValueError("weighted buffer requires a weight")
            self._weights.append(weight / self._scale)
        self._count += 1

    def append_count(self, n: int) -> None:
        """Add ``n`` anonymous records (count-only fast path)."""
        if n < 0:
            raise ValueError("cannot append a negative count")
        if self._retain:
            raise TypeError("buffer retains records; use append instead")
        if self._count + n > self.capacity:
            raise ValueError("append_count would overfill the buffer")
        self._count += n

    def replace(self, slot: int, record: Record) -> None:
        """Overwrite a buffered record in place (with-replacement laws).

        The slot's identity changes but the buffer count does not --
        the overwritten record's deferred disk eviction (if any) now
        belongs to the new occupant.  Aux-carrying buffers refuse:
        their laws never overwrite staged candidates.
        """
        if not 0 <= slot < self._count:
            raise IndexError(f"slot {slot} outside the {self._count} "
                             "buffered records")
        if self._aux is not None:
            raise TypeError("aux-carrying buffers do not replace in place")
        if record is None:
            raise ValueError("record-retaining buffer needs the record")
        if self._slab is not None:
            self._slab[slot] = self._encode_row(record)
            return
        if self._records is None:
            raise TypeError("buffer is running in count-only mode")
        if self._weights is not None:
            raise TypeError("weighted buffers replace via add_admitted")
        self._records[slot] = record

    def add_admitted(self, record: Record | None, reservoir_size: int,
                     weight: float | None = None) -> bool:
        """Place one admitted record (Algorithm 2, lines 6-10).

        Args:
            record: the record, or ``None`` in count-only mode.
            reservoir_size: ``|R|``, the fixed reservoir capacity.
            weight: effective weight for weighted operation; the first
                weighted add switches the buffer into weighted mode.

        Returns:
            True if the record *joined* the buffer (deferring one disk
            eviction), False if it replaced an already-buffered record.

        Raises:
            ValueError: if called on a full buffer -- the caller must
                flush first, mirroring Algorithm 2's line 12 check.
        """
        if self.is_full:
            raise ValueError("buffer full; flush before admitting more")
        if self._aux is not None:
            raise TypeError("Algorithm 2 replacement is uniform-law-only; "
                            "aux-carrying buffers stage via append")
        if self._slab is not None:
            if weight is not None:
                raise TypeError("columnar buffers are uniform-only")
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            # Same two draws, same order, as the object path below.
            if (self._count > 0
                    and self._rng.random() * reservoir_size < self._count):
                self._slab[self._rng.randrange(self._count)] = (
                    self._encode_row(record))
                return False
            self._slab[self._count] = self._encode_row(record)
            self._count += 1
            return True
        if weight is not None and self._weights is None:
            if self._count > 0:
                raise ValueError("cannot switch to weighted mode mid-fill")
            self._weights = []
        # In-buffer replacement with probability count / |R|.
        if self._count > 0 and self._rng.random() * reservoir_size < self._count:
            slot = self._rng.randrange(self._count)
            if self._records is not None and record is not None:
                self._records[slot] = record
            if self._weights is not None:
                if weight is None:
                    raise ValueError("weighted buffer requires a weight")
                self._weights[slot] = weight / self._scale
            return False
        if self._records is not None:
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            self._records.append(record)
        if self._weights is not None:
            if weight is None:
                raise ValueError("weighted buffer requires a weight")
            self._weights.append(weight / self._scale)
        self._count += 1
        return True

    def extend(self, records: Sequence[Record | None]) -> None:
        """Batch :meth:`append` for the start-up phase.

        No eviction branch exists while the reservoir is filling, so a
        whole slice of admitted records joins in one list extension.
        Weighted buffers append per record (weights are per-record
        state).
        """
        n = len(records)
        if n == 0:
            return
        if self._count + n > self.capacity:
            raise ValueError("extend would overfill the buffer")
        if self._weights is not None:
            raise TypeError("weighted buffers append per record")
        if self._aux is not None:
            raise TypeError("aux-carrying buffers append per record")
        if self._slab is not None:
            encode = self._encode_row
            slab = self._slab
            count = self._count
            for i, record in enumerate(records):
                if record is None:
                    raise ValueError(
                        "record-retaining buffer needs the record")
                slab[count + i] = encode(record)
            self._count = count + n
            return
        if self._records is not None:
            if any(record is None for record in records):
                raise ValueError("record-retaining buffer needs the record")
            self._records.extend(records)
        self._count += n

    def extend_batch(self, batch: RecordBatch) -> None:
        """Columnar :meth:`extend`: one slab slice copy (start-up phase)."""
        if self._slab is None:
            raise TypeError("buffer is not columnar; use extend")
        if self._aux is not None:
            raise TypeError("aux-carrying buffers append per record")
        n = len(batch)
        if n == 0:
            return
        if self._count + n > self.capacity:
            raise ValueError("extend would overfill the buffer")
        self._slab[self._count:self._count + n] = batch.array
        self._count += n

    def absorb_many(self, records: Sequence[Record | None],
                    reservoir_size: int, *, start: int = 0) -> int:
        """Batch :meth:`add_admitted`: one vectorised coin-flip draw.

        Processes ``records[start:]`` until the buffer fills or the
        batch is exhausted, and returns how many records were consumed
        -- the caller flushes on ``is_full`` and re-enters with the
        remainder, mirroring Algorithm 2's per-record flush check.

        The in-buffer replacement probability ``count/|R|`` depends on
        the running join count, so the decisions are not i.i.d.; the
        batch draw exploits that the count assuming *all* prior records
        joined is an upper bound on the true count.  Records whose
        uniform exceeds even that bound are certain joins (the vast
        majority, since ``count/|R| <= B/N``); only the rare candidates
        below the bound are resolved sequentially.  Identical output
        distribution to a loop of :meth:`add_admitted` calls (tested).
        """
        if self.is_full:
            raise ValueError("buffer full; flush before admitting more")
        if self._weights is not None:
            raise TypeError("weighted buffers admit per record; "
                            "use add_admitted")
        if self._aux is not None:
            raise TypeError("Algorithm 2 replacement is uniform-law-only; "
                            "aux-carrying buffers stage via append")
        n = len(records)
        if not 0 <= start <= n:
            raise ValueError(f"start {start} outside the batch of {n}")
        consumed = 0
        while start + consumed < n and not self.is_full:
            room = self.capacity - self._count
            chunk = min(n - start - consumed, max(2 * room, 64))
            consumed += self._absorb_chunk(records, start + consumed,
                                           chunk, reservoir_size)
        return consumed

    def absorb_batch(self, batch: RecordBatch, reservoir_size: int,
                     *, start: int = 0) -> int:
        """Columnar :meth:`absorb_many`: joins land as slab slice copies.

        Runs the identical decision kernel (same RNG stream, same
        admission law), then applies the joins as one fancy-index copy
        from the batch's array per chunk instead of per-record
        appends.  Returns the records consumed, like
        :meth:`absorb_many`.
        """
        if self._slab is None:
            raise TypeError("buffer is not columnar; use absorb_many")
        if self._aux is not None:
            raise TypeError("Algorithm 2 replacement is uniform-law-only; "
                            "aux-carrying buffers stage via append")
        if self.is_full:
            raise ValueError("buffer full; flush before admitting more")
        n = len(batch)
        if not 0 <= start <= n:
            raise ValueError(f"start {start} outside the batch of {n}")
        array = batch.array
        consumed = 0
        while start + consumed < n and not self.is_full:
            room = self.capacity - self._count
            chunk = min(n - start - consumed, max(2 * room, 64))
            base = start + consumed
            took, count, replaces = self._absorb_decisions(
                chunk, reservoir_size)
            self._apply_absorb_array(array, base, took, replaces)
            self._count = count
            consumed += took
        return consumed

    def _absorb_chunk(self, records: Sequence[Record | None], base: int,
                      m: int, reservoir_size: int) -> int:
        consumed, count, replaces = self._absorb_decisions(m, reservoir_size)
        if self._slab is not None:
            self._apply_absorb_rows(records, base, consumed, replaces)
        elif self._records is not None:
            self._apply_absorb_list(records, base, consumed, replaces)
        self._count = count
        return consumed

    def _absorb_decisions(self, m: int, reservoir_size: int
                          ) -> tuple[int, int, list[tuple[int, int]]]:
        """The storage-independent half of a chunk absorb.

        Returns ``(consumed, count_after, replaces)`` where
        ``replaces`` lists confirmed in-buffer replacements as
        ``(batch index, buffer count at that moment)``; every other
        consumed index is a join.  Consumes exactly the RNG stream the
        original fused kernel did, so object and columnar storage see
        identical decisions for identical seeds.
        """
        if self._np_rng is None:
            self._np_rng = np.random.default_rng(self._rng.getrandbits(64))
        w = self._np_rng.random(m) * reservoir_size
        # Count upper bound at each index: every prior record joined.
        candidates = np.flatnonzero(w < self._count + np.arange(m))
        count = self._count
        cap = self.capacity
        #: Confirmed replacements as (batch index, count at that moment).
        replaces: list[tuple[int, int]] = []
        consumed = m
        prev = -1
        for j in candidates:
            j = int(j)
            gap = j - prev - 1  # certain joins between candidates
            if count + gap >= cap:
                consumed = prev + 1 + (cap - count)
                count = cap
                break
            count += gap
            if w[j] < count:
                replaces.append((j, count))
            else:
                count += 1
                if count >= cap:
                    consumed = j + 1
                    prev = j
                    break
            prev = j
        else:
            tail = m - prev - 1
            if count + tail >= cap:
                consumed = prev + 1 + (cap - count)
                count = cap
            else:
                count += tail
        return consumed, count, replaces

    def _apply_absorb_list(self, records: Sequence[Record | None],
                           base: int, consumed: int,
                           replaces: list[tuple[int, int]]) -> None:
        if any(records[base + j] is None for j in range(consumed)):
            raise ValueError("record-retaining buffer needs the record")
        recs = self._records
        position = 0
        for j, _count_at in replaces:
            recs.extend(records[base + position:base + j])
            position = j + 1
        recs.extend(records[base + position:base + consumed])
        # Replaying the replacements after the joins is equivalent
        # to interleaving: joins only append, and each replacement
        # slot draw uses the buffer size of its own moment.
        randrange = self._rng.randrange
        for j, count_at in replaces:
            recs[randrange(count_at)] = records[base + j]

    def _apply_absorb_rows(self, records: Sequence[Record | None],
                           base: int, consumed: int,
                           replaces: list[tuple[int, int]]) -> None:
        """Object-record application against the slab (the shim path)."""
        slab = self._slab
        encode = self._encode_row
        position = 0
        pos = self._count
        for j, _count_at in replaces:
            for i in range(position, j):
                record = records[base + i]
                if record is None:
                    raise ValueError(
                        "record-retaining buffer needs the record")
                slab[pos] = encode(record)
                pos += 1
            position = j + 1
        for i in range(position, consumed):
            record = records[base + i]
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            slab[pos] = encode(record)
            pos += 1
        randrange = self._rng.randrange
        for j, count_at in replaces:
            record = records[base + j]
            if record is None:
                raise ValueError("record-retaining buffer needs the record")
            slab[randrange(count_at)] = encode(record)

    def _apply_absorb_array(self, array: np.ndarray, base: int,
                            consumed: int,
                            replaces: list[tuple[int, int]]) -> None:
        """Columnar application: joins as one fancy-index slice copy."""
        slab = self._slab
        if not replaces:
            slab[self._count:self._count + consumed] = (
                array[base:base + consumed])
            return
        join_mask = np.ones(consumed, dtype=bool)
        for j, _count_at in replaces:
            join_mask[j] = False
        joins = base + np.flatnonzero(join_mask)
        slab[self._count:self._count + joins.shape[0]] = array[joins]
        randrange = self._rng.randrange
        for j, count_at in replaces:
            slab[randrange(count_at)] = array[base + j]

    def _encode_row(self, record: Record):
        # One scalar-codec pack per row keeps slab bytes identical to
        # what the object path would eventually encode.
        return np.frombuffer(self._schema.encode(record),
                             dtype=self._schema.dtype)[0]

    def scale_weights(self, factor: float) -> None:
        """Section 7.3.2 step (2): scale every buffered effective weight."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if self._weights is None:
            raise TypeError("buffer holds no weights")
        self._scale *= factor
        if self._scale > _RENORMALIZE_ABOVE:
            self._weights = [w * self._scale for w in self._weights]
            self._scale = 1.0

    def drain(self) -> tuple[list[Record] | None, list[float] | None, int]:
        """Empty the buffer, returning (records, weights, count).

        Records come back *shuffled* -- the paper's flush step begins
        "first randomize the ordering of the sampled records in the
        buffer" (Section 4.3), and the ledger's pop-from-the-end
        eviction rule depends on it.

        Columnar buffers return a freshly-permuted
        :class:`~repro.storage.recordbatch.RecordBatch` (the slab is
        reused for the next fill) with ``weights`` always ``None``.

        Double-buffering contract (:mod:`repro.pipeline`): the return
        value never aliases live buffer storage -- the object path
        copies the record list, and the columnar path's permutation is
        a fancy-index *copy* of the slab, not a view.  The drained
        result is therefore a *sealed* buffer: the ingest thread keeps
        admitting into this (now empty) buffer while the background
        writer drains the sealed one, with no shared mutable state.
        """
        if self._slab is not None:
            count = self._count
            # Shuffle an index list through the *same* random.Random
            # the object path shuffles its record list with: both modes
            # consume identical RNG streams, so flush cadence and every
            # downstream draw stay bit-exact between them.
            order = list(range(count))
            self._rng.shuffle(order)
            index = np.asarray(order, dtype=np.intp)
            batch = RecordBatch(self._schema, self._slab[:count][index])
            if self._aux is not None:
                self._drained_aux = self._aux[:count][index]
            self._count = 0
            return batch, None, count
        count = self._count
        records = self._records
        weights = None
        if self._weights is not None:
            weights = [w * self._scale for w in self._weights]
        if records is not None:
            paired = (list(zip(records, weights)) if weights is not None
                      else None)
            if paired is not None:
                self._rng.shuffle(paired)
                records = [r for r, _ in paired]
                weights = [w for _, w in paired]
            elif self._aux is not None:
                # Index-order shuffle: Fisher-Yates over an index list
                # applies the same permutation (and consumes the same
                # RNG stream) as shuffling the record list directly,
                # and lets the aux rows ride along in lock-step.
                order = list(range(count))
                self._rng.shuffle(order)
                records = [records[i] for i in order]
                self._drained_aux = (
                    self._aux[:count][np.asarray(order, dtype=np.intp)])
            else:
                records = list(records)
                self._rng.shuffle(records)
        self._count = 0
        self._records = [] if self._retain else None
        self._weights = [] if self._weights is not None else None
        self._scale = 1.0
        return records, weights, count

    def take_aux(self) -> np.ndarray | None:
        """Claim the aux rows of the last :meth:`drain` (one shot).

        Returns ``None`` for aux-free buffers; otherwise the aux rows
        permuted identically to the drained records.  Consumes no
        randomness either way, so uniform-law flush cadence is
        untouched by the aux machinery.
        """
        if self._aux is None:
            return None
        drained = self._drained_aux
        if drained is None:
            raise ValueError("no drained aux rows pending; call drain first")
        self._drained_aux = None
        return drained
