"""Checkpointing a geometric file's logical state.

Any production deployment of a structure that lives for months (the
paper's premise: the reservoir is the durable synopsis of an unbounded
stream) needs its catalog -- which subsamples exist, which slots and
stack regions they own, how far the stream has progressed -- to survive
restarts.  The paper leaves recovery as engineering; this module
provides it: :func:`save_geometric_file` serialises the complete
logical state (config, progress counters, every ledger, the buffer,
and both RNG states) to JSON, and :func:`load_geometric_file`
reconstructs a file that continues *bit-for-bit identically* to the
original (tested).

Record payloads are included when the file retains records; a
count-only benchmark file round-trips its counters and layout only.
"""

from __future__ import annotations

import base64
import json
from dataclasses import asdict
from typing import IO

import numpy as np

from ..storage.device import BlockDevice
from ..storage.records import Record
from .biased_file import (
    BiasedGeometricFile,
    BiasedMultipleGeometricFiles,
    BiasedSamplingMixin,
)
from .geometric_file import GeometricFile, GeometricFileConfig
from .multi import MultiFileConfig, MultipleGeometricFiles
from .subsample import SubsampleLedger

FORMAT_VERSION = 1


def _encode_record(record: Record) -> list:
    payload = base64.b64encode(record.payload).decode("ascii")
    return [record.key, record.value, record.timestamp, payload]


def _decode_record(fields: list) -> Record:
    key, value, timestamp, payload = fields
    return Record(key=int(key), value=float(value),
                  timestamp=float(timestamp),
                  payload=base64.b64decode(payload))


def _encode_ledger(ledger: SubsampleLedger) -> dict:
    state = {
        "ident": ledger.ident,
        "segment_sizes": list(ledger.segment_sizes),
        "first_level": ledger.first_level,
        "tail_size": ledger.tail_size,
        "live": ledger.live,
        "stack_balance": ledger.stack_balance,
        "stack_capacity": ledger.stack_capacity,
        "max_stack_balance": ledger.max_stack_balance,
        "reconciled_balance": ledger._reconciled_balance,
        "slots": list(ledger.slots),
        "stack_region": ledger.stack_region,
        "records": None,
        "weights": None,
        "aux": None,
    }
    if ledger.records is not None:
        state["records"] = [_encode_record(r) for r in ledger.records]
    if ledger.weights is not None:
        state["weights"] = list(ledger.weights)
    if ledger.aux is not None:
        # json handles +-Infinity natively, so A-ExpJ's -inf log keys
        # round-trip without special casing.
        state["aux"] = ledger.aux.tolist()
    return state


def _decode_ledger(state: dict, schema=None) -> SubsampleLedger:
    records = state["records"]
    if records is not None:
        records = [_decode_record(f) for f in records]
        if schema is not None:
            # Columnar restore: the ledger holds a RecordBatch slab, so
            # the reloaded structure keeps its pure-array query path.
            from ..storage.recordbatch import RecordBatch

            records = RecordBatch.from_records(schema, records)
    ledger = SubsampleLedger.__new__(SubsampleLedger)
    ledger.ident = state["ident"]
    ledger.first_level = state["first_level"]
    ledger.tail_size = state["tail_size"]
    ledger.live = state["live"]
    ledger.records = records
    ledger.weights = (list(state["weights"])
                      if state["weights"] is not None else None)
    aux = state.get("aux")
    ledger.aux = (np.asarray(aux, dtype=np.float64)
                  if aux else None)
    ledger.stack_balance = state["stack_balance"]
    ledger.stack_capacity = state["stack_capacity"]
    ledger.overflowed = False
    ledger.max_stack_balance = state["max_stack_balance"]
    ledger._reconciled_balance = state["reconciled_balance"]
    ledger.stack_region = state["stack_region"]
    ledger.restore_layout_state(state["segment_sizes"], state["slots"])
    return ledger


def save_geometric_file(gf: GeometricFile | MultipleGeometricFiles,
                        sink: IO[str], *, meta: dict | None = None) -> None:
    """Serialise the structure's complete logical state as JSON.

    Args:
        gf: a (possibly biased) geometric file or a multi-file
            structure.
        sink: a text file-like object to write to.
        meta: optional caller metadata stored alongside the state and
            returned by :func:`load_geometric_file` as
            ``gf.checkpoint_meta``.  The sharded service uses this to
            stamp each checkpoint with the batch sequence number it
            covers, so recovery replays exactly the batches the
            checkpoint has not seen -- storing the two in one file (one
            atomic rename) is what makes the no-loss/no-double-count
            guarantee crash-safe.
    """
    buffer_records = None
    buffer_weights = None
    buffer_aux = None
    if gf.buffer.retains_records:
        buffer_records = [_encode_record(r) for r in gf.buffer]
        if gf.buffer._weights is not None:
            buffer_weights = gf.buffer.weights()
        if gf.buffer.aux_width:
            buffer_aux = gf.buffer.aux_view().tolist()
    state = {
        "version": FORMAT_VERSION,
        "kind": type(gf).__name__,
        "config": asdict(gf.config),
        "seen": gf._seen,
        "samples_added": gf._samples_added,
        "flushes": gf.flushes,
        "stack_overflows": gf.stack_overflows,
        "startup_index": gf._startup_index,
        "next_ident": gf._next_ident,
        "buffer_count": gf.buffer.count,
        "buffer_records": buffer_records,
        "buffer_weights": buffer_weights,
        "buffer_aux": buffer_aux,
        "law_state": gf._law.state_dict(),
        "rng_state": _encode_py_rng(gf._rng.getstate()),
        "np_rng_state": _encode_np_rng(gf._np_rng),
    }
    if meta is not None:
        state["meta"] = meta
    if isinstance(gf, MultipleGeometricFiles):
        state["files"] = [
            {
                "free_slots": file.layout._free_slots,
                "dummy_slots": list(file.dummy_slots),
                "ledgers": [_encode_ledger(ledger)
                            for ledger in file.subsamples],
            }
            for file in gf.files
        ]
    else:
        state["free_slots"] = gf._layout._free_slots
        state["ledgers"] = [_encode_ledger(ledger)
                            for ledger in gf.subsamples]
    if isinstance(gf, BiasedSamplingMixin):
        state["total_weight"] = gf.total_weight
        state["multipliers"] = {str(k): v
                                for k, v in gf.multipliers.items()}
        state["overflow_events"] = gf.overflow_events
    json.dump(state, sink)


def load_geometric_file(source: IO[str], device: BlockDevice,
                        weight_fn=None) -> GeometricFile:
    """Reconstruct a geometric file from :func:`save_geometric_file` output.

    Args:
        source: text file-like object with the JSON state.
        device: a (fresh or original) backing device, at least as large
            as the original one.
        weight_fn: required when restoring a biased file -- functions
            cannot be serialised, so the caller re-supplies ``f``.

    Returns:
        A file whose subsequent behaviour is identical to the saved one.
        Any ``meta`` mapping passed to :func:`save_geometric_file` is
        attached as ``checkpoint_meta`` (``None`` when absent).
    """
    state = json.load(source)
    if state.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version "
                         f"{state.get('version')!r}")
    kind = state["kind"]
    if kind in ("BiasedGeometricFile", "BiasedMultipleGeometricFiles"):
        if weight_fn is None:
            raise ValueError("restoring a biased file requires weight_fn")
        if kind == "BiasedGeometricFile":
            config = GeometricFileConfig(**state["config"])
            gf: GeometricFile | MultipleGeometricFiles = \
                BiasedGeometricFile(device, config, weight_fn, seed=0)
        else:
            multi_config = MultiFileConfig(**state["config"])
            gf = BiasedMultipleGeometricFiles(device, multi_config,
                                              weight_fn, seed=0)
        gf.total_weight = state["total_weight"]
        gf.multipliers = {int(k): v
                          for k, v in state["multipliers"].items()}
        gf.overflow_events = state["overflow_events"]
    elif kind == "GeometricFile":
        config = GeometricFileConfig(**state["config"])
        gf = GeometricFile(device, config, seed=0, weight_fn=weight_fn)
    elif kind == "MultipleGeometricFiles":
        config = MultiFileConfig(**state["config"])
        gf = MultipleGeometricFiles(device, config, seed=0,
                                    weight_fn=weight_fn)
    else:
        raise ValueError(f"unknown checkpoint kind {kind!r}")

    gf._seen = state["seen"]
    gf._samples_added = state["samples_added"]
    gf.flushes = state["flushes"]
    gf.stack_overflows = state["stack_overflows"]
    gf._startup_index = state["startup_index"]
    gf._next_ident = state["next_ident"]
    ledger_schema = gf.schema if getattr(gf, "columnar", False) else None
    if isinstance(gf, MultipleGeometricFiles):
        for file, file_state in zip(gf.files, state["files"]):
            file.layout._free_slots = [list(s)
                                       for s in file_state["free_slots"]]
            file.dummy_slots = list(file_state["dummy_slots"])
            file.subsamples = [_decode_ledger(s, ledger_schema)
                               for s in file_state["ledgers"]]
    else:
        gf._layout._free_slots = [list(s) for s in state["free_slots"]]
        gf.subsamples = [_decode_ledger(s, ledger_schema)
                         for s in state["ledgers"]]
    if state["buffer_records"] is not None:
        buffer_aux = state.get("buffer_aux")
        for index, fields in enumerate(state["buffer_records"]):
            weight = None
            if state["buffer_weights"] is not None:
                weight = state["buffer_weights"][index]
            aux = buffer_aux[index] if buffer_aux is not None else None
            gf.buffer.append(_decode_record(fields), weight=weight,
                             aux=aux)
    else:
        gf.buffer.append_count(state["buffer_count"])
    law_state = state.get("law_state")
    if law_state is not None:
        gf._law.restore_state(law_state)
    gf._rng.setstate(_decode_py_rng(state["rng_state"]))
    _restore_np_rng(gf._np_rng, state["np_rng_state"])
    gf.checkpoint_meta = state.get("meta")
    return gf


def _encode_py_rng(state: tuple) -> list:
    """random.Random state is nested tuples; JSON wants lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _decode_py_rng(state: list) -> tuple:
    version, internal, gauss_next = state
    return (version, tuple(internal), gauss_next)


def _encode_np_rng(np_rng) -> dict:
    """numpy ``Generator`` state as pure-builtin JSON types.

    ``bit_generator.state`` nests only strings and integers for PCG64
    (including the 32-bit carry in ``has_uint32``/``uinteger``, so the
    snapshot is the *complete* generator state), but numpy does not
    promise builtin ``int`` for the values.  Coercing every scalar
    explicitly makes the JSON round trip bit-exact by construction --
    Python ints are arbitrary precision, so the 128-bit PCG64 counters
    survive untouched.
    """
    return _pure_json(np_rng.bit_generator.state)


def _pure_json(value):
    if isinstance(value, dict):
        return {str(k): _pure_json(v) for k, v in value.items()}
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return value
    try:
        return int(value)
    except (TypeError, ValueError):
        raise TypeError(
            f"cannot serialise RNG state member {value!r}"
        ) from None


def _restore_np_rng(np_rng, state: dict) -> None:
    """Install a saved bit-generator state, failing loudly on mismatch."""
    expected = type(np_rng.bit_generator).__name__
    saved = state.get("bit_generator")
    if saved != expected:
        raise ValueError(
            f"checkpoint holds {saved!r} RNG state; the restored "
            f"structure uses {expected!r}"
        )
    np_rng.bit_generator.state = state
