"""The geometric file (paper Sections 4 and 5).

A single geometric file maintains a disk-resident reservoir of ``N``
records fed by buffer flushes of ``B`` records each.  Lemma 1 fixes the
decay rate at ``alpha = 1 - B/N``; each flush's records are partitioned
into a ladder of segments sized ``n, n*alpha, n*alpha**2, ...``
(``n = B*(1-alpha)``) plus an in-memory tail of about ``beta`` records,
and those segments overwrite the largest remaining segment of every
existing subsample.  All data I/O is sequential segment writes; random
head movements are limited to one-ish per segment plus stack
maintenance -- the property the whole paper is about.

Layout (Figure 2): level-``l`` slots live together in one extent
("all segment l's"), each level holding ``l + 2`` slots (``l + 1``
occupied in steady state plus one slack slot that simplifies the
start-up / steady-state hand-over).  Stack regions of
``stack_multiplier * sqrt(B)`` records (Section 4.5.1) are pre-allocated
and assigned to disk-holding subsamples round-robin.

Correctness model: victim counts per flush are a multivariate
hypergeometric draw over subsample sizes -- Algorithm 3's randomized
partitioning -- and evictions within a subsample pop from a pre-shuffled
record list, which is uniform by exchangeability.  See DESIGN.md design
decisions 1-3 for why this is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..pipeline import SCHEDULER_NAMES, FlushEngine, FlushPlan
from ..reservoir import (
    AdmissionMode,
    StreamReservoir,
    VictimScratch,
    draw_victim_counts_array,
)
from ..sampling.laws import LAW_NAMES, make_law
from ..storage.device import (
    BlockDevice,
    SimulatedBlockDevice,
    device_stores_bytes,
)
from ..storage.extents import Extent, ExtentAllocator
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema
from .buffer import SampleBuffer
from .geometry import SegmentLadder, alpha_for, build_ladder, startup_fill_sizes
from .subsample import SubsampleLedger


@dataclass(frozen=True)
class GeometricFileConfig:
    """Sizing knobs for a geometric file.

    Attributes:
        capacity: reservoir size ``N`` in records.
        buffer_capacity: new-sample buffer size ``B`` in records.
        record_size: bytes per record (50 B / 1 KB in the experiments).
        beta_records: in-memory tail group size per subsample; defaults
            to one device block's worth of records, the paper's choice
            ("we will fix beta to hold a set of samples equivalent to
            the system block size", Section 5.2).
        stack_multiplier: stack region size as a multiple of
            ``sqrt(B)``; the paper picks 3 for a ~1e-9 overflow chance.
        retain_records: keep actual record payloads in memory ledgers
            (tests / small runs).  Count-only mode powers paper-scale
            benchmarks.
        admission: see :class:`~repro.reservoir.StreamReservoir`.
        extra_seeks_per_segment: additional random head movements
            charged per segment write, covering unaligned-boundary
            read-modify-write and the far side of stack adjustments.
            The default of 2 lands the total at the paper's "around
            four disk seeks to write" per segment (Section 5.1);
            set to 0 to model perfectly aligned segments.
        columnar: run the columnar record engine: the buffer becomes a
            structured-array slab, ledgers hold
            :class:`~repro.storage.recordbatch.RecordBatch` slices,
            flushes encode whole segments in one call (and write real
            bytes on byte-storing devices), and ``sample_batch`` /
            ``snapshot_batch`` answer queries without materialising
            record objects.  Implies ``retain_records``.  Every I/O
            charge is identical to the scalar path (tested bit-exactly
            against :class:`~repro.storage.disk_model.DiskStats`).
        pipeline: run flushes on a background writer thread (double
            buffering: ingestion refills a fresh buffer while the
            writer drains the sealed one).  Off by default; the
            synchronous path executes the identical flush plan inline,
            so both modes are bit-exact on samples, clock, and
            :class:`~repro.storage.disk_model.DiskStats`.  See
            :mod:`repro.pipeline`.
        io_scheduler: flush-plan ordering -- ``"fifo"`` replays the
            recorded op order (the legacy behaviour), ``"elevator"``
            sorts segment writes by block address and coalesces
            adjacent extents into single bursts.
        stream_rate: records/second the ingest side produces, used to
            model the CPU fill time a pipelined flush can hide on the
            simulated timeline; ``None`` models an instantaneous
            stream (no overlap credit).
        law: the sampling law maintained over the file -- one of
            :data:`~repro.sampling.laws.LAW_NAMES` (``"uniform"``,
            ``"aexpj"``, ``"wr"``, ``"window"``).  Non-uniform laws
            supersede ``admission`` and require record retention (the
            victims are chosen by content).  See docs/SAMPLING_LAWS.md.
        law_params: plain ``(key, value)`` pairs parameterising the
            law (e.g. ``(("window", 50_000),)`` or
            ``(("weight", "value"),)``); kept as data so configs
            survive ``asdict`` / JSON / pickle round trips.
    """

    capacity: int
    buffer_capacity: int
    record_size: int = 100
    beta_records: int | None = None
    stack_multiplier: float = 3.0
    retain_records: bool = False
    admission: AdmissionMode = "always"
    extra_seeks_per_segment: int = 2
    columnar: bool = False
    pipeline: bool = False
    io_scheduler: str = "fifo"
    stream_rate: float | None = None
    law: str = "uniform"
    law_params: tuple = ()

    def __post_init__(self) -> None:
        if self.columnar and not self.retain_records:
            # Columnar mode *is* a record-retention mode; forcing the
            # flag keeps every existing retain_records check truthful.
            object.__setattr__(self, "retain_records", True)
        if self.law not in LAW_NAMES:
            raise ValueError(f"unknown sampling law {self.law!r}; "
                             f"expected one of {LAW_NAMES}")
        # JSON/asdict round trips turn the pairs into nested lists;
        # normalise back to hashable tuple-of-tuples.
        if not isinstance(self.law_params, tuple) or any(
                not isinstance(pair, tuple) for pair in self.law_params):
            object.__setattr__(
                self, "law_params",
                tuple(tuple(pair) for pair in self.law_params))
        if self.law != "uniform" and not self.retain_records:
            raise ValueError(
                f"law {self.law!r} picks victims by record content; "
                "set retain_records=True (or columnar=True)")
        if self.buffer_capacity < 2:
            raise ValueError("buffer must hold at least two records")
        if self.capacity <= self.buffer_capacity:
            raise ValueError("capacity must exceed the buffer (N >> B)")
        if self.record_size < 1:
            raise ValueError("record_size must be positive")
        if self.beta_records is not None and self.beta_records < 1:
            raise ValueError("beta_records must be positive")
        if self.stack_multiplier <= 0:
            raise ValueError("stack_multiplier must be positive")
        if self.extra_seeks_per_segment < 0:
            raise ValueError("extra seeks cannot be negative")
        if self.io_scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown io_scheduler {self.io_scheduler!r}; expected "
                f"one of {SCHEDULER_NAMES}"
            )
        if self.stream_rate is not None and self.stream_rate <= 0:
            raise ValueError("stream_rate must be positive")

    def resolve_beta(self, block_size: int) -> int:
        """The tail group size actually used, in records."""
        if self.beta_records is not None:
            return self.beta_records
        return max(1, block_size // self.record_size)

    def stack_records(self) -> int:
        """Pre-allocated stack capacity per subsample, in records."""
        return max(1, math.ceil(
            self.stack_multiplier * math.sqrt(self.buffer_capacity)
        ))


class GeometricFile(StreamReservoir):
    """A single geometric file over a block device.

    Args:
        device: backing store; must be at least
            :meth:`required_blocks` big.
        config: sizing; ``alpha`` is derived via Lemma 1.
        seed: RNG seed for all randomized steps.
        weight_fn: optional weight callable for the weighted laws,
            overriding the picklable ``("weight", ...)`` spec in
            ``config.law_params``.  Ignored by the uniform law.
    """

    name = "geo file"

    def __init__(self, device: BlockDevice, config: GeometricFileConfig,
                 *, seed: int | None = 0, weight_fn=None) -> None:
        law = make_law(config.law, config.law_params, weight_fn=weight_fn)
        law.validate_config(config)
        super().__init__(config.capacity, admission=config.admission,
                         seed=seed, law=law)
        self.device = device
        self.config = config
        self.schema = RecordSchema(config.record_size)
        self.alpha = alpha_for(config.capacity, config.buffer_capacity)
        self.beta = config.resolve_beta(device.block_size)
        self.ladder = build_ladder(config.buffer_capacity, self.alpha,
                                   self.beta)
        self._records_per_block = self.schema.records_per_block(
            device.block_size
        )
        self._layout = FileLayout.build(
            device, self.ladder, self.schema,
            stack_records=config.stack_records(),
            n_stack_regions=self.ladder.n_disk_segments + 2,
        )
        self._engine = FlushEngine.for_config(device, config)
        # Per-level block counts, precomputed once: the flush hot loop
        # writes the same ladder of segment sizes every time, so the
        # per-segment ceil-division is pure overhead.
        self._segment_blocks = [self._blocks_for(size)
                                for size in self.ladder.segment_sizes]
        self.buffer = SampleBuffer(config.buffer_capacity, self._rng,
                                   retain_records=config.retain_records,
                                   np_rng=self._np_rng,
                                   schema=(self.schema if config.columnar
                                           else None),
                                   aux_width=law.aux_width)
        #: Encode real segment payloads only when the device can hand
        #: them back; cost-only devices keep the write_zeros charge.
        self._store_bytes = (config.columnar
                             and device_stores_bytes(device))
        self.subsamples: list[SubsampleLedger] = []
        self._victim_scratch = VictimScratch()
        self._startup_sizes = startup_fill_sizes(
            config.capacity, config.buffer_capacity, self.alpha
        )
        self._startup_index = 0
        self._next_ident = 0
        self.flushes = 0
        self.stack_overflows = 0
        self.chunk_floor = config.buffer_capacity

    # -- public observers ---------------------------------------------------

    @classmethod
    def required_blocks(cls, config: GeometricFileConfig,
                        block_size: int) -> int:
        """Device size needed for this configuration."""
        alpha = alpha_for(config.capacity, config.buffer_capacity)
        beta = config.resolve_beta(block_size)
        ladder = build_ladder(config.buffer_capacity, alpha, beta)
        schema = RecordSchema(config.record_size)
        return FileLayout.blocks_needed(
            block_size, ladder, schema,
            stack_records=config.stack_records(),
            n_stack_regions=ladder.n_disk_segments + 2,
        )

    def _clock(self) -> float:
        # Duck-typed: any cost-modelled device (simulated, striped)
        # exposes a simulated clock; byte-only backends do not.
        return getattr(self.device, "clock", 0.0)

    def _stats_extra(self) -> dict:
        extra = {
            "alpha": self.alpha,
            "n_subsamples": self.n_subsamples,
            "stack_overflows": self.stack_overflows,
        }
        if not self._law.is_uniform:
            extra["law"] = {"name": self._law.name,
                            **self._law.stats_extra()}
        return extra

    def iter_ledgers(self):
        """All live subsample ledgers, materialisation order (law hook)."""
        return iter(self.subsamples)

    @property
    def in_startup(self) -> bool:
        """True until the reservoir has filled for the first time."""
        return self._startup_index < len(self._startup_sizes)

    @property
    def disk_size(self) -> int:
        """Live records across all subsamples (``N`` once filled)."""
        return sum(ledger.live for ledger in self.subsamples)

    @property
    def n_subsamples(self) -> int:
        return len(self.subsamples)

    def sample(self, k: int | None = None, *, rng=None) -> list[Record]:
        """The current reservoir contents (record-retaining mode only).

        At flush boundaries this is exactly the disk-resident sample; in
        between, each buffered record's deferred disk eviction is
        applied so the returned list is a valid size-``min(N, seen)``
        sample at any instant.

        Args:
            k: optionally thin to a uniform ``k``-subset (the
                :class:`~repro.core.protocols.Reservoir` protocol
                form); ``None`` returns the full reservoir.
            rng: optional ``random.Random`` used for the deferred-
                eviction (and thinning) draw.  Queries that must not
                perturb the structure's own RNG stream (checkpoint
                replay continues bit-exactly only if ingestion alone
                consumes it -- the sharded service's recovery contract)
                pass a dedicated query RNG here.
        """
        self.flush_barrier()
        if not self.config.retain_records:
            raise TypeError("file is running in count-only mode")
        full = self._law.materialize(
            self, rng if rng is not None else self._rng)
        return self._thin_records(full, k, rng)

    def sample_batch(self, k: int | None = None, *, rng=None) -> RecordBatch:
        """The current reservoir as one :class:`RecordBatch` (columnar).

        Pure-array analogue of :meth:`sample`: ledger slabs are
        concatenated in one call, the deferred buffer evictions land as
        a single fancy-index overwrite, and no record objects exist
        anywhere.  Requires ``columnar=True``.

        Args:
            k: optionally thin to a uniform ``k``-subset.
            rng: optional ``numpy.random.Generator`` for the deferred-
                eviction and subset draws (queries that must not
                perturb the structure's own RNG stream pass one).
        """
        self.flush_barrier()
        if not self.columnar:
            if not self.config.retain_records:
                raise TypeError("file is running in count-only mode")
            return super().sample_batch(k, rng=rng)
        gen = rng if rng is not None else self._np_rng
        combined = self._law.materialize_batch(self, gen)
        return self._thin_batch(RecordBatch(self.schema, combined), k, rng)

    @property
    def columnar(self) -> bool:
        """True when the columnar record engine is active."""
        return self.config.columnar

    def check_invariants(self) -> None:
        """Assert every ledger's conservation law; used heavily by tests."""
        held: dict[int, list[int]] = {}
        for ledger in self.subsamples:
            ledger.check_invariant()
            level = ledger.current_level
            for slot in ledger.slots:
                held.setdefault(level, []).append(slot)
                level += 1
        self._layout.verify_slots(held)
        if not self.in_startup:
            if self.disk_size != self.capacity:
                raise AssertionError(
                    f"disk holds {self.disk_size} live records, "
                    f"expected {self.capacity}"
                )

    # -- StreamReservoir hooks ------------------------------------------------

    # The law owns placement (startup joins, Algorithm 2 replacement,
    # multiplicity fan-out, aux staging); these hooks only route.  The
    # uniform law's place* bodies are the pre-refactor code verbatim.

    def _admit(self, record: Record | None) -> None:
        self._law.place(self, record)

    def _admit_many(self, records: list[Record | None]) -> None:
        self._law.place_many(self, records)

    def _admit_batch(self, batch: RecordBatch) -> None:
        if not self.columnar:
            super()._admit_batch(batch)
            return
        self._law.place_batch(self, batch)

    def _admit_count(self, n: int) -> None:
        # Count-only fast path (uniform law only): the in-buffer
        # replacement branch (probability <= B/N per admission) is
        # folded into joins; this shifts flush cadence by under B/(2N)
        # and leaves every I/O pattern untouched.  The record-level
        # path models it exactly.
        self._law.place_count(self, n)

    # -- flush machinery -------------------------------------------------------

    def _startup_flush(self) -> None:
        """Write one initial subsample (Figure 3 a-c)."""
        level = self._startup_index
        records, weights, count = self.buffer.drain()
        aux = self.buffer.take_aux()
        sizes = list(self.ladder.segment_sizes[level:])
        while sizes and sum(sizes) > count:
            sizes.pop()
        tail = count - sum(sizes)
        ledger = self._new_ledger(sizes, level, tail, records)
        ledger.weights = weights
        ledger.aux = aux
        self.subsamples.insert(0, ledger)
        for offset in range(len(sizes)):
            ledger.push_slot(self._layout.take_slot(level + offset))
        # The whole initial subsample goes out as one contiguous write;
        # see FileLayout.append_startup.
        disk_records = count - tail
        data = None
        if self._store_bytes and disk_records > 0:
            data = records[:disk_records].to_bytes()
        plan = FlushPlan()
        self._layout.append_startup(plan, self._blocks_for(disk_records),
                                    data)
        # In-memory transition completes before the submit: if a
        # pipelined writer fault surfaces here, the ledger and index
        # are already consistent and clear_fault() resumes cleanly.
        self._startup_index += 1
        self._submit_plan(plan, count)
        self.flushes += 1
        self._emit("flush", index=self.flushes, records=count,
                   phase="startup", level=level)

    def _flush(self) -> None:
        """Steady-state flush: Algorithm 3 plus the Section 4.5 mechanics."""
        records, weights, count = self.buffer.drain()
        aux = self.buffer.take_aux()
        if self._law.uniform_victims:
            self._evict_victims(count)
            new_victims = None
        else:
            # The law names the dead by content (keys/positions); it
            # evicts from old ledgers itself and returns which of the
            # drained records die -- they are still written physically
            # (every segment holds its full quota) and booked as ghost
            # stack debt on the new ledger, exactly like a uniform
            # eviction outrunning the segment cascade.
            new_victims = self._law.plan_victims(self, records, aux, count)
        plan = FlushPlan()
        freed_slots = self._release_all_segments(plan)
        ledger = self._new_ledger(
            list(self.ladder.segment_sizes), 0, self.ladder.tail_size,
            records,
        )
        ledger.weights = weights
        ledger.aux = aux
        self.subsamples.insert(0, ledger)
        offset = 0
        for level, size in enumerate(self.ladder.segment_sizes):
            slot = freed_slots.get(level)
            if slot is None:
                slot = self._layout.take_slot(level)
            ledger.push_slot(slot)
            data = None
            if self._store_bytes:
                # Segment l physicalises the ledger's matching record
                # slice: one whole-segment encode, one device write.
                data = records[offset:offset + size].to_bytes()
            self._write_slot(level, slot, size, data, plan)
            offset += size
        if new_victims is not None and len(new_victims):
            ledger.evict_indices(new_victims)
        self._drop_dead_subsamples()
        self._submit_plan(plan, count)
        self.flushes += 1
        self._emit("flush", index=self.flushes, records=count,
                   phase="steady")

    def _new_ledger(self, sizes: list[int], first_level: int, tail: int,
                    records: list[Record] | None) -> SubsampleLedger:
        ledger = SubsampleLedger(
            self._next_ident, sizes, first_level, tail, records,
            stack_capacity=self.config.stack_records(),
        )
        ledger.stack_region = self._next_ident % self._layout.n_stack_regions
        self._next_ident += 1
        return ledger

    def _drop_dead_subsamples(self) -> None:
        """Drop fully-evicted ledgers, returning their slots to the pool.

        A subsample can reach ``live == 0`` while still holding disk
        segments (evictions are booked as ghost stack debt while the
        cascade runs, Section 4.5); its remaining slots then never pass
        through the flush hand-over, so they are reclaimed here.
        Without this, small-segment configurations exhaust a level's
        free list within a few dozen flushes.
        """
        survivors = []
        for ledger in self.subsamples:
            if not ledger.is_dead:
                survivors.append(ledger)
                continue
            level = ledger.current_level
            for slot in ledger.slots:
                self._layout.release_slot(level, slot)
                level += 1
        self.subsamples = survivors

    def _evict_victims(self, count: int) -> None:
        """Algorithm 3: distribute ``count`` evictions over subsamples.

        Sequential multivariate-hypergeometric draw: victim counts are
        exactly the counts of a uniform random ``count``-subset of the
        ``N`` live disk records.
        """
        lives = self._victim_scratch.view(len(self.subsamples))
        for i, ledger in enumerate(self.subsamples):
            lives[i] = ledger.live
        counts = draw_victim_counts_array(self._np_rng, lives, count)
        for ledger, k in zip(self.subsamples, counts.tolist()):
            if k:
                ledger.evict(k)

    def _release_all_segments(self, plan: FlushPlan) -> dict[int, int]:
        """Every disk-holding subsample surrenders its largest segment.

        Returns {level: freed slot index} for the new subsample to
        reuse, and records stack reconciliation I/O into ``plan``.
        """
        freed: dict[int, int] = {}
        for ledger in self.subsamples:
            if not ledger.has_disk_segments:
                continue
            level = ledger.current_level
            slot = ledger.pop_slot()
            ledger.release_segment()
            if slot is not None:
                freed[level] = slot
            self._reconcile_stack(ledger, plan)
            if not ledger.has_disk_segments:
                self._retire_stack(ledger, plan)
        return freed

    def _reconcile_stack(self, ledger: SubsampleLedger,
                         plan: FlushPlan) -> None:
        event = ledger.reconcile_stack()
        if ledger.overflowed:
            self.stack_overflows += 1
            ledger.overflowed = False
            self._emit("overflow", what="stack", subsample=ledger.ident)
        if not event.touched:
            return
        # One head movement to the subsample's stack region, then a
        # sequential write of whatever was pushed (a pop only rewinds
        # the stack pointer but still costs the bookkeeping write).
        blocks = max(1, self._blocks_for(event.pushed))
        self._layout.write_stack(plan, ledger.stack_region, blocks)

    def _retire_stack(self, ledger: SubsampleLedger,
                      plan: FlushPlan) -> None:
        """Fold a now-tail-only subsample's stack into memory.

        Frees the stack region for reuse by younger subsamples; costs
        one read of the folded records.
        """
        folded = ledger.fold_stack_into_tail()
        if folded > 0:
            self._layout.read_stack(plan, ledger.stack_region,
                                    self._blocks_for(folded))

    # -- I/O helpers -------------------------------------------------------------

    def _blocks_for(self, n_records: int) -> int:
        if n_records <= 0:
            return 0
        return -(-n_records // self._records_per_block)

    def _write_slot(self, level: int, slot: int, size: int,
                    data: bytes | None, plan: FlushPlan) -> None:
        """Record one segment write (sequential) plus modelled overhead."""
        self._layout.write_slot(
            plan, level, slot, self._segment_blocks[level], data,
            overhead=self.config.extra_seeks_per_segment,
        )
        self._emit("segment_overwrite", level=level, slot=slot,
                   records=size)


class FileLayout:
    """Block addresses for levels, slots, and stacks (Figure 2).

    Level ``l`` owns an extent of ``l + 2`` slots -- steady-state
    occupancy ``l + 1`` plus one slack slot that simplifies the
    start-up / steady-state hand-over -- or ``l + 3`` when the layout
    reserves a *dummy* slot per level (the Section 6 multi-file
    construction).  Stack regions follow.  Slot hand-over between
    subsamples is tracked with per-level free lists.
    """

    def __init__(self, device: BlockDevice, level_extents: list[Extent],
                 slot_records: list[int], record_size: int,
                 stack_extent: Extent, stack_blocks: int,
                 n_stack_regions: int, dummy: bool) -> None:
        self.device = device
        self.level_extents = level_extents
        self.slot_records = slot_records
        self.record_size = record_size
        self.stack_extent = stack_extent
        self.stack_blocks = stack_blocks
        self.n_stack_regions = n_stack_regions
        self.dummy = dummy
        self._free_slots: list[list[int]] = [
            list(range(self._slots_for_level(level, dummy)))
            for level in range(len(level_extents))
        ]

    @staticmethod
    def _slots_for_level(level: int, dummy: bool) -> int:
        return level + 2 + (1 if dummy else 0)

    @classmethod
    def _level_blocks(cls, level: int, segment_records: int,
                      record_size: int, block_size: int,
                      dummy: bool) -> int:
        """Blocks for one level region: slots packed at record
        granularity (the paper's segments are not block-aligned; the
        boundary read-modify-write is charged separately)."""
        slots = cls._slots_for_level(level, dummy)
        level_bytes = slots * segment_records * record_size
        return -(-level_bytes // block_size)

    @classmethod
    def blocks_needed(cls, block_size: int, ladder: SegmentLadder,
                      schema: RecordSchema, *, stack_records: int,
                      n_stack_regions: int, dummy: bool = False) -> int:
        total = 0
        for level, size in enumerate(ladder.segment_sizes):
            total += cls._level_blocks(level, size, schema.record_size,
                                       block_size, dummy)
        stack_blocks = schema.blocks_for_records(stack_records, block_size)
        total += stack_blocks * n_stack_regions
        return max(1, total)

    @classmethod
    def build(cls, device: BlockDevice, ladder: SegmentLadder,
              schema: RecordSchema, *, stack_records: int,
              n_stack_regions: int, first_block: int = 0,
              n_blocks: int | None = None,
              dummy: bool = False) -> "FileLayout":
        """Lay the file out over ``[first_block, first_block + n_blocks)``.

        ``n_blocks`` defaults to the rest of the device; the multi-file
        variant packs one layout per sub-file back to back.
        """
        if n_blocks is None:
            n_blocks = device.n_blocks - first_block
        needed = cls.blocks_needed(device.block_size, ladder, schema,
                                   stack_records=stack_records,
                                   n_stack_regions=n_stack_regions,
                                   dummy=dummy)
        if n_blocks < needed:
            raise ValueError(
                f"{n_blocks} blocks too small; layout needs {needed}"
            )
        if first_block + n_blocks > device.n_blocks:
            raise ValueError("layout range extends past the device")
        allocator = ExtentAllocator(n_blocks, first_block=first_block)
        level_extents: list[Extent] = []
        slot_records: list[int] = []
        for level, size in enumerate(ladder.segment_sizes):
            slot_records.append(size)
            level_extents.append(allocator.allocate(
                cls._level_blocks(level, size, schema.record_size,
                                  device.block_size, dummy),
                label=f"all segment {level}'s",
            ))
        stack_blocks = schema.blocks_for_records(stack_records,
                                                 device.block_size)
        stack_extent = allocator.allocate(
            stack_blocks * n_stack_regions, label="LIFO stacks",
        )
        allocator.verify_disjoint()
        return cls(device, level_extents, slot_records, schema.record_size,
                   stack_extent, stack_blocks, n_stack_regions, dummy)

    # -- start-up appends ------------------------------------------------------

    def append_startup(self, plan: FlushPlan, blocks: int,
                       data: bytes | None = None) -> None:
        """Record one initial subsample's contiguous write.

        Figure 2's "all segment l's together" picture is a *logical*
        map: a slot only needs to be contiguous in itself, because
        steady-state overwrites pay one head movement per slot wherever
        it lies.  The build therefore lays each initial subsample's
        slots adjacently in arrival order -- one seek plus a sequential
        transfer per start-up flush -- which is how "each of the five
        options writes the first 50 GB of data from the stream more or
        less directly to disk" (Section 8) holds for the geometric
        file even at alpha = 0.999.
        """
        if blocks <= 0:
            return
        start = getattr(self, "_startup_cursor",
                        self.level_extents[0].start
                        if self.level_extents else self.stack_extent.start)
        end = self.stack_extent.start
        blocks = min(blocks, max(1, end - start)) if end > start else blocks
        plan.write(start, blocks, data)
        # Cursor bookkeeping happens at plan-build time, on the ingest
        # thread -- the writer thread never touches layout state.
        self._startup_cursor = min(start + blocks,
                                   max(end - 1, start))

    # -- slot bookkeeping ---------------------------------------------------

    def take_slot(self, level: int) -> int:
        free = self._free_slots[level]
        if not free:
            raise AssertionError(f"level {level} has no free slots")
        return free.pop(0)

    def release_slot(self, level: int, slot: int) -> None:
        """Return a surrendered slot to the level's free list.

        Called when a fully-evicted subsample is dropped while still
        holding disk segments: eviction reached ``live == 0`` before
        the segment cascade finished, so the remaining slots never go
        through the flush hand-over and must rejoin the pool here or
        the level eventually runs dry.
        """
        free = self._free_slots[level]
        if slot in free:
            raise AssertionError(
                f"level {level} slot {slot} released twice")
        free.append(slot)

    def verify_slots(self, held: dict[int, list[int]]) -> None:
        """Assert per-level slot conservation.

        ``held`` maps level -> slot indices currently owned by live
        subsamples (and, in the multi-file construction, the dummy);
        together with the free list they must partition the level's
        slot range exactly -- no slot lost, none owned twice.
        """
        for level in range(len(self.level_extents)):
            combined = sorted(self._free_slots[level]
                              + held.get(level, []))
            expected = list(range(self._slots_for_level(level, self.dummy)))
            if combined != expected:
                raise AssertionError(
                    f"level {level} slot accounting broken: "
                    f"free={sorted(self._free_slots[level])} "
                    f"held={sorted(held.get(level, []))} "
                    f"expected {expected}")

    # -- charged I/O ----------------------------------------------------------

    def slot_address(self, level: int, slot: int) -> int:
        """First block the slot's bytes touch (slots are record-packed)."""
        byte_offset = slot * self.slot_records[level] * self.record_size
        return (self.level_extents[level].start
                + byte_offset // self.device.block_size)

    def stack_address(self, region: int) -> int:
        return self.stack_extent.start + region * self.stack_blocks

    def write_slot(self, plan: FlushPlan, level: int, slot: int,
                   blocks: int, data: bytes | None = None, *,
                   overhead: int = 0) -> None:
        """Record one slot overwrite; ``data`` carries real segment bytes.

        With ``data`` the transfer happens through
        :func:`~repro.storage.device.write_payload`, whose burst
        structure matches :func:`write_zeros` exactly -- the cost
        accounting is bit-identical either way (tested).  Cost-only
        call sites keep passing ``None``.  ``overhead`` models the
        per-segment boundary read-modify-write seeks; it is charged
        even when the write itself clamps to nothing, matching the
        legacy inline path.
        """
        if blocks <= 0:
            plan.seek(overhead)
            return
        address = self.slot_address(level, slot)
        # Clamp so an unaligned final slot never runs past its extent.
        blocks = min(blocks, self.level_extents[level].end - address)
        plan.write(address, blocks, data, overhead=overhead)

    def write_stack(self, plan: FlushPlan, region: int, blocks: int) -> None:
        blocks = min(blocks, max(1, self.stack_blocks))
        plan.write(self.stack_address(region), blocks)

    def read_stack(self, plan: FlushPlan, region: int, blocks: int) -> None:
        blocks = min(blocks, max(1, self.stack_blocks))
        plan.read(self.stack_address(region), blocks)

    def charge_seek(self) -> None:
        """Charge one isolated random head movement (modelled overhead)."""
        direct = getattr(self.device, "charge_seek", None)
        if direct is not None:
            direct()
            return
        model = getattr(self.device, "model", None)
        if model is not None:
            model.charge_seek()
