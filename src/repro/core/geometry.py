"""Geometric-series arithmetic for the geometric file.

This module is Sections 4.2 and 5 of the paper as code: the three
observations about geometric series, Lemma 1 (which ties the decay rate
``alpha`` to the reservoir-to-buffer ratio), and the integer segment
ladders the file layouts are built from.

Numbers cross-checked against the paper's own worked examples
(Section 5.1): with a buffer of 10^7 records, ``alpha = 0.99`` and
``beta = 320`` the ladder has 1029 on-disk segments; ``alpha = 0.999``
gives 10344; growing ``beta`` to 10^4 records shrinks it only to 687.
The benchmark ``benchmarks/test_section5_parameters.py`` regenerates all
three.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass


def geometric_sum(n: float, alpha: float, m: int) -> float:
    """Observation 1: ``sum_{i=0}^{m} n * alpha**i``.

    The amount of water removed from the bathtub after ``m + 1``
    scoops, in the paper's analogy.
    """
    _check_alpha(alpha)
    if m < 0:
        raise ValueError("m must be non-negative")
    return n * (1.0 - alpha ** (m + 1)) / (1.0 - alpha)


def geometric_total(n: float, alpha: float) -> float:
    """Observation 2: ``sum_{i=0}^{inf} n * alpha**i = n / (1 - alpha)``."""
    _check_alpha(alpha)
    return n / (1.0 - alpha)


def geometric_tail_start(n: float, alpha: float, beta: float) -> int:
    """Observation 3: the largest ``j`` whose tail still holds ``beta``.

    ``f(j) = sum_{i=j}^{inf} n * alpha**i = n * alpha**j / (1-alpha)``
    is the mass remaining after ``j`` removals.  The largest ``j`` with
    ``f(j) >= beta`` is ``floor(log(beta*(1-alpha)/n) / log(alpha))``;
    equivalently, with a subsample of initial size
    ``B = n / (1-alpha)``, the number of *on-disk* segments is
    ``ceil(log(beta/B) / log(alpha))`` -- the form Section 5.1's worked
    examples use, see :func:`segments_on_disk`.
    """
    _check_alpha(alpha)
    if n <= 0 or beta <= 0:
        raise ValueError("n and beta must be positive")
    total = geometric_total(n, alpha)
    if beta >= total:
        return 0
    return math.floor(math.log(beta * (1.0 - alpha) / n) / math.log(alpha))


def segments_on_disk(buffer_records: int, alpha: float,
                     beta_records: int) -> int:
    """On-disk segments per subsample (Section 5.1's segment count).

    A subsample of ``buffer_records`` records keeps a group of total
    size at least ``beta_records`` in memory; the rest is split into
    segments ``n, n*alpha, ...`` with ``n = buffer_records*(1-alpha)``.
    The mass remaining after ``j`` segments is
    ``buffer_records * alpha**j``; Observation 3 keeps segments on disk
    while that mass still exceeds ``beta``, i.e. the largest ``j`` with
    ``alpha**j >= beta/B``: ``floor(log(beta/B) / log(alpha))``.

    Reproduces the paper's 1029 / 10344 / 687 examples exactly.
    """
    if buffer_records < 1:
        raise ValueError("buffer must hold at least one record")
    _check_alpha(alpha)
    if beta_records < 1:
        raise ValueError("beta must be at least one record")
    if beta_records >= buffer_records:
        return 0
    ratio = beta_records / buffer_records
    j = math.floor(math.log(ratio) / math.log(alpha))
    return max(0, j)


def alpha_for(reservoir_records: int, buffer_records: int) -> float:
    """Lemma 1: the decay rate a single geometric file *must* use.

    "The size of a geometric file is |R|": the subsample sizes
    ``B, B*alpha, B*alpha**2, ...`` only sum to the reservoir size when
    ``B / (1 - alpha) = |R|``, i.e. ``alpha = 1 - B/|R|``.  Section 6's
    multi-file construction exists precisely to escape this constraint.
    """
    if buffer_records < 1:
        raise ValueError("buffer must hold at least one record")
    if reservoir_records <= buffer_records:
        raise ValueError(
            "reservoir must exceed the buffer (otherwise plain in-memory "
            "reservoir sampling applies)"
        )
    return 1.0 - buffer_records / reservoir_records


def file_count_for(alpha: float, alpha_prime: float) -> int:
    """Section 6: number of geometric files ``m = (1-alpha')/(1-alpha)``.

    ``alpha`` is the Lemma 1 rate fixed by ``|R|/B``; ``alpha_prime`` is
    the faster decay the user picks.  Rounded to the nearest integer,
    minimum one file.
    """
    _check_alpha(alpha)
    _check_alpha(alpha_prime)
    if alpha_prime > alpha:
        raise ValueError("alpha_prime must not exceed alpha")
    return max(1, round((1.0 - alpha_prime) / (1.0 - alpha)))


def effective_alpha(reservoir_records: int, buffer_records: int,
                    n_files: int) -> float:
    """The per-file decay rate implied by striping over ``n_files`` files.

    Inverse of :func:`file_count_for`:
    ``alpha' = 1 - m * (1 - alpha) = 1 - m * B / |R|``.
    """
    if n_files < 1:
        raise ValueError("need at least one file")
    alpha = alpha_for(reservoir_records, buffer_records)
    alpha_prime = 1.0 - n_files * (1.0 - alpha)
    if alpha_prime <= 0:
        raise ValueError(
            f"{n_files} files over-stripe this reservoir/buffer ratio "
            f"(alpha' would be {alpha_prime:.4f})"
        )
    return alpha_prime


@dataclass(frozen=True)
class SegmentLadder:
    """The integer partition of one subsample into segments plus tail.

    Attributes:
        alpha: decay rate used to size the rungs.
        segment_sizes: on-disk rung sizes in records, largest first
            (``~ n, n*alpha, n*alpha**2, ...``); rounding is cumulative
            so the sizes sum *exactly* to ``total - tail_size``.
        tail_size: records of the in-memory group (about ``beta``).
    """

    alpha: float
    segment_sizes: tuple[int, ...]
    tail_size: int

    @property
    def total(self) -> int:
        """Records in one freshly created subsample."""
        return sum(self.segment_sizes) + self.tail_size

    @property
    def n_disk_segments(self) -> int:
        return len(self.segment_sizes)

    def size_below(self, level: int) -> int:
        """Records a subsample retains once rungs ``0..level-1`` are gone."""
        if level < 0:
            raise ValueError("level must be non-negative")
        return sum(self.segment_sizes[level:]) + self.tail_size


@functools.lru_cache(maxsize=256)
def build_ladder(buffer_records: int, alpha: float,
                 beta_records: int) -> SegmentLadder:
    """Partition a subsample of ``buffer_records`` into a segment ladder.

    Rung ``i`` ideally holds ``n * alpha**i`` records with
    ``n = buffer_records * (1 - alpha)``; integer sizes come from
    rounding the *cumulative* series so no records are lost.  Rungs that
    round to zero are dropped (their mass lands in the tail), which only
    happens at toy scales.

    Memoized: the ladder is immutable and rebuilt with identical
    arguments by ``required_blocks``, every constructor, and every
    checkpoint restore -- at paper scale the cumulative-rounding loop
    runs ~10,000 iterations, so the cache removes it from every path
    but the first.

    Raises:
        ValueError: on non-positive sizes or alpha outside (0, 1).
    """
    j = segments_on_disk(buffer_records, alpha, beta_records)
    cumulative = 0
    sizes: list[int] = []
    for i in range(j):
        ideal_cumulative = buffer_records * (1.0 - alpha ** (i + 1))
        c = round(ideal_cumulative)
        size = c - cumulative
        if size <= 0:
            break
        sizes.append(size)
        cumulative = c
    tail = buffer_records - cumulative
    return SegmentLadder(alpha=alpha, segment_sizes=tuple(sizes),
                         tail_size=tail)


@functools.lru_cache(maxsize=256)
def startup_fill_sizes(reservoir_records: int, buffer_records: int,
                       alpha: float) -> tuple[int, ...]:
    """Figure 3's start-up schedule: how full the buffer gets per flush.

    The first initial subsample uses the whole buffer, the second
    ``alpha`` of it, the third ``alpha**2``, ... until the reservoir is
    full.  Integer sizes again come from cumulative rounding, so they
    sum to exactly ``reservoir_records``; the (tiny) final flush is
    clipped.  Memoized (and therefore returned as an immutable tuple):
    the schedule is recomputed with identical arguments on every
    construction and checkpoint restore.
    """
    if reservoir_records < buffer_records:
        raise ValueError("reservoir smaller than one buffer-full")
    _check_alpha(alpha)
    sizes: list[int] = []
    cumulative = 0
    k = 0
    while cumulative < reservoir_records:
        ideal_cumulative = buffer_records * (1.0 - alpha ** (k + 1)) / (1.0 - alpha)
        c = min(reservoir_records, round(ideal_cumulative))
        size = c - cumulative
        if size <= 0:
            # Rounding stalled (sub-record ideal fills); fall back to
            # one record per flush -- a fill can never exceed the
            # buffer, and the schedule must still reach the reservoir.
            size = 1
            c = cumulative + 1
        sizes.append(size)
        cumulative = c
        k += 1
    return tuple(sizes)


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1); got {alpha!r}")
