"""A managed, durable sample: structure + periodic checkpoints.

The paper's premise is a sample that outlives any single process -- the
durable synopsis of an unbounded stream.  :class:`ManagedSample` is the
deployment glue a downstream user actually wants: it owns a geometric
structure, checkpoints its logical state to a file every
``checkpoint_every`` flushes (atomically, via rename), and reopens from
the latest checkpoint on restart.

Durability semantics: a crash loses at most the records admitted since
the last checkpoint -- the stream positions covered by the restored
state resume exactly (bit-identical continuation is a tested property
of :mod:`repro.core.checkpoint`), so the reservoir remains a true
sample of the records it has *seen*; the gap is simply unseen stream,
the same as any downtime.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable

from ..sampling.weights import WeightFunction
from ..storage.device import BlockDevice
from ..storage.records import Record
from .biased_file import BiasedGeometricFile, BiasedMultipleGeometricFiles
from .checkpoint import load_geometric_file, save_geometric_file
from .geometric_file import GeometricFile, GeometricFileConfig
from .multi import MultiFileConfig, MultipleGeometricFiles

_KINDS = {
    "geometric": (GeometricFile, GeometricFileConfig),
    "multi": (MultipleGeometricFiles, MultiFileConfig),
    "biased": (BiasedGeometricFile, GeometricFileConfig),
    "biased-multi": (BiasedMultipleGeometricFiles, MultiFileConfig),
}


class ManagedSample:
    """A checkpointed sampling structure bound to a state file.

    Args:
        checkpoint_path: where the JSON state lives.  If the file
            exists, the structure is restored from it; otherwise a
            fresh one is created from ``config``.
        device_factory: builds the backing block device (called on both
            create and restore; the devices carry no authoritative
            state -- the checkpoint is the source of truth).
        config: structure sizing (must satisfy the chosen kind).  May
            be ``None`` when the checkpoint file already exists -- the
            restored structure carries its own config.
        kind: "geometric", "multi", "biased", or "biased-multi".
        weight_fn: required for the biased kinds.
        checkpoint_every: flushes between automatic checkpoints; 0
            disables automatic checkpointing (manual only).
        seed: seed for a freshly created structure (ignored on restore).
    """

    def __init__(
        self,
        checkpoint_path: str | os.PathLike[str],
        device_factory: Callable[[], BlockDevice],
        config: GeometricFileConfig | MultiFileConfig | None,
        *,
        kind: str = "geometric",
        weight_fn: WeightFunction | None = None,
        checkpoint_every: int = 100,
        seed: int | None = 0,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(
                f"unknown kind {kind!r}; expected one of {sorted(_KINDS)}"
            )
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if kind.startswith("biased") and weight_fn is None:
            raise ValueError(f"kind {kind!r} requires weight_fn")
        cls, config_cls = _KINDS[kind]
        if config is not None and not isinstance(config, config_cls):
            raise ValueError(
                f"kind {kind!r} needs a {config_cls.__name__}"
            )
        self.path = os.fspath(checkpoint_path)
        self.checkpoint_every = checkpoint_every
        self._weight_fn = weight_fn
        self.restored = os.path.exists(self.path)
        self.checkpoint_meta: dict | None = None
        if self.restored:
            with open(self.path, "r", encoding="ascii") as source:
                self.structure = load_geometric_file(
                    source, device_factory(), weight_fn=weight_fn
                )
            if not isinstance(self.structure, cls):
                raise ValueError(
                    f"checkpoint holds a {type(self.structure).__name__}, "
                    f"not the requested {cls.__name__}"
                )
            self.checkpoint_meta = self.structure.checkpoint_meta
        elif config is None:
            raise ValueError(
                f"no checkpoint at {self.path!r} and no config to "
                "create a fresh structure from"
            )
        elif kind.startswith("biased"):
            self.structure = cls(device_factory(), config, weight_fn,
                              seed=seed)
        elif weight_fn is not None:
            # Plain kinds take weight_fn as a keyword: it parameterises
            # the configured sampling law (config.law), not a biased
            # multiplier scheme.
            self.structure = cls(device_factory(), config, seed=seed,
                                 weight_fn=weight_fn)
        else:
            self.structure = cls(device_factory(), config, seed=seed)
        self._checkpointed_flushes = self.structure.flushes

    @classmethod
    def restore(
        cls,
        checkpoint_path: str | os.PathLike[str],
        device_factory: Callable[[], BlockDevice],
        *,
        kind: str = "geometric",
        weight_fn: WeightFunction | None = None,
        checkpoint_every: int = 100,
    ) -> "ManagedSample":
        """Reopen an existing checkpoint; fails if the file is absent.

        Unlike the constructor's restore-or-create behaviour, this is
        for callers (e.g. shard recovery in :mod:`repro.service`) for
        whom a missing checkpoint is an error, not a reason to start an
        empty reservoir.  ``checkpoint_meta`` carries whatever mapping
        the saving side passed to :meth:`checkpoint`.
        """
        path = os.fspath(checkpoint_path)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"no checkpoint to restore at {path!r}"
            )
        return cls(path, device_factory, None, kind=kind,
                   weight_fn=weight_fn, checkpoint_every=checkpoint_every)

    # -- stream interface ---------------------------------------------------

    def offer(self, record: Record) -> None:
        """Present one stream record; checkpoints on schedule."""
        self.structure.offer(record)
        self._maybe_checkpoint()

    def offer_many(self, records) -> int:
        """Present a batch of records; checkpoints on schedule."""
        admitted = self.structure.offer_many(records)
        self._maybe_checkpoint()
        return admitted

    def offer_batch(self, batch) -> int:
        """Present a batch (``RecordBatch`` or sequence of records).

        Explicit (rather than ``__getattr__``-delegated) so the
        checkpoint schedule sees columnar ingestion too.
        """
        admitted = self.structure.offer_batch(batch)
        self._maybe_checkpoint()
        return admitted

    def ingest(self, n: int) -> None:
        """Count-only ingestion (unbiased kinds only)."""
        self.structure.ingest(n)
        self._maybe_checkpoint()

    # -- queries ------------------------------------------------------------

    def sample(self, k: int | None = None, *, rng=None):
        """The wrapped structure's current sample (protocol form).

        Before the serving-layer API unification ``managed.sample``
        was the wrapped structure itself; it is now :attr:`structure`,
        and ``sample()`` is the query every
        :class:`~repro.core.protocols.Reservoir` answers.
        """
        return self.structure.sample(k, rng=rng)

    def snapshot(self, k: int | None = None, *, rng=None):
        """(:meth:`sample` result, stream position) in one call."""
        return self.structure.snapshot(k, rng=rng)

    # -- durability -----------------------------------------------------------

    @property
    def flushes_since_checkpoint(self) -> int:
        return self.structure.flushes - self._checkpointed_flushes

    def checkpoint(self, *, meta: dict | None = None) -> None:
        """Write the current state atomically (write + rename).

        Args:
            meta: optional caller metadata embedded in the checkpoint
                file itself (see :func:`repro.core.checkpoint.
                save_geometric_file`); it rides the same atomic rename
                as the state, so a reader never sees state from one
                checkpoint with metadata from another.
        """
        # Checkpoint barrier: with the pipelined engine, wait for every
        # queued flush to reach the device before snapshotting, so the
        # checkpoint never describes I/O the device has not absorbed
        # (and a parked writer fault surfaces here, not mid-save).
        self.structure.flush_barrier()
        directory = os.path.dirname(self.path) or "."
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="ascii") as sink:
                save_geometric_file(self.structure, sink, meta=meta)
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self.checkpoint_meta = meta
        self._checkpointed_flushes = self.structure.flushes
        self.structure._emit("checkpoint", path=self.path,
                          flushes=self.structure.flushes)

    def _maybe_checkpoint(self) -> None:
        if (self.checkpoint_every
                and self.flushes_since_checkpoint >= self.checkpoint_every):
            self.checkpoint()

    def close(self) -> None:
        """Checkpoint, then close the wrapped structure.

        The managed wrapper's whole promise is durability, so its
        ``close()`` is a graceful drain: the state that existed at the
        call is on disk before any resource is released.  Callers who
        explicitly do not want a goodbye checkpoint can close the
        wrapped structure directly (``managed.structure.close()``).
        """
        self.checkpoint(meta=self.checkpoint_meta)
        self.structure.close()

    # -- observability -----------------------------------------------------------

    def stats(self):
        """The underlying structure's :class:`~repro.obs.ReservoirStats`."""
        return self.structure.stats()

    def instrument(self, registry, trace=None, *, name=None) -> None:
        """Instrument the underlying structure; see
        :meth:`repro.reservoir.StreamReservoir.instrument`."""
        self.structure.instrument(registry, trace, name=name)

    # -- conveniences -----------------------------------------------------------

    def __getattr__(self, name: str):
        # Delegate observers (sample_batch(), disk_size, items(), ...)
        # to the underlying structure.  "structure" itself must not
        # recurse: when __init__ has not yet bound it, Python falls
        # back here.
        if name == "structure":
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute "
                "'structure' (not yet initialised)"
            )
        try:
            return getattr(self.structure, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r} "
                f"(also absent on the wrapped "
                f"{type(self.structure).__name__!r})"
            ) from None
