"""Multiple geometric files (paper Section 6).

Lemma 1 chains a single geometric file's decay rate to
``alpha = 1 - B/N``; for a terabyte reservoir and a gigabyte buffer
that is 0.999, which means ~10,000 segments -- and seeks -- per flush.
Section 6's escape: pick a *smaller* ``alpha' < alpha`` and stripe
``m = (1-alpha')/(1-alpha)`` geometric files, each with the coarser
``alpha'`` segment ladder ("consolidated segments").  A new subsample
is written, round-robin, entirely into *one* file per flush, so the
per-flush seek bill shrinks by roughly a factor of ``m``.

The timing wrinkle the paper's *dummy* solves: a subsample's records
are logically evicted at *every* flush (its share of Algorithm 3's
victims), but it physically surrenders a consolidated segment only when
its own file's turn comes -- once every ``m`` flushes -- and that
segment is ``m`` flushes' worth of decay at once.  Each file therefore
pre-allocates one complete subsample's worth of empty slots (the
dummy): the incoming subsample lands in the dummy's slots, and each
existing subsample then donates its largest segment to *reconstitute*
the dummy, protecting the donated data until the file's next turn.
Stack adjustments for subsamples in the other ``m - 1`` files are
deferred until their file is processed ("they can be updated lazily",
Section 6), which the ledgers' reconciliation API models directly.

Extra storage: one dummy subsample (``B`` records) per file, i.e.
``m * B = (1 - alpha') * N`` overall -- the paper's "1 TB reservoir
... alpha' = 0.9 by using only 1.1 TB of disk storage in total".

Sampling correctness is untouched: Algorithm 3's victim draw still
spans every subsample in every file, so the reservoir remains an exact
uniform sample; only the physical layout changed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline import FlushEngine, FlushPlan
from ..reservoir import (
    StreamReservoir,
    VictimScratch,
    draw_victim_counts_array,
)
from ..sampling.laws import make_law
from ..storage.device import (
    BlockDevice,
    SimulatedBlockDevice,
    device_stores_bytes,
)
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema
from .buffer import SampleBuffer
from .geometric_file import FileLayout, GeometricFileConfig
from .geometry import alpha_for, build_ladder, file_count_for, startup_fill_sizes
from .subsample import SubsampleLedger


@dataclass(frozen=True)
class MultiFileConfig(GeometricFileConfig):
    """Sizing for the multi-file variant.

    Adds ``alpha_prime``, the user-chosen per-file decay rate
    (Section 6; the paper's benchmarks use 0.9).  Everything else is
    inherited from :class:`GeometricFileConfig`.
    """

    alpha_prime: float = 0.9

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.alpha_prime < 1.0:
            raise ValueError("alpha_prime must be in (0, 1)")


class _SubFile:
    """One of the ``m`` striped geometric files: layout plus its ledgers."""

    def __init__(self, index: int, layout: FileLayout,
                 n_levels: int) -> None:
        self.index = index
        self.layout = layout
        self.subsamples: list[SubsampleLedger] = []
        # The dummy's slot at each ladder level; reserved up front.
        self.dummy_slots: list[int] = [
            layout.take_slot(level) for level in range(n_levels)
        ]


class MultipleGeometricFiles(StreamReservoir):
    """``m`` round-robin geometric files sharing one reservoir.

    Args:
        device: backing store (one simulated spindle holds all files;
            their extents are laid out back to back).
        config: sizing; ``m`` derives from ``alpha`` (Lemma 1) and
            ``config.alpha_prime`` via ``m = (1-alpha')/(1-alpha)``.
        seed: RNG seed.
    """

    name = "multiple geo files"

    def __init__(self, device: BlockDevice, config: MultiFileConfig,
                 *, seed: int | None = 0, weight_fn=None) -> None:
        law = make_law(config.law, config.law_params, weight_fn=weight_fn)
        law.validate_config(config)
        super().__init__(config.capacity, admission=config.admission,
                         seed=seed, law=law)
        self.device = device
        self.config = config
        self.schema = RecordSchema(config.record_size)
        self.alpha = alpha_for(config.capacity, config.buffer_capacity)
        self.n_files = file_count_for(self.alpha, config.alpha_prime)
        #: The decay rate actually realised by the integer file count.
        self.alpha_prime = 1.0 - self.n_files * (1.0 - self.alpha)
        self.beta = config.resolve_beta(device.block_size)
        self.ladder = build_ladder(config.buffer_capacity, self.alpha_prime,
                                   self.beta)
        self._records_per_block = self.schema.records_per_block(
            device.block_size
        )
        self.files = self._build_files(device)
        self._engine = FlushEngine.for_config(device, config)
        # Per-level block counts, precomputed once (see GeometricFile).
        self._segment_blocks = [self._blocks_for(size)
                                for size in self.ladder.segment_sizes]
        self.buffer = SampleBuffer(config.buffer_capacity, self._rng,
                                   retain_records=config.retain_records,
                                   np_rng=self._np_rng,
                                   schema=(self.schema if config.columnar
                                           else None),
                                   aux_width=law.aux_width)
        self._store_bytes = (config.columnar
                             and device_stores_bytes(device))
        self._victim_scratch = VictimScratch()
        self._startup_sizes = startup_fill_sizes(
            config.capacity, config.buffer_capacity, self.alpha
        )
        self._startup_index = 0
        self._next_ident = 0
        self.flushes = 0
        self.stack_overflows = 0
        self.chunk_floor = config.buffer_capacity

    def _build_files(self, device: BlockDevice) -> list[_SubFile]:
        per_file = FileLayout.blocks_needed(
            device.block_size, self.ladder, self.schema,
            stack_records=self.config.stack_records(),
            n_stack_regions=self.ladder.n_disk_segments + 2,
            dummy=True,
        )
        if device.n_blocks < per_file * self.n_files:
            raise ValueError(
                f"device of {device.n_blocks} blocks too small; need "
                f"{per_file * self.n_files} for {self.n_files} files"
            )
        files = []
        for f in range(self.n_files):
            layout = FileLayout.build(
                device, self.ladder, self.schema,
                stack_records=self.config.stack_records(),
                n_stack_regions=self.ladder.n_disk_segments + 2,
                first_block=f * per_file,
                n_blocks=per_file,
                dummy=True,
            )
            files.append(_SubFile(f, layout, self.ladder.n_disk_segments))
        return files

    # -- observers ----------------------------------------------------------

    @classmethod
    def required_blocks(cls, config: MultiFileConfig,
                        block_size: int) -> int:
        """Device size needed for this configuration."""
        alpha = alpha_for(config.capacity, config.buffer_capacity)
        n_files = file_count_for(alpha, config.alpha_prime)
        alpha_prime = 1.0 - n_files * (1.0 - alpha)
        beta = config.resolve_beta(block_size)
        ladder = build_ladder(config.buffer_capacity, alpha_prime, beta)
        schema = RecordSchema(config.record_size)
        per_file = FileLayout.blocks_needed(
            block_size, ladder, schema,
            stack_records=config.stack_records(),
            n_stack_regions=ladder.n_disk_segments + 2,
            dummy=True,
        )
        return per_file * n_files

    def _clock(self) -> float:
        # Duck-typed: any cost-modelled device (simulated, striped)
        # exposes a simulated clock; byte-only backends do not.
        return getattr(self.device, "clock", 0.0)

    def _stats_extra(self) -> dict:
        extra = {
            "alpha": self.alpha,
            "alpha_prime": self.alpha_prime,
            "n_files": self.n_files,
            "n_subsamples": self.n_subsamples,
            "stack_overflows": self.stack_overflows,
        }
        if not self._law.is_uniform:
            extra["law"] = {"name": self._law.name,
                            **self._law.stats_extra()}
        return extra

    @property
    def in_startup(self) -> bool:
        return self._startup_index < len(self._startup_sizes)

    @property
    def disk_size(self) -> int:
        return sum(ledger.live
                   for file in self.files
                   for ledger in file.subsamples)

    @property
    def n_subsamples(self) -> int:
        return sum(len(file.subsamples) for file in self.files)

    def _all_ledgers(self):
        for file in self.files:
            yield from file.subsamples

    def iter_ledgers(self):
        """All live ledgers across files, materialisation order (law
        hook)."""
        return self._all_ledgers()

    def sample(self, k: int | None = None, *, rng=None) -> list[Record]:
        """Current reservoir contents; see
        :meth:`~repro.core.geometric_file.GeometricFile.sample`."""
        self.flush_barrier()
        if not self.config.retain_records:
            raise TypeError("files are running in count-only mode")
        full = self._law.materialize(
            self, rng if rng is not None else self._rng)
        return self._thin_records(full, k, rng)

    def sample_batch(self, k: int | None = None, *, rng=None) -> RecordBatch:
        """Current reservoir as one :class:`RecordBatch`; see
        :meth:`~repro.core.geometric_file.GeometricFile.sample_batch`."""
        self.flush_barrier()
        if not self.columnar:
            if not self.config.retain_records:
                raise TypeError("files are running in count-only mode")
            return super().sample_batch(k, rng=rng)
        gen = rng if rng is not None else self._np_rng
        combined = self._law.materialize_batch(self, gen)
        return self._thin_batch(RecordBatch(self.schema, combined), k, rng)

    @property
    def columnar(self) -> bool:
        """True when the columnar record engine is active."""
        return self.config.columnar

    def check_invariants(self) -> None:
        """Assert every ledger's conservation law and the global size."""
        for file in self.files:
            held: dict[int, list[int]] = {}
            for level, slot in enumerate(file.dummy_slots):
                held.setdefault(level, []).append(slot)
            for ledger in file.subsamples:
                ledger.check_invariant()
                level = ledger.current_level
                for slot in ledger.slots:
                    held.setdefault(level, []).append(slot)
                    level += 1
            file.layout.verify_slots(held)
        if not self.in_startup and self.disk_size != self.capacity:
            raise AssertionError(
                f"disk holds {self.disk_size}, expected {self.capacity}"
            )

    # -- StreamReservoir hooks ------------------------------------------------

    # Placement routes through the law (see GeometricFile): the
    # multi-file's admit/flush boundaries are shape-identical to the
    # single file's, so the same law place* bodies drive both.

    def _admit(self, record: Record | None) -> None:
        self._law.place(self, record)

    def _admit_many(self, records: list[Record | None]) -> None:
        self._law.place_many(self, records)

    def _admit_batch(self, batch: RecordBatch) -> None:
        if not self.columnar:
            super()._admit_batch(batch)
            return
        self._law.place_batch(self, batch)

    def _admit_count(self, n: int) -> None:
        # Same count-only simplification as the single file: in-buffer
        # replacements are folded into joins (see GeometricFile).
        self._law.place_count(self, n)

    # -- flush machinery --------------------------------------------------------

    def _startup_flush(self) -> None:
        """Initial fill, striped round-robin (Figure 3 adapted to m files)."""
        c = self._startup_index
        file = self.files[c % self.n_files]
        level = c // self.n_files
        records, weights, count = self.buffer.drain()
        aux = self.buffer.take_aux()
        sizes = list(self.ladder.segment_sizes[level:])
        while sizes and sum(sizes) > count:
            sizes.pop()
        tail = count - sum(sizes)
        ledger = self._new_ledger(sizes, level, tail, records)
        ledger.weights = weights
        ledger.aux = aux
        file.subsamples.insert(0, ledger)
        for offset in range(len(sizes)):
            ledger.push_slot(file.layout.take_slot(level + offset))
        # One contiguous write per initial subsample (see
        # FileLayout.append_startup).
        disk_records = count - tail
        data = None
        if self._store_bytes and disk_records > 0:
            data = records[:disk_records].to_bytes()
        plan = FlushPlan()
        file.layout.append_startup(plan, self._blocks_for(disk_records),
                                   data)
        # In-memory transition completes before the submit: if a
        # pipelined writer fault surfaces here, the ledger and index
        # are already consistent and clear_fault() resumes cleanly.
        self._startup_index += 1
        self._submit_plan(plan, count)
        self.flushes += 1
        self._emit("flush", index=self.flushes, records=count,
                   phase="startup", file=file.index, level=level)

    def _flush(self) -> None:
        """Steady-state flush into the round-robin target file."""
        records, weights, count = self.buffer.drain()
        aux = self.buffer.take_aux()
        if self._law.uniform_victims:
            self._evict_victims(count)
            new_victims = None
        else:
            # Content-chosen victims (see GeometricFile._flush): old
            # ledgers are culled here, the drained victims after the
            # segment writes below.
            new_victims = self._law.plan_victims(self, records, aux, count)
        file = self.files[self.flushes % self.n_files]
        # New subsample lands in the dummy's slots (Figure 6 b).
        ledger = self._new_ledger(
            list(self.ladder.segment_sizes), 0, self.ladder.tail_size,
            records,
        )
        ledger.weights = weights
        ledger.aux = aux
        file.subsamples.insert(0, ledger)
        plan = FlushPlan()
        offset = 0
        for level, size in enumerate(self.ladder.segment_sizes):
            slot = file.dummy_slots[level]
            ledger.push_slot(slot)
            data = None
            if self._store_bytes:
                data = records[offset:offset + size].to_bytes()
            self._write_slot(file, level, slot, size, data, plan)
            offset += size
        # Existing subsamples donate their largest segment back to the
        # dummy (Figure 6 c) and settle their stacks, lazily accumulated
        # over the last m flushes.
        new_dummy: dict[int, int] = {}
        for sub in file.subsamples:
            if sub is ledger or not sub.has_disk_segments:
                continue
            level = sub.current_level
            slot = sub.pop_slot()
            sub.release_segment()
            if slot is not None:
                new_dummy[level] = slot
            self._reconcile_stack(file, sub, plan)
            if not sub.has_disk_segments:
                self._retire_stack(file, sub, plan)
        file.dummy_slots = [
            new_dummy[level] if level in new_dummy
            else file.layout.take_slot(level)
            for level in range(self.ladder.n_disk_segments)
        ]
        if new_victims is not None and len(new_victims):
            ledger.evict_indices(new_victims)
        # Dead (fully-decayed) subsamples in the written file are
        # dropped now; ones in other files wait for their file's turn
        # -- a zero-live ledger draws zero victims, so keeping it an
        # extra rotation is free and avoids an all-files sweep per
        # flush.  Both updates land before the submit so a pipelined
        # writer fault cannot leave the file mid-rotation.  A dead
        # ledger can still hold disk segments (eviction outran the
        # cascade); its slots must rejoin the file's free lists.
        survivors = []
        for s in file.subsamples:
            if not s.is_dead:
                survivors.append(s)
                continue
            slot_level = s.current_level
            for freed_slot in s.slots:
                file.layout.release_slot(slot_level, freed_slot)
                slot_level += 1
        file.subsamples = survivors
        self._submit_plan(plan, count)
        self._emit("dummy_rotation", file=file.index,
                   donated=len(new_dummy),
                   levels=self.ladder.n_disk_segments)
        self.flushes += 1
        self._emit("flush", index=self.flushes, records=count,
                   phase="steady", file=file.index)

    def _new_ledger(self, sizes: list[int], first_level: int, tail: int,
                    records: list[Record] | None) -> SubsampleLedger:
        ledger = SubsampleLedger(
            self._next_ident, sizes, first_level, tail, records,
            stack_capacity=self.config.stack_records(),
        )
        n_regions = self.ladder.n_disk_segments + 2
        ledger.stack_region = (self._next_ident // self.n_files) % n_regions
        self._next_ident += 1
        return ledger

    def _evict_victims(self, count: int) -> None:
        """Algorithm 3 across every subsample of every file."""
        ledgers = list(self._all_ledgers())
        lives = self._victim_scratch.view(len(ledgers))
        for i, ledger in enumerate(ledgers):
            lives[i] = ledger.live
        counts = draw_victim_counts_array(self._np_rng, lives, count)
        for ledger, k in zip(ledgers, counts.tolist()):
            if k:
                ledger.evict(k)

    def _reconcile_stack(self, file: _SubFile, ledger: SubsampleLedger,
                         plan: FlushPlan) -> None:
        event = ledger.reconcile_stack()
        if ledger.overflowed:
            self.stack_overflows += 1
            ledger.overflowed = False
            self._emit("overflow", what="stack", file=file.index,
                       subsample=ledger.ident)
        if not event.touched:
            return
        blocks = max(1, self._blocks_for(event.pushed))
        file.layout.write_stack(plan, ledger.stack_region, blocks)

    def _retire_stack(self, file: _SubFile, ledger: SubsampleLedger,
                      plan: FlushPlan) -> None:
        folded = ledger.fold_stack_into_tail()
        if folded > 0:
            file.layout.read_stack(plan, ledger.stack_region,
                                   self._blocks_for(folded))

    def _blocks_for(self, n_records: int) -> int:
        if n_records <= 0:
            return 0
        return -(-n_records // self._records_per_block)

    def _write_slot(self, file: _SubFile, level: int, slot: int,
                    size: int, data: bytes | None,
                    plan: FlushPlan) -> None:
        file.layout.write_slot(
            plan, level, slot, self._segment_blocks[level], data,
            overhead=self.config.extra_seeks_per_segment,
        )
        self._emit("segment_overwrite", file=file.index, level=level,
                   slot=slot, records=size)
