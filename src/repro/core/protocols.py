"""The unified ``Reservoir`` protocol.

Every way of holding a very large online sample in this repository --
a single :class:`~repro.core.geometric_file.GeometricFile` on one
device, the checkpointed :class:`~repro.core.managed.ManagedSample`
wrapper, the multi-process :class:`~repro.service.ShardedReservoir`,
and a :class:`~repro.serve.ServeClient` talking to a remote server --
answers the same eight questions: feed it records, draw a uniform
sample, read its counters, make it durable, shut it down.
:class:`Reservoir` pins that surface down as one
:class:`typing.Protocol`, so harnesses, benchmarks, and applications
can be written once against the protocol and pointed at any
implementation, local or served.

The protocol is ``runtime_checkable``: ``isinstance(obj, Reservoir)``
verifies *presence* of the methods (Python checks names, not
signatures); the signature and semantic contract below is enforced by
``tests/test_protocols.py`` conformance tests instead.

Method contract (normative; see docs/API.md for the narrative form):

``offer(record)``
    Present one stream record.
``offer_batch(records) -> int``
    Present a batch -- either a
    :class:`~repro.storage.recordbatch.RecordBatch` or any sequence of
    :class:`~repro.storage.records.Record` -- and return how many were
    admitted (always ``len(records)`` under ``admission="always"``).
    This is the canonical batch verb; ``offer_many`` survives on
    :class:`~repro.reservoir.StreamReservoir` as the documented
    list-only fast path, and as a deprecated alias elsewhere.
``sample(k=None) -> list[Record]``
    A uniform random sample of the stream seen so far: the full
    reservoir when ``k`` is ``None``, else a uniform ``k``-subset.
``sample_batch(k=None) -> RecordBatch``
    The columnar twin of ``sample``.
``snapshot(k=None) -> (list[Record], int)``
    ``sample(k)`` plus the stream position it covers -- the population
    count AQP estimators scale by.
``stats() -> ReservoirStats``
    A frozen progress/cost snapshot.
``checkpoint()``
    Make the current state durable: flush barriers for purely
    device-backed structures, a state-file write for checkpointed
    ones, a full shard checkpoint for the service.  On return, the
    work admitted before the call has reached its backing store.
``close()``
    Release resources (drain writers, stop workers, close sockets).
    Implementations tolerate repeated calls.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Reservoir(Protocol):
    """Structural protocol every reservoir front-end implements.

    See the module docstring for the normative method contract; this
    class only declares the shape.  ``isinstance`` checks verify
    method presence (the :func:`typing.runtime_checkable` rule);
    ``tests/test_protocols.py`` exercises the semantics against every
    implementation.
    """

    def offer(self, record) -> None:
        """Present one stream record."""
        ...

    def offer_batch(self, records) -> int:
        """Present a batch of records (``RecordBatch`` or sequence);
        return the number admitted."""
        ...

    def sample(self, k=None):
        """A uniform random sample; the full reservoir when ``k`` is
        ``None``, else a uniform ``k``-subset."""
        ...

    def sample_batch(self, k=None):
        """The current sample as a columnar ``RecordBatch``."""
        ...

    def snapshot(self, k=None):
        """``(sample(k), stream position)`` as one consistent pair."""
        ...

    def stats(self):
        """A frozen ``ReservoirStats`` progress/cost snapshot."""
        ...

    def checkpoint(self) -> None:
        """Make the current state durable before returning."""
        ...

    def close(self) -> None:
        """Release resources; safe to call more than once."""
        ...
