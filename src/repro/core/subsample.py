"""Per-subsample bookkeeping.

A *subsample* is the set of records that entered the reservoir in one
emptying of the buffer (Section 4.1).  Physically it owns a rung of
slots in the file layout (one slot per segment level it still holds), a
pre-allocated LIFO stack region, and an in-memory tail group of about
``beta`` records.  Logically it is just a bag of live records that
shrinks as later flushes evict from it.

The ledger reconciles the two views.  Each flush evicts some random
number ``k`` of the subsample's records (the multivariate-hypergeometric
draw of Algorithm 3); physically the subsample gives up *exactly its
largest remaining segment* when its file is written (Section 4.3).  The
signed difference flows through the LIFO stack:

* balance rises -- Case 1 of Section 4.5: the subsample lost fewer
  records than its released segment held, so the surplus records are
  *pushed* to its stack;
* balance falls -- Case 2: more records lost than the segment held, so
  records are *popped* from the stack.

The paper sizes stacks at ``3 * sqrt(B)`` records so that overflow is a
~1e-9 event (Section 4.5.1).  At unit-test scale deviations are routine,
so the balance is *signed*: a negative balance is "ghost debt" --
records physically still inside not-yet-released segments but logically
evicted, repaid when those segments are released.  This keeps the
logical sample exact at any scale while preserving the paper's I/O
pattern; see DESIGN.md (design decision 2).

Implementation note: segments and slots are consumed front-to-back via
head indices rather than ``list.pop(0)`` -- at high reservoir-to-buffer
ratios a subsample can hold tens of thousands of segments, and the
per-flush release loop must stay O(1) per subsample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..storage.records import Record

if TYPE_CHECKING:
    from ..storage.recordbatch import RecordBatch


@dataclass
class StackEvent:
    """Net stack traffic since the previous reconciliation."""

    pushed: int = 0
    popped: int = 0

    @property
    def touched(self) -> bool:
        return self.pushed > 0 or self.popped > 0


class SubsampleLedger:
    """Logical and physical state of one subsample.

    Args:
        ident: creation index of the subsample (0 = first ever flushed).
        segment_sizes: physical slot sizes this subsample starts with,
            largest (level ``first_level``) first.
        first_level: ladder level of the first entry of
            ``segment_sizes`` (initial subsamples created during
            start-up begin part-way down the ladder, Figure 3 b-c).
        tail_size: records of the in-memory group.
        records: the actual live records, when the caller retains them
            (tests, small runs); ``None`` for count-only operation.
            Either a plain list or, under the columnar engine, a
            :class:`~repro.storage.recordbatch.RecordBatch` -- the
            ledger only ever measures (``len``), truncates (tail
            ``del``), and iterates, which both containers support.
            When given, the container must already be in uniform random
            order -- evictions pop from the end, which is a uniform
            choice for an exchangeable (pre-shuffled) sequence.
        stack_capacity: physical stack region size in records
            (``3 * sqrt(B)`` in the paper); exceeding it sets
            :attr:`overflowed` rather than failing, because the paper's
            response to overflow (an online reorganisation) is exactly
            what the sizing rule exists to avoid, and the benchmarks
            measure how often it would have been needed.

    Invariant (checked by :meth:`check_invariant`):
        ``live == physical_disk_records + tail_size + stack_balance``.
    """

    def __init__(self, ident: int, segment_sizes: Iterable[int],
                 first_level: int, tail_size: int,
                 records: "list[Record] | RecordBatch | None" = None,
                 stack_capacity: int | None = None) -> None:
        self.ident = ident
        self._sizes = list(segment_sizes)
        self._head = 0
        self.first_level = first_level
        self.tail_size = tail_size
        if any(s <= 0 for s in self._sizes):
            raise ValueError("segment sizes must be positive")
        if tail_size < 0:
            raise ValueError("tail size must be non-negative")
        self._physical = sum(self._sizes)
        self.live = self._physical + tail_size
        self.records = records
        if records is not None and len(records) != self.live:
            raise ValueError(
                f"got {len(records)} records for a subsample of {self.live}"
            )
        #: Effective weights parallel to ``records`` (biased sampling,
        #: Section 7.3.1); trimmed in lock-step by :meth:`evict`.
        self.weights: list[float] | None = None
        #: Auxiliary float64 rows parallel to ``records`` (non-uniform
        #: sampling laws: keys, stream positions); trimmed in lock-step
        #: by :meth:`evict` / :meth:`evict_indices`.
        self.aux = None
        #: Signed: records in the stack region (+) or ghost debt (-).
        self.stack_balance = 0
        self._slots: list[int] = []
        self._slots_head = 0
        #: Index of the pre-allocated stack region assigned to this
        #: subsample (set by the owning file).
        self.stack_region = 0
        self.stack_capacity = stack_capacity
        self.overflowed = False
        self.max_stack_balance = 0
        self._reconciled_balance = 0

    # -- observers --------------------------------------------------------

    @property
    def segment_sizes(self) -> list[int]:
        """Remaining segment sizes, largest first (a copy; cold paths
        only -- hot paths use the O(1) accessors below)."""
        return self._sizes[self._head:]

    @property
    def n_disk_segments(self) -> int:
        return len(self._sizes) - self._head

    @property
    def has_disk_segments(self) -> bool:
        return self._head < len(self._sizes)

    @property
    def largest_segment(self) -> int:
        """Size of the next segment to be surrendered (0 if none left)."""
        if self._head < len(self._sizes):
            return self._sizes[self._head]
        return 0

    @property
    def current_level(self) -> int:
        """Ladder level of the largest remaining segment."""
        return self.first_level

    @property
    def physical_disk_records(self) -> int:
        """Records accounted to disk slots (before stack adjustment)."""
        return self._physical

    @property
    def is_dead(self) -> bool:
        return self.live == 0

    @property
    def slots(self) -> list[int]:
        """Remaining physical slot indices, parallel to segment_sizes."""
        return self._slots[self._slots_head:]

    def check_invariant(self) -> None:
        """Assert the ledger's conservation law holds."""
        expected = (self._physical + self.tail_size + self.stack_balance)
        if self.live != expected:
            raise AssertionError(
                f"subsample {self.ident}: live={self.live} but "
                f"slots+tail+stack={expected}"
            )
        if self._physical != sum(self._sizes[self._head:]):
            raise AssertionError(
                f"subsample {self.ident}: physical counter out of sync"
            )
        if self.records is not None and len(self.records) != self.live:
            raise AssertionError(
                f"subsample {self.ident}: {len(self.records)} records "
                f"for live={self.live}"
            )
        if self.aux is not None and len(self.aux) != self.live:
            raise AssertionError(
                f"subsample {self.ident}: {len(self.aux)} aux rows "
                f"for live={self.live}"
            )

    # -- slot bookkeeping ---------------------------------------------------

    def push_slot(self, slot: int) -> None:
        """Record the physical slot index for the next-deeper level."""
        self._slots.append(slot)

    def pop_slot(self) -> int | None:
        """Surrender the slot of the level about to be released."""
        if self._slots_head >= len(self._slots):
            return None
        slot = self._slots[self._slots_head]
        self._slots_head += 1
        return slot

    # -- mutation ---------------------------------------------------------

    def evict(self, k: int) -> None:
        """Remove ``k`` logically-live records (one flush's toll).

        Physical space is not touched here: while disk segments remain,
        the loss is booked against the stack balance (possibly driving
        it into ghost debt); a tail-only subsample shrinks its memory
        tail / stack share directly, as Section 4.5 prescribes
        ("overflow or underflow can be handled efficiently by adding or
        removing records directly").
        """
        if k < 0:
            raise ValueError("cannot evict a negative count")
        if k > self.live:
            raise ValueError(
                f"evicting {k} from subsample {self.ident} with only "
                f"{self.live} live records"
            )
        self.live -= k
        if self.records is not None:
            del self.records[len(self.records) - k:]
        if self.weights is not None:
            del self.weights[len(self.weights) - k:]
        if self.aux is not None:
            self.aux = self.aux[:len(self.aux) - k]
        if self._head < len(self._sizes):
            self.stack_balance -= k
        else:
            self._shrink_tail_only(k)

    def evict_indices(self, indices) -> None:
        """Remove specific live records by index (non-uniform laws).

        Uniform eviction pops a count from the end of an exchangeable
        sequence; key-based laws name their victims instead.  The
        stack-balance booking is identical -- only *how many* records
        died matters to the physical layout; *which* ones is purely a
        logical-sample concern tracked through ``records`` / ``aux``.
        Ghost debt semantics carry over unchanged: victims may still
        sit inside not-yet-released segments.
        """
        victims = np.asarray(indices, dtype=np.intp)
        k = int(victims.shape[0])
        if k == 0:
            return
        if k > self.live:
            raise ValueError(
                f"evicting {k} from subsample {self.ident} with only "
                f"{self.live} live records"
            )
        if self.records is None:
            raise TypeError("evict_indices needs retained records")
        keep = np.ones(len(self.records), dtype=bool)
        keep[victims] = False
        if keep.sum() != self.live - k:
            raise ValueError("eviction indices must be distinct and in "
                             "range")
        self.live -= k
        if isinstance(self.records, list):
            self.records = [r for r, alive in zip(self.records, keep)
                            if alive]
        else:  # RecordBatch
            self.records = self.records.take(np.flatnonzero(keep))
        if self.weights is not None:
            self.weights = [w for w, alive in zip(self.weights, keep)
                            if alive]
        if self.aux is not None:
            self.aux = self.aux[keep]
        if self._head < len(self._sizes):
            self.stack_balance -= k
        else:
            self._shrink_tail_only(k)

    def release_segment(self) -> int:
        """Surrender the largest remaining disk segment (Section 4.3).

        The released slot's records move (logically) into the stack:
        the new subsample's matching segment overwrites the slot, and
        whatever the evictions since the last release did not account
        for is the Case 1 / Case 2 surplus now carried by the stack.

        Returns:
            The released slot size in records (the caller charges the
            overwrite I/O).
        """
        if self._head >= len(self._sizes):
            raise ValueError(f"subsample {self.ident} has no disk segments")
        released = self._sizes[self._head]
        self._head += 1
        self._physical -= released
        self.first_level += 1
        self.stack_balance += released
        if self.stack_balance > self.max_stack_balance:
            self.max_stack_balance = self.stack_balance
        if (self.stack_capacity is not None
                and self.stack_balance > self.stack_capacity):
            self.overflowed = True
        if self._head >= len(self._sizes):
            self._settle_after_last_segment()
        return released

    def reconcile_stack(self) -> StackEvent:
        """Report (and reset) stack traffic since the last reconciliation.

        In a single geometric file this is called every flush; with
        multiple files it is called only when this subsample's file is
        written, implementing Section 6's lazy stack maintenance.  The
        caller charges one stack-region write per reconciliation that
        pushed records (pops only move the stack pointer).
        """
        delta = self.stack_balance - self._reconciled_balance
        self._reconciled_balance = self.stack_balance
        return StackEvent(pushed=max(0, delta), popped=max(0, -delta))

    # -- internals --------------------------------------------------------

    def _shrink_tail_only(self, k: int) -> None:
        """Tail-only eviction: drain the stack share first, then the tail."""
        from_stack = min(k, max(0, self.stack_balance))
        self.stack_balance -= from_stack
        self.tail_size -= (k - from_stack)
        if self.tail_size < 0:
            raise AssertionError(
                f"subsample {self.ident}: tail went negative"
            )

    def _settle_after_last_segment(self) -> None:
        """Resolve ghost debt once no disk segments remain to repay it."""
        if self.stack_balance < 0:
            debt = -self.stack_balance
            if debt > self.tail_size:
                raise AssertionError(
                    f"subsample {self.ident}: ghost debt {debt} exceeds "
                    f"tail {self.tail_size}"
                )
            self.tail_size -= debt
            self.stack_balance = 0

    def fold_stack_into_tail(self) -> int:
        """Move surplus stack records into the in-memory tail group.

        Called by the file once the subsample surrenders its last disk
        segment, freeing its pre-allocated stack region for reuse by
        younger subsamples.  Returns the number of records folded (the
        caller charges one stack-region read for them); the memory cost
        is O(sqrt(B)) per tail-only subsample.
        """
        if self.has_disk_segments:
            raise ValueError("cannot fold while disk segments remain")
        folded = max(0, self.stack_balance)
        self.tail_size += folded
        self.stack_balance = 0
        self._reconciled_balance = 0
        return folded

    # -- checkpoint support -------------------------------------------------

    def restore_layout_state(self, segment_sizes: list[int],
                             slots: list[int]) -> None:
        """Reset the physical layout view (checkpoint recovery only)."""
        self._sizes = list(segment_sizes)
        self._head = 0
        self._physical = sum(self._sizes)
        self._slots = list(slots)
        self._slots_head = 0
