"""Zone-map indexing over a geometric file (paper Section 10).

"Another problem is efficient index maintenance for the geometric
file, so that samples with specific characteristics can be found
quickly" -- listed as future work.  This module implements the natural
first answer: *zone maps*.

The geometric file has a property that makes zone maps unusually cheap:
a subsample is immutable after creation except for deletions, and
deletions can only *narrow* a [min, max] envelope, never widen it.  So
one envelope per subsample (per indexed field), computed once at flush
time from the records already in memory, stays a valid over-
approximation for the subsample's whole life with zero maintenance
I/O.  A range query then touches only the subsamples whose envelope
intersects the predicate -- for time-correlated streams (the sensor
workload) that is a small suffix of the subsample list, because
subsample creation order *is* stream order.

Works on record-retaining files; :class:`ZoneMapStats` reports how many
subsamples the envelope check skipped, which the zone-map benchmark
turns into the headline speedup number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..obs.deprecation import warn_deprecated
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record
from .geometric_file import GeometricFile

FieldExtractor = Callable[[Record], float]

FIELDS: dict[str, FieldExtractor] = {
    "value": lambda r: r.value,
    "timestamp": lambda r: r.timestamp,
    "key": lambda r: float(r.key),
}


@dataclass
class _Envelope:
    low: float
    high: float

    def intersects(self, low: float, high: float) -> bool:
        return self.low <= high and low <= self.high


@dataclass
class ZoneMapStats:
    """Pruning effectiveness of the last query."""

    subsamples_total: int = 0
    subsamples_scanned: int = 0
    records_scanned: int = 0
    records_matched: int = 0

    @property
    def pruned_fraction(self) -> float:
        if self.subsamples_total == 0:
            return 0.0
        return 1.0 - self.subsamples_scanned / self.subsamples_total


class ZoneMapIndex:
    """Per-subsample [min, max] envelopes over one record field.

    Args:
        gf: a record-retaining geometric file.
        field: "value", "timestamp", or "key" -- or pass ``extractor``.
        extractor: custom field extractor (overrides ``field``).

    Call :meth:`refresh` after new flushes to index newly created
    subsamples (existing envelopes never need recomputation); or use
    :meth:`query` which refreshes automatically.
    """

    def __init__(self, gf: GeometricFile, field: str = "timestamp",
                 extractor: FieldExtractor | None = None) -> None:
        if not gf.config.retain_records:
            raise ValueError("zone maps need a record-retaining file")
        #: Structured-array column name, when the indexed field is one
        #: (enables the columnar fast paths); ``None`` for a custom
        #: extractor, which must see decoded records.
        self._field: str | None = None
        if extractor is None:
            if field not in FIELDS:
                raise ValueError(
                    f"unknown field {field!r}; expected one of "
                    f"{sorted(FIELDS)} or a custom extractor"
                )
            self._field = field
            extractor = FIELDS[field]
        self._gf = gf
        self._extract = extractor
        self._envelopes: dict[int, _Envelope] = {}
        self._last_stats = ZoneMapStats()
        self._obs_name = "zone map"
        self._registry = None
        self._trace = None
        self._query_counter = None
        self.refresh()

    # -- observability ------------------------------------------------------

    def stats(self) -> ZoneMapStats:
        """Pruning statistics of the most recent :meth:`query`."""
        return self._last_stats

    @property
    def last_stats(self) -> ZoneMapStats:
        """Deprecated: use :meth:`stats`."""
        warn_deprecated("ZoneMapIndex.last_stats", "stats()")
        return self._last_stats

    @last_stats.setter
    def last_stats(self, value: ZoneMapStats) -> None:
        self._last_stats = value

    def instrument(self, registry, trace=None, *, name: str = "zone map") -> None:
        """Attach observers; each completed query emits ``zone_query``.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            trace: optional :class:`repro.obs.TraceSink`.
            name: value of the ``structure`` label / trace source.
        """
        self._obs_name = name
        self._registry = registry
        self._trace = trace
        self._query_counter = registry.counter("events.zone_query",
                                               structure=name)

    def _emit_query(self, stats: ZoneMapStats) -> None:
        if self._query_counter is not None:
            self._query_counter.inc()
        if self._trace is not None:
            self._trace.emit(
                "zone_query", self._obs_name, self._gf._clock(),
                subsamples_total=stats.subsamples_total,
                subsamples_scanned=stats.subsamples_scanned,
                records_scanned=stats.records_scanned,
                records_matched=stats.records_matched,
            )

    def refresh(self) -> None:
        """Index subsamples created since the last refresh."""
        alive = set()
        for ledger in self._gf.subsamples:
            alive.add(ledger.ident)
            if ledger.ident in self._envelopes or not ledger.records:
                continue
            column = self._column_of(ledger.records)
            if column is not None:
                # Columnar slab + named field: the envelope is one
                # vectorised min/max over the value column.
                self._envelopes[ledger.ident] = _Envelope(
                    float(column.min()), float(column.max())
                )
                continue
            values = [self._extract(r) for r in ledger.records]
            self._envelopes[ledger.ident] = _Envelope(min(values),
                                                      max(values))
        for ident in list(self._envelopes):
            if ident not in alive:
                del self._envelopes[ident]

    def _column_of(self, records) -> np.ndarray | None:
        """The indexed column of a RecordBatch, or None for lists /
        custom extractors."""
        if self._field is None:
            return None
        array = getattr(records, "array", None)
        if array is None:
            return None
        return array[self._field]

    def query(self, low: float, high: float) -> Iterator[Record]:
        """Records with the indexed field in ``[low, high]``.

        Only scans subsamples whose envelope intersects the range;
        :meth:`stats` reports the pruning achieved.  The buffer's
        pending records are always scanned (they have no envelope yet).

        Note on snapshot semantics: between flushes the query sees the
        disk residents *and* the pending buffer, without applying the
        buffer's deferred disk evictions -- a superset of a strict
        snapshot sample by at most ``buffer.count`` records.  Queries
        needing the exact fixed-size sample should use
        :meth:`~repro.core.geometric_file.GeometricFile.sample` and
        filter it.
        """
        if high < low:
            raise ValueError("need low <= high")
        self.refresh()
        stats = ZoneMapStats()
        self._last_stats = stats
        for ledger in self._gf.subsamples:
            stats.subsamples_total += 1
            envelope = self._envelopes.get(ledger.ident)
            if envelope is None or not envelope.intersects(low, high):
                continue
            stats.subsamples_scanned += 1
            for record in ledger.records or ():
                stats.records_scanned += 1
                value = self._extract(record)
                if low <= value <= high:
                    stats.records_matched += 1
                    yield record
        if self._gf.buffer.retains_records:
            for record in self._gf.buffer:
                stats.records_scanned += 1
                value = self._extract(record)
                if low <= value <= high:
                    stats.records_matched += 1
                    yield record
        self._emit_query(stats)

    def query_batch(self, low: float, high: float) -> RecordBatch:
        """Columnar :meth:`query`: one :class:`RecordBatch` of matches.

        Envelope pruning, snapshot semantics, and the
        :class:`ZoneMapStats` accounting are identical to
        :meth:`query`; the per-record extractor loop is replaced by a
        vectorised compare-and-compress per scanned subsample.
        Requires a columnar file and a named (non-extractor) field.
        """
        gf = self._gf
        if not getattr(gf, "columnar", False):
            raise TypeError("query_batch needs a columnar geometric file")
        if self._field is None:
            raise TypeError(
                "query_batch needs a named field; custom extractors "
                "must see decoded records -- use query()"
            )
        if high < low:
            raise ValueError("need low <= high")
        self.refresh()
        stats = ZoneMapStats()
        self._last_stats = stats
        parts: list[np.ndarray] = []
        for ledger in gf.subsamples:
            stats.subsamples_total += 1
            envelope = self._envelopes.get(ledger.ident)
            if envelope is None or not envelope.intersects(low, high):
                continue
            stats.subsamples_scanned += 1
            array = ledger.records.array
            stats.records_scanned += len(array)
            column = array[self._field]
            mask = (column >= low) & (column <= high)
            matched = int(mask.sum())
            stats.records_matched += matched
            if matched:
                parts.append(array[mask])
        pending = gf.buffer.pending_view()
        if len(pending):
            stats.records_scanned += len(pending)
            column = pending[self._field]
            mask = (column >= low) & (column <= high)
            matched = int(mask.sum())
            stats.records_matched += matched
            if matched:
                parts.append(pending[mask])
        result = (np.concatenate(parts) if parts
                  else np.empty(0, dtype=gf.schema.dtype))
        self._emit_query(stats)
        return RecordBatch(gf.schema, result)
