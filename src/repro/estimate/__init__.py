"""Statistics over samples: the Section 2 sample-size machinery, tail
bounds, and estimators (including Horvitz-Thompson over biased
samples)."""

from .aqp import BatchQuery, GroupResult, SampleQuery, relative_error
from .bounds import (
    chebyshev_bound,
    chebyshev_sample_size,
    chernoff_bound_binomial,
    chernoff_sample_size_binomial,
    hoeffding_bound,
    hoeffding_sample_size,
)
from .clt import (
    ConfidenceInterval,
    achieved_confidence,
    mean_confidence_interval,
    normal_cdf,
    normal_quantile,
    required_sample_size,
)
from .online import OnlineAggregator, RippleJoin, online_avg
from .estimators import (
    Estimate,
    estimate_avg,
    estimate_count,
    estimate_mean,
    estimate_sum,
    horvitz_thompson_count,
    horvitz_thompson_sum,
)
from .planner import AqpAnswer, HotSubsample, QueryPlanner
from .snapshots import SnapshotEstimator

__all__ = [
    "AqpAnswer",
    "BatchQuery",
    "ConfidenceInterval",
    "Estimate",
    "GroupResult",
    "HotSubsample",
    "OnlineAggregator",
    "QueryPlanner",
    "RippleJoin",
    "SampleQuery",
    "SnapshotEstimator",
    "achieved_confidence",
    "chebyshev_bound",
    "chebyshev_sample_size",
    "chernoff_bound_binomial",
    "chernoff_sample_size_binomial",
    "estimate_avg",
    "estimate_count",
    "estimate_mean",
    "estimate_sum",
    "hoeffding_bound",
    "hoeffding_sample_size",
    "horvitz_thompson_count",
    "horvitz_thompson_sum",
    "mean_confidence_interval",
    "normal_cdf",
    "normal_quantile",
    "online_avg",
    "relative_error",
    "required_sample_size",
]
