"""A small approximate-query layer over any maintained sample.

The paper motivates the geometric file with approximate query
processing: decision support, online aggregation, ripple joins -- all
"potential users of a large sample maintained as a geometric file"
(Section 9).  :class:`SampleQuery` is a deliberately small slice of
that: filter / group-by / aggregate over a materialised sample, every
answer carrying a CLT confidence interval, so the examples can show the
end-to-end loop (stream -> geometric file -> query with error bars)
and the Section 2 story (error shrinking as 1/sqrt(sample size)) can
be demonstrated quantitatively.

This is intentionally an estimator layer, not a SQL engine; it consumes
``list[Record]`` from any of the library's samplers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from ..storage.recordbatch import RecordBatch
from ..storage.records import Record
from .clt import ConfidenceInterval
from .estimators import Estimate, estimate_mean, estimate_sum
from .snapshots import SnapshotEstimator


@dataclass(frozen=True)
class GroupResult:
    """One group's aggregate estimate."""

    key: Hashable
    n_sampled: int
    estimate: Estimate

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        return self.estimate.interval(confidence)


class SampleQuery:
    """Aggregate queries over a uniform sample.

    Args:
        sample: the sampled records.
        population_size: number of records the sample represents (the
            stream position for an unbiased reservoir); required for
            SUM/COUNT scale-up, not for AVG.
    """

    def __init__(self, sample: Sequence[Record],
                 population_size: int | None = None) -> None:
        self._sample = list(sample)
        if population_size is not None and population_size < len(sample):
            raise ValueError("population smaller than the sample")
        self._population = population_size

    def __len__(self) -> int:
        return len(self._sample)

    def filter(self, predicate: Callable[[Record], bool]) -> "SampleQuery":
        """A relational selection.

        Note the Section 2 effect: filtering shrinks the effective
        sample, inflating every downstream error bar -- the reason
        selective queries need very large base samples.
        """
        return SampleQuery([r for r in self._sample if predicate(r)],
                           self._population)

    # The scalar aggregates delegate to the shared SnapshotEstimator
    # (signatures preserved); filter/group_by remain relational sugar
    # this class alone provides.

    def avg(self, value: Callable[[Record], float] | None = None) -> Estimate:
        """Mean of ``value`` over the population the sample represents."""
        return self._estimator().avg(value=value)

    def sum(self, value: Callable[[Record], float] | None = None) -> Estimate:
        """Population SUM (requires ``population_size``)."""
        return self._estimator().sum(value=value)

    def count(self, predicate: Callable[[Record], bool] | None = None
              ) -> Estimate:
        """Population COUNT of matching records."""
        return self._estimator().count(predicate)

    def _estimator(self) -> SnapshotEstimator:
        return SnapshotEstimator(self._sample, self._population)

    def group_by(
        self,
        key: Callable[[Record], Hashable],
        aggregate: str = "avg",
        value: Callable[[Record], float] | None = None,
        min_group_size: int = 2,
    ) -> list[GroupResult]:
        """Grouped aggregates, one :class:`GroupResult` per group.

        Groups with fewer than ``min_group_size`` sampled records are
        dropped (their estimates would be meaningless) -- exactly the
        rare-group problem that motivates biased "congressional"
        sampling in the literature the paper cites [1].

        Args:
            key: grouping function.
            aggregate: "avg", "sum" or "count".
            value: aggregated expression (defaults to ``record.value``).
        """
        if aggregate not in ("avg", "sum", "count"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        if aggregate in ("sum", "count"):
            self._need_population()
        value = value or (lambda r: r.value)
        groups: dict[Hashable, list[Record]] = {}
        for record in self._sample:
            groups.setdefault(key(record), []).append(record)
        results: list[GroupResult] = []
        for group_key in sorted(groups, key=repr):
            members = groups[group_key]
            if len(members) < min_group_size:
                continue
            if aggregate == "avg":
                est = estimate_mean([value(r) for r in members])
            else:
                # SUM/COUNT scale-up: the group's share of the population
                # is itself estimated from the sample, so build the
                # per-record contribution over the WHOLE sample (zero
                # outside the group) and scale by the population.
                in_group = set(id(r) for r in members)
                if aggregate == "sum":
                    rows = [value(r) if id(r) in in_group else 0.0
                            for r in self._sample]
                else:
                    rows = [1.0 if id(r) in in_group else 0.0
                            for r in self._sample]
                est = estimate_sum(rows, self._population)
            results.append(GroupResult(group_key, len(members), est))
        return results

    def _need_population(self) -> None:
        if self._population is None:
            raise ValueError(
                "population_size is required for SUM/COUNT scale-up"
            )


class BatchQuery:
    """Columnar :class:`SampleQuery` over a :class:`RecordBatch`.

    Predicates are range filters (or raw boolean masks) on named
    columns and aggregates reduce value columns directly, so an
    AVG-with-error-bars over a million-record sample is a handful of
    ``numpy`` reductions instead of a million Python calls.  The
    estimators are the same CLT constructions ``SampleQuery`` uses --
    on the same sample the two agree to floating-point reassociation.

    Args:
        batch: the sampled records as one :class:`RecordBatch`.
        population_size: number of records the sample represents;
            required for SUM/COUNT scale-up, not for AVG.
    """

    def __init__(self, batch: RecordBatch,
                 population_size: int | None = None) -> None:
        if population_size is not None and population_size < len(batch):
            raise ValueError("population smaller than the sample")
        self._batch = batch
        self._population = population_size

    def __len__(self) -> int:
        return len(self._batch)

    @property
    def batch(self) -> RecordBatch:
        return self._batch

    def _column(self, column: str) -> np.ndarray:
        return self._batch.column(column)

    def mask(self, column: str, low: float = -math.inf,
             high: float = math.inf) -> np.ndarray:
        """Boolean mask of rows with ``column`` in ``[low, high]``."""
        values = self._column(column)
        return (values >= low) & (values <= high)

    def filter(self, column: str, low: float = -math.inf,
               high: float = math.inf) -> "BatchQuery":
        """Relational selection by range predicate (keeps population)."""
        return self.where(self.mask(column, low, high))

    def where(self, mask: np.ndarray) -> "BatchQuery":
        """Selection by an arbitrary boolean mask over the rows."""
        array = self._batch.array[np.asarray(mask, dtype=bool)]
        return BatchQuery(RecordBatch(self._batch.schema, array),
                          self._population)

    def avg(self, column: str = "value") -> Estimate:
        """Mean of ``column`` over the represented population."""
        return estimate_mean(self._column(column))

    def sum(self, column: str = "value") -> Estimate:
        """Population SUM (requires ``population_size``)."""
        self._need_population()
        return estimate_sum(self._column(column), self._population)

    def count(self, mask: np.ndarray | None = None) -> Estimate:
        """Population COUNT of rows matching ``mask`` (all when None)."""
        self._need_population()
        if mask is None:
            indicators = np.ones(len(self._batch))
        else:
            indicators = np.asarray(mask, dtype=bool).astype(np.float64)
        return estimate_sum(indicators, self._population)

    def _need_population(self) -> None:
        if self._population is None:
            raise ValueError(
                "population_size is required for SUM/COUNT scale-up"
            )


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / |truth| (guards the zero-truth case)."""
    if truth == 0:
        return math.inf if estimate != 0 else 0.0
    return abs(estimate - truth) / abs(truth)
