"""Classical tail bounds for sample-based estimates.

The paper's introduction lists "the central limit theorem, Chernoff,
Hoeffding and Chebyshev bounds" as the fundamental results that make
samples trustworthy.  These are the textbook forms, exposed both as
probability bounds and as inverted sample-size requirements so they can
be compared against the CLT numbers of :mod:`repro.estimate.clt`
(the Section 2 benchmark prints all of them side by side).
"""

from __future__ import annotations

import math


def chebyshev_bound(std: float, n: int, epsilon: float) -> float:
    """P(|sample mean - mean| >= epsilon) <= std^2 / (n * epsilon^2).

    Distribution-free but loose; returns the bound capped at 1.
    """
    _check(std=std, n=n, epsilon=epsilon)
    return min(1.0, std ** 2 / (n * epsilon ** 2))


def chebyshev_sample_size(std: float, epsilon: float,
                          failure_probability: float) -> int:
    """Samples for P(|error| >= epsilon) <= failure_probability."""
    _check(std=std, epsilon=epsilon, probability=failure_probability)
    return max(1, math.ceil(std ** 2 / (failure_probability * epsilon ** 2)))


def hoeffding_bound(value_range: float, n: int, epsilon: float) -> float:
    """Two-sided Hoeffding: P(|mean error| >= eps) <= 2 exp(-2 n eps^2 / r^2).

    Requires values confined to an interval of width ``value_range``.
    """
    _check(n=n, epsilon=epsilon)
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    return min(1.0, 2.0 * math.exp(-2.0 * n * epsilon ** 2
                                   / value_range ** 2))


def hoeffding_sample_size(value_range: float, epsilon: float,
                          failure_probability: float) -> int:
    """Samples for the two-sided Hoeffding bound to reach the target."""
    _check(epsilon=epsilon, probability=failure_probability)
    if value_range <= 0:
        raise ValueError("value_range must be positive")
    n = (value_range ** 2 / (2.0 * epsilon ** 2)
         * math.log(2.0 / failure_probability))
    return max(1, math.ceil(n))


def chernoff_bound_binomial(p: float, n: int, relative_error: float) -> float:
    """Multiplicative Chernoff for a binomial proportion estimate.

    ``P(|hat p - p| >= relative_error * p)
    <= 2 exp(-n p relative_error^2 / 3)`` for ``relative_error <= 1`` --
    the form used for COUNT/selectivity estimates over samples.
    """
    _check(n=n)
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    if not 0.0 < relative_error <= 1.0:
        raise ValueError("relative_error must be in (0, 1]")
    return min(1.0, 2.0 * math.exp(-n * p * relative_error ** 2 / 3.0))


def chernoff_sample_size_binomial(p: float, relative_error: float,
                                  failure_probability: float) -> int:
    """Samples for the multiplicative Chernoff bound to reach the target."""
    _check(probability=failure_probability)
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    if not 0.0 < relative_error <= 1.0:
        raise ValueError("relative_error must be in (0, 1]")
    n = 3.0 / (p * relative_error ** 2) * math.log(2.0 / failure_probability)
    return max(1, math.ceil(n))


def _check(*, std: float | None = None, n: int | None = None,
           epsilon: float | None = None,
           probability: float | None = None) -> None:
    if std is not None and std < 0:
        raise ValueError("standard deviation must be non-negative")
    if n is not None and n < 1:
        raise ValueError("sample size must be at least 1")
    if epsilon is not None and epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if probability is not None and not 0.0 < probability < 1.0:
        raise ValueError("failure probability must be in (0, 1)")
