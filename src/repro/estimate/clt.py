"""Sample-size arithmetic via the central limit theorem (paper Section 2).

Section 2 argues that "sometimes a little is not enough": the error of
a sample mean is ~ Normal(0, sigma^2 / N), so the sample size needed
for relative error ``eps`` at confidence ``delta`` grows with the
*square* of the coefficient of variation.  The paper's two worked
examples:

* student ages (mean 20, sd 2): ~100 samples suffice for 2.5% error at
  ~98% confidence;
* U.S. household net worth (mean ~$140,000, sd >= $5,000,000): "a quick
  calculation shows we will need more than 12 million samples to
  achieve the same statistical guarantees".

:func:`required_sample_size` is that quick calculation;
``benchmarks/test_section2_sample_sizes.py`` regenerates both numbers.

The inverse-normal quantile is computed with Acklam's rational
approximation (relative error < 1.15e-9), so the module needs no scipy
at runtime; the test suite cross-checks it against scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def normal_cdf(x: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's approximation).

    Raises:
        ValueError: unless ``0 < p < 1``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0))
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                  * q + c[5])
                 / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0))
    q = p - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
             * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4])
               * r + 1.0))


def required_sample_size(std: float, mean: float, relative_error: float,
                         confidence: float) -> int:
    """Samples needed to estimate ``mean`` within ``relative_error``.

    By the CLT the estimator's error is Normal(0, std^2/N); demanding
    ``P(|err| <= relative_error * |mean|) >= confidence`` gives
    ``N >= (z * std / (relative_error * mean))**2`` with
    ``z = Phi^{-1}((1 + confidence) / 2)``.

    Args:
        std: population standard deviation.
        mean: population mean (non-zero; relative error is w.r.t. it).
        relative_error: e.g. 0.025 for the paper's 2.5%.
        confidence: e.g. 0.98.

    Returns:
        The minimal integer sample size.
    """
    if std < 0:
        raise ValueError("standard deviation must be non-negative")
    if mean == 0:
        raise ValueError("relative error is undefined for a zero mean")
    if not 0.0 < relative_error:
        raise ValueError("relative_error must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = normal_quantile((1.0 + confidence) / 2.0)
    n = (z * std / (relative_error * abs(mean))) ** 2
    return max(1, math.ceil(n))


def achieved_confidence(std: float, mean: float, relative_error: float,
                        sample_size: int) -> float:
    """Confidence a given sample size delivers for a target error.

    Inverse of :func:`required_sample_size`: with N samples the error is
    Normal(0, std^2/N), so
    ``P(|err| <= eps*|mean|) = 2*Phi(eps*|mean|*sqrt(N)/std) - 1``.
    """
    if sample_size < 1:
        raise ValueError("sample size must be at least 1")
    if std < 0:
        raise ValueError("standard deviation must be non-negative")
    if mean == 0:
        raise ValueError("relative error is undefined for a zero mean")
    if std == 0:
        return 1.0
    z = relative_error * abs(mean) * math.sqrt(sample_size) / std
    return 2.0 * normal_cdf(z) - 1.0


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric CLT confidence interval around a point estimate."""

    estimate: float
    half_width: float
    confidence: float

    @property
    def low(self) -> float:
        return self.estimate - self.half_width

    @property
    def high(self) -> float:
        return self.estimate + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def mean_confidence_interval(values, confidence: float = 0.95
                             ) -> ConfidenceInterval:
    """CLT interval for the mean of an i.i.d. sample.

    Uses the sample standard deviation; for the small-sample regime a
    t-interval would be wider, but the library's whole premise is very
    large samples.
    """
    data = list(values)
    n = len(data)
    if n < 2:
        raise ValueError("need at least two values")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = sum(data) / n
    variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    z = normal_quantile((1.0 + confidence) / 2.0)
    half = z * math.sqrt(variance / n)
    return ConfidenceInterval(mean, half, confidence)
