"""Estimators over uniform and biased samples.

A sample is only useful through the estimates it feeds (the paper's
Section 9: "most of these algorithms could be viewed as potential users
of a large sample maintained as a geometric file").  This module gives
the standard constructions:

* uniform samples: scaled SUM / COUNT / AVG with CLT error bars;
* biased samples: Horvitz-Thompson estimators, which divide each
  sampled value by its inclusion probability
  ``pi_r = |R| * true_weight(r) / totalWeight`` -- the quantity the
  Section 7 machinery guarantees is always computable (Lemma 3), so a
  biased sample "can still be used to produce unbiased estimates that
  are correct on expectation".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..storage.records import Record
from .clt import ConfidenceInterval, normal_quantile


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a CLT standard error."""

    value: float
    standard_error: float

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        z = normal_quantile((1.0 + confidence) / 2.0)
        return ConfidenceInterval(self.value, z * self.standard_error,
                                  confidence)


def estimate_mean(sample: Sequence[float] | np.ndarray) -> Estimate:
    """Sample mean with its standard error.

    Accepts any float sequence; ``numpy`` arrays (e.g. a
    :class:`~repro.storage.recordbatch.RecordBatch` value column) take
    a vectorised path with no per-element Python arithmetic.
    """
    n = len(sample)
    if n < 2:
        raise ValueError("need at least two values")
    if isinstance(sample, np.ndarray):
        values = sample.astype(np.float64, copy=False)
        mean = float(values.mean())
        variance = float(values.var(ddof=1))
        return Estimate(mean, math.sqrt(variance / n))
    mean = sum(sample) / n
    variance = sum((x - mean) ** 2 for x in sample) / (n - 1)
    return Estimate(mean, math.sqrt(variance / n))


def estimate_sum(sample: Sequence[float] | np.ndarray,
                 population_size: int) -> Estimate:
    """Population SUM from a uniform sample of known population size.

    Scales the sample mean by ``population_size``; the without-
    replacement finite-population correction ``(1 - n/N)`` tightens the
    error when the sample is a sizeable fraction of the population --
    which, for the very large samples this library exists for, it
    often is.
    """
    n = len(sample)
    if n < 2:
        raise ValueError("need at least two values")
    if population_size < n:
        raise ValueError("population cannot be smaller than the sample")
    mean_est = estimate_mean(sample)
    fpc = 1.0 - n / population_size
    return Estimate(
        population_size * mean_est.value,
        population_size * mean_est.standard_error * math.sqrt(max(0.0, fpc)),
    )


def estimate_count(sample: Sequence[Record], population_size: int,
                   predicate: Callable[[Record], bool]) -> Estimate:
    """Population COUNT of records satisfying ``predicate``."""
    indicators = [1.0 if predicate(r) else 0.0 for r in sample]
    return estimate_sum(indicators, population_size)


def estimate_avg(sample: Sequence[Record],
                 predicate: Callable[[Record], bool] | None = None,
                 value: Callable[[Record], float] | None = None) -> Estimate:
    """Population AVG of ``value`` over records matching ``predicate``."""
    value = value or (lambda r: r.value)
    rows = [value(r) for r in sample
            if predicate is None or predicate(r)]
    if len(rows) < 2:
        raise ValueError("predicate matched fewer than two sampled records")
    return estimate_mean(rows)


# -- Horvitz-Thompson over biased samples ----------------------------------------


def horvitz_thompson_sum(
    items: Iterable[tuple[Record, float]],
    total_weight: float,
    sample_capacity: int,
    value: Callable[[Record], float] | None = None,
    predicate: Callable[[Record], bool] | None = None,
) -> Estimate:
    """Unbiased SUM over the *whole stream* from a biased sample.

    Args:
        items: ``(record, true_weight)`` pairs, e.g. from
            :meth:`repro.sampling.BiasedReservoir.items`.
        total_weight: the sampler's ``totalWeight`` (sum of true weights
            over every stream record so far).
        sample_capacity: ``|R|``.
        value: per-record contribution (defaults to ``record.value``).
        predicate: optional filter; non-matching records contribute 0.

    Each resident contributes ``value(r) / pi_r`` with
    ``pi_r = sample_capacity * true_weight / total_weight`` (Lemma 3).
    The reported standard error uses the with-replacement approximation
    on the per-record HT contributions, which is the standard practical
    choice; tests verify unbiasedness empirically.
    """
    if total_weight <= 0:
        raise ValueError("total_weight must be positive")
    if sample_capacity < 1:
        raise ValueError("sample_capacity must be at least 1")
    value = value or (lambda r: r.value)
    contributions: list[float] = []
    for record, true_weight in items:
        if true_weight <= 0:
            raise ValueError("true weights must be positive")
        if predicate is not None and not predicate(record):
            contributions.append(0.0)
            continue
        pi = min(1.0, sample_capacity * true_weight / total_weight)
        contributions.append(value(record) / pi)
    n = len(contributions)
    if n == 0:
        return Estimate(0.0, 0.0)
    total = sum(contributions)
    if n < 2:
        return Estimate(total, abs(total))
    mean = total / n
    variance = sum((c - mean) ** 2 for c in contributions) / (n - 1)
    return Estimate(total, math.sqrt(n * variance))


def horvitz_thompson_count(
    items: Iterable[tuple[Record, float]],
    total_weight: float,
    sample_capacity: int,
    predicate: Callable[[Record], bool],
) -> Estimate:
    """Unbiased COUNT over the whole stream from a biased sample."""
    return horvitz_thompson_sum(
        items, total_weight, sample_capacity,
        value=lambda _r: 1.0, predicate=predicate,
    )
