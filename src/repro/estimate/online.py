"""Online aggregation and ripple joins over maintained samples.

Section 9 places the geometric file next to Berkeley's CONTROL project:
"their algorithms could make use of our samples.  For example, a sample
maintained as a geometric file could easily be used as input to a
ripple join or online aggregation."  This module is that input path:

* :class:`OnlineAggregator` -- the online-aggregation interface
  (Hellerstein, Haas, Wang 1997): feed records one at a time *in random
  order* and read a running estimate whose confidence interval shrinks
  as 1/sqrt(n), letting a user stop as soon as the answer is good
  enough;
* :class:`RippleJoin` -- the ripple join (Haas, Hellerstein 1999):
  progressively estimate an aggregate over ``L JOIN R`` by growing a
  sampled rectangle of pairs, never materialising the join.

Both consume ``list[Record]`` from any of the library's samplers.  The
inputs must be exchangeable (uniformly shuffled); both classes shuffle
internally by default because a geometric file's ``sample()`` output is
ordered by subsample age.

Error bars: the aggregator's are exact CLT intervals.  The ripple
join's use the standard i.i.d.-pairs approximation for the selectivity
variance (the exact ripple-join variance estimator tracks cross-tuple
covariance terms); tests validate the resulting coverage empirically.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from ..storage.records import Record
from .clt import normal_quantile
from .estimators import Estimate


class OnlineAggregator:
    """Running AVG / SUM / COUNT with shrinking confidence intervals.

    Args:
        population_size: the population the observations represent;
            required for SUM/COUNT scale-up, not for AVG.

    Feed observations with :meth:`observe` (they must arrive in random
    order for the intervals to be honest -- see :func:`online_avg` for
    a helper that shuffles a sample and streams snapshots).
    """

    def __init__(self, population_size: int | None = None) -> None:
        if population_size is not None and population_size < 1:
            raise ValueError("population must be positive")
        self._population = population_size
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0  # Welford's running sum of squared deviations

    # -- feeding ----------------------------------------------------------

    def observe(self, value: float) -> None:
        """Incorporate one observation (Welford's update)."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # -- estimates ----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def variance(self) -> float:
        """Sample variance of the observations seen so far."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    def avg(self) -> Estimate:
        if self._count < 2:
            raise ValueError("need at least two observations")
        return Estimate(self._mean,
                        math.sqrt(self.variance / self._count))

    def sum(self) -> Estimate:
        """Population SUM (with finite-population correction)."""
        self._need_population()
        avg = self.avg()
        fpc = max(0.0, 1.0 - self._count / self._population)
        return Estimate(self._population * avg.value,
                        self._population * avg.standard_error
                        * math.sqrt(fpc))

    def _need_population(self) -> None:
        if self._population is None:
            raise ValueError("population_size is required for SUM")


def online_avg(sample: Sequence[Record],
               value: Callable[[Record], float] | None = None,
               *, every: int = 100, confidence: float = 0.95,
               rng: random.Random | None = None,
               ) -> Iterator[tuple[int, Estimate]]:
    """Stream (n_seen, running AVG estimate) snapshots over a sample.

    Shuffles the sample (a geometric file's ``sample()`` is ordered by
    subsample age, which is stream order -- not exchangeable), then
    yields a snapshot every ``every`` observations plus a final one.
    This is the user-facing shape of online aggregation: watch the
    interval shrink and stop early.
    """
    if every < 1:
        raise ValueError("snapshot cadence must be at least 1")
    value = value or (lambda r: r.value)
    rng = rng or random.Random()
    shuffled = list(sample)
    rng.shuffle(shuffled)
    aggregator = OnlineAggregator()
    for index, record in enumerate(shuffled, start=1):
        aggregator.observe(value(record))
        if index >= 2 and (index % every == 0 or index == len(shuffled)):
            yield index, aggregator.avg()


class RippleJoin:
    """Progressive estimation of ``|L JOIN R|`` (and SUMs over it).

    The classic square ripple: at step ``k`` the first ``k`` records of
    each (shuffled) side have been read, and every pair among them has
    been inspected -- incrementally, via hash indexes, so step ``k``
    costs O(1 + matches) rather than O(k).  The running estimate scales
    the observed match count by the un-sampled volume:

        count ~ matches_seen * (|L| * |R|) / (l_seen * r_seen)

    Args:
        left, right: the two inputs (samples or full relations).
        left_key, right_key: join-key extractors.
        left_population, right_population: sizes of the relations the
            inputs represent; default to the input sizes (exact join
            over the inputs themselves).
        value: optional per-pair contribution ``f(l, r)`` for SUM
            estimates; defaults to 1 (COUNT).
        rng: shuffle source (inputs are shuffled; pass ``shuffle=False``
            if they are already exchangeable).
    """

    def __init__(
        self,
        left: Sequence[Record],
        right: Sequence[Record],
        left_key: Callable[[Record], Hashable],
        right_key: Callable[[Record], Hashable],
        *,
        left_population: int | None = None,
        right_population: int | None = None,
        value: Callable[[Record, Record], float] | None = None,
        rng: random.Random | None = None,
        shuffle: bool = True,
    ) -> None:
        if not left or not right:
            raise ValueError("both join inputs must be non-empty")
        rng = rng or random.Random()
        self._left = list(left)
        self._right = list(right)
        if shuffle:
            rng.shuffle(self._left)
            rng.shuffle(self._right)
        self._left_key = left_key
        self._right_key = right_key
        self._left_population = left_population or len(self._left)
        self._right_population = right_population or len(self._right)
        if self._left_population < len(self._left) \
                or self._right_population < len(self._right):
            raise ValueError("population smaller than the given input")
        self._value = value
        self._left_index: dict[Hashable, list[Record]] = {}
        self._right_index: dict[Hashable, list[Record]] = {}
        self._left_seen = 0
        self._right_seen = 0
        self._matches = 0
        self._match_sum = 0.0

    # -- observers --------------------------------------------------------

    @property
    def left_seen(self) -> int:
        return self._left_seen

    @property
    def right_seen(self) -> int:
        return self._right_seen

    @property
    def matches_seen(self) -> int:
        return self._matches

    @property
    def exhausted(self) -> bool:
        return (self._left_seen == len(self._left)
                and self._right_seen == len(self._right))

    # -- stepping ----------------------------------------------------------

    def step(self) -> None:
        """Advance the ripple one square: one record from each side."""
        if self._left_seen < len(self._left):
            self._absorb(self._left[self._left_seen], left_side=True)
            self._left_seen += 1
        if self._right_seen < len(self._right):
            self._absorb(self._right[self._right_seen], left_side=False)
            self._right_seen += 1

    def run(self, steps: int | None = None) -> None:
        """Advance ``steps`` squares (all the way by default)."""
        remaining = steps
        while not self.exhausted and (remaining is None or remaining > 0):
            self.step()
            if remaining is not None:
                remaining -= 1

    def _absorb(self, record: Record, *, left_side: bool) -> None:
        if left_side:
            key = self._left_key(record)
            self._left_index.setdefault(key, []).append(record)
            partners = self._right_index.get(key, ())
            pairs = ((record, partner) for partner in partners)
        else:
            key = self._right_key(record)
            self._right_index.setdefault(key, []).append(record)
            partners = self._left_index.get(key, ())
            pairs = ((partner, record) for partner in partners)
        for left_record, right_record in pairs:
            self._matches += 1
            if self._value is not None:
                self._match_sum += self._value(left_record, right_record)

    # -- estimates ----------------------------------------------------------

    def estimate_count(self) -> Estimate:
        """Running estimate of ``|L JOIN R|`` with an approximate SE."""
        if self._left_seen == 0 or self._right_seen == 0:
            raise ValueError("step the ripple before estimating")
        pairs_seen = self._left_seen * self._right_seen
        scale = (self._left_population * self._right_population
                 / pairs_seen)
        selectivity = self._matches / pairs_seen
        # i.i.d.-pairs approximation of Var(selectivity); see module
        # docstring.  Effective sample size is the ripple perimeter,
        # not the full rectangle (pairs sharing a tuple are dependent).
        effective = max(2, min(self._left_seen, self._right_seen))
        variance = selectivity * (1 - selectivity) / effective
        se = (self._left_population * self._right_population
              * math.sqrt(variance))
        return Estimate(self._matches * scale, se)

    def estimate_sum(self) -> Estimate:
        """Running estimate of ``SUM(value)`` over the join."""
        if self._value is None:
            raise ValueError("construct the ripple with a value function")
        if self._matches == 0:
            return Estimate(0.0, 0.0)
        count = self.estimate_count()
        mean_contribution = self._match_sum / self._matches
        return Estimate(count.value * mean_contribution,
                        count.standard_error * abs(mean_contribution))

    def snapshots(self, every: int = 10
                  ) -> Iterator[tuple[int, Estimate]]:
        """Run to exhaustion, yielding (steps, count estimate) as it goes."""
        if every < 1:
            raise ValueError("snapshot cadence must be at least 1")
        steps = 0
        while not self.exhausted:
            self.step()
            steps += 1
            if steps % every == 0 or self.exhausted:
                yield steps, self.estimate_count()
