"""Tiered AQP answering: a hot in-memory subsample with escalation.

The geometric file keeps the *full* sample on disk, but most queries
need only a small fraction of it to hit their error target (the paper's
Section 2 arithmetic: required sample size grows with the squared
coefficient of variation, not the data size).  This module adds the
memory tier:

* :class:`HotSubsample` -- a bounded, memory-resident uniform
  sub-reservoir of the offered stream, kept coherent with ingest by the
  ``enable_aqp_cache`` hooks every reservoir front-end grew.  Records
  live in one columnar numpy slab (the record schema's packed dtype),
  so answering from the cache is a handful of array reductions.
* :class:`QueryPlanner` -- given an aggregate with an accuracy target
  ``(error, confidence)``, computes the CLT bound on the cached
  subsample first; if the bound holds the answer is served from memory
  (no engine call, no ``flush_barrier``), otherwise the planner sizes a
  disk draw from the *observed* variance (:func:`required_sample_size`)
  and escalates through the engine's columnar ``snapshot_batch`` path.

Uniformity of the cache is the classic reservoir argument, stated in
the same exchangeability terms as :mod:`repro.core.subsample`: stream
record ``i`` is admitted with probability ``min(1, m / i)`` and, once
the slab is full, overwrites a uniformly chosen resident -- so at every
stream position the cached set is a uniform ``m``-subset of the records
seen (chi-square tested under sustained overwrite churn).
:meth:`HotSubsample.refresh` reuses the ledger machinery directly: the
escalation draw is wrapped, pre-shuffled, in a tail-only
:class:`~repro.core.subsample.SubsampleLedger` and thinned with its
``evict`` tail-pop -- a uniform choice for an exchangeable sequence,
the exact contract the ledger documents.

Coherence protocol: the cache subscribes to the record-bearing ingest
verbs (``offer`` / ``offer_many`` / ``offer_batch``).  Paths that
advance the stream without materialising payloads (count-only
``ingest``, skip-gap feeders) mark the cache *incoherent*; the planner
then escalates every query until a disk draw arrives, and re-seeds the
cache from that draw (a uniform sample of the whole stream), restoring
coherence automatically.  See docs/AQP.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.subsample import SubsampleLedger
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema
from .aqp import BatchQuery
from .clt import ConfidenceInterval, required_sample_size
from .estimators import Estimate, estimate_mean, estimate_sum

#: Default cache budget in records (~400 KB at 100 B records): large
#: enough to certify a 5%-error aggregate at cv <= 1.6, small enough to
#: be irrelevant next to the buffer the structure already holds.
DEFAULT_BUDGET = 4096


class HotSubsample:
    """A bounded memory-resident uniform sub-reservoir of the stream.

    Args:
        schema: record schema; supplies the slab dtype.
        budget: maximum cached records ``m``.
        seed: seed for the cache's *own* numpy generator.  The cache
            never draws from the owning structure's RNG streams, so
            enabling it leaves ingest, flush, and query draws
            bit-exact with an uncached twin (a gated property).
        stream_seen: the owning engine's stream position at enable
            time.  Non-zero means records already passed unobserved,
            so the cache starts incoherent and waits for the first
            escalation draw to seed it.
    """

    def __init__(self, schema: RecordSchema, budget: int = DEFAULT_BUDGET,
                 *, seed: int = 0, stream_seen: int = 0) -> None:
        if budget < 2:
            raise ValueError("cache budget must be at least 2")
        if stream_seen < 0:
            raise ValueError("stream_seen must be non-negative")
        self.schema = schema
        self.budget = budget
        # Effective reservoir size: shrinks only when a refresh draw is
        # smaller than the budget (Algorithm R stays uniform at any
        # fixed m; growing m mid-stream would not).
        self._m = budget
        self._array = np.zeros(budget, dtype=schema.dtype)
        self.fill = 0
        #: Stream records this cache has accounted for (its population).
        self.seen = int(stream_seen)
        #: False once stream records passed without payloads; queries
        #: must escalate until :meth:`refresh` re-seeds the cache.
        self.coherent = stream_seen == 0
        self.admissions = 0
        self.replacements = 0
        self.refreshes = 0
        self._rng = np.random.default_rng(
            np.random.SeedSequence([seed & 0xFFFFFFFF, 0xA9B]))

    # -- ingest subscription ------------------------------------------------

    def observe(self, record: Record | None) -> None:
        """Account one offered stream record (admit w.p. ``m/seen``)."""
        self.seen += 1
        if record is None:
            self.coherent = False
            return
        m = self._m
        if self.fill < m and self.coherent:
            self._array[self.fill] = self._encode(record)
            self.fill += 1
            self.admissions += 1
        elif self._rng.random() * self.seen < m:
            victim = int(self._rng.integers(m))
            self._array[victim] = self._encode(record)
            self.admissions += 1
            self.replacements += 1

    def observe_many(self, records) -> None:
        """Account a batch of offered records (one vectorised draw).

        Same admission law as :meth:`observe` record by record --
        position ``i`` admits with probability ``min(1, m/i)``, each
        overflow admission overwriting a uniformly chosen resident --
        with the uniforms drawn in one block.  ``None`` payloads
        (count-only callers) mark the cache incoherent.
        """
        n = len(records)
        if n == 0:
            return
        if any(r is None for r in records):
            self.seen += n
            self.coherent = False
            return
        rows = self._admitted_rows(
            n, lambda idx: RecordBatch.from_records(
                self.schema, [records[i] for i in idx]).array)
        if rows is not None:
            self._place(rows)

    def observe_batch(self, batch: RecordBatch) -> None:
        """Columnar twin of :meth:`observe_many` (no record objects)."""
        if batch.schema.dtype != self.schema.dtype:
            self.observe_many(list(batch))
            return
        n = len(batch)
        if n == 0:
            return
        rows = self._admitted_rows(n, lambda idx: batch.array[idx])
        if rows is not None:
            self._place(rows)

    def observe_count(self, n: int) -> None:
        """Account ``n`` stream records that carried no payloads."""
        if n < 0:
            raise ValueError("cannot observe a negative count")
        if n == 0:
            return
        self.seen += n
        self.coherent = False

    def _admitted_rows(self, n: int, gather) -> np.ndarray | None:
        """Advance ``seen`` by ``n`` and gather the admitted rows.

        ``gather`` maps admitted batch indices to structured rows, so
        only admitted records pay encoding cost (after warm-up the
        expected count per batch is ``m * ln(last/first)``).
        """
        first = self.seen + 1
        self.seen += n
        m = self._m
        if not self.coherent:
            # The slab no longer represents the stream; keep counting
            # but stop admitting until refresh() re-seeds it.
            return None
        positions = np.arange(first, first + n, dtype=np.float64)
        mask = (self._rng.random(n) * positions) < m
        if first <= m:
            mask[:max(0, m - first + 1)] = True
        index = np.flatnonzero(mask)
        if index.shape[0] == 0:
            return None
        return gather(index)

    def _place(self, rows: np.ndarray) -> None:
        """Write admitted rows: fill free slots, then overwrite victims.

        Victim indices are i.i.d. uniform over the slab (drawn with
        replacement, later writes winning), matching the sequential
        one-victim-per-admission law.
        """
        m = self._m
        warm = min(len(rows), m - self.fill)
        if warm > 0:
            self._array[self.fill:self.fill + warm] = rows[:warm]
            self.fill += warm
        rest = rows[warm:]
        if len(rest):
            victims = self._rng.integers(0, m, size=len(rest))
            self._array[victims] = rest
            self.replacements += len(rest)
        self.admissions += len(rows)

    # -- refresh / repair ----------------------------------------------------

    def refresh(self, sample, seen: int) -> None:
        """Re-seed the cache from a uniform draw of the whole stream.

        ``sample`` is a fresh engine draw (a :class:`RecordBatch` or a
        record list) representing stream position ``seen``.  The draw
        is shuffled into exchangeable order and, when larger than the
        budget, thinned through a tail-only
        :class:`~repro.core.subsample.SubsampleLedger` -- ``evict``
        pops from the end, a uniform choice for a pre-shuffled
        sequence, which is exactly the ledger's documented eviction
        contract.  Restores coherence.
        """
        if isinstance(sample, RecordBatch):
            batch = sample
            if batch.schema.dtype != self.schema.dtype:
                batch = RecordBatch.from_records(self.schema, list(batch))
        else:
            batch = RecordBatch.from_records(self.schema, list(sample))
        if seen < len(batch):
            raise ValueError("stream position smaller than the draw")
        slab = batch.take(self._rng.permutation(len(batch)))
        if len(slab) > self.budget:
            ledger = SubsampleLedger(ident=-1, segment_sizes=(),
                                     first_level=0, tail_size=len(slab),
                                     records=slab)
            ledger.evict(len(slab) - self.budget)
            ledger.check_invariant()
        self._m = min(self.budget, len(slab))
        self.fill = len(slab)
        self._array[:self.fill] = slab.array
        self.seen = int(seen)
        self.coherent = True
        self.refreshes += 1

    # -- queries -------------------------------------------------------------

    def view(self) -> RecordBatch:
        """The cached records as a zero-copy :class:`RecordBatch`."""
        return RecordBatch(self.schema, self._array[:self.fill])

    def query(self) -> BatchQuery:
        """A :class:`BatchQuery` over the cache, scaled by its ``seen``."""
        return BatchQuery(self.view(), self.seen)

    def staleness(self, engine_seen: int | None = None) -> float:
        """Fraction of the stream the cache has not accounted for."""
        if engine_seen is None:
            return 0.0 if self.coherent else 1.0
        if engine_seen <= 0:
            return 0.0
        behind = max(0, engine_seen - self.seen)
        if behind == 0 and not self.coherent:
            return 1.0
        return behind / engine_seen

    def check_invariant(self) -> None:
        """Assert the cache's conservation laws hold."""
        if not 0 <= self.fill <= self._m <= self.budget:
            raise AssertionError(
                f"hot subsample: fill={self.fill} m={self._m} "
                f"budget={self.budget}")
        if self.coherent and self.fill != min(self.seen, self._m):
            raise AssertionError(
                f"hot subsample: fill={self.fill} for seen={self.seen}, "
                f"m={self._m}")

    def _encode(self, record: Record) -> np.ndarray:
        return np.frombuffer(self.schema.encode(record),
                             dtype=self.schema.dtype)[0]


@dataclass(frozen=True)
class AqpAnswer:
    """One planned aggregate answer.

    Attributes:
        estimate: the point estimate with its standard error.
        interval: the CLT interval at the answering confidence.
        tier: ``"cache"`` (served from memory) or ``"disk"``
            (escalated to an engine draw).
        n_used: sample rows the estimate was computed from.
        target_met: whether the interval meets the relative-error
            target (an escalated answer can still miss it when the
            engine cannot supply enough rows).
        k_drawn: escalation draw size (``None`` for cache hits).
        reason: why the planner escalated (``None`` for cache hits).
    """

    estimate: Estimate
    interval: ConfidenceInterval
    tier: str
    n_used: int
    target_met: bool
    k_drawn: int | None = None
    reason: str | None = None

    @property
    def value(self) -> float:
        return self.estimate.value


class QueryPlanner:
    """Tiered SUM/COUNT/AVG answering over any protocol reservoir.

    Args:
        engine: anything implementing the unified
            :class:`~repro.core.protocols.Reservoir` protocol and the
            ``enable_aqp_cache`` hook (``GeometricFile``,
            ``MultipleGeometricFiles``, ``ManagedSample``,
            ``ShardedReservoir``, ``ServeClient``).
        error: default relative-error target, e.g. ``0.01``.
        confidence: default confidence, e.g. ``0.95``.
        budget: hot-subsample budget in records.
        seed: seed for the cache's own RNG (never the engine's).
        min_cache_rows: below this many cached rows the planner always
            escalates (CLT bounds on a handful of rows are noise).
        safety: multiplier on the variance-derived draw size, absorbing
            the sampling error of the variance estimate itself.
        max_draw: hard cap on escalation draws; defaults to the
            engine's per-structure capacity (per *shard* for the
            sharded service -- the largest merged draw that is always
            answerable).
    """

    name = "aqp planner"

    def __init__(self, engine, *, error: float = 0.01,
                 confidence: float = 0.95, budget: int = DEFAULT_BUDGET,
                 seed: int = 0, min_cache_rows: int = 64,
                 safety: float = 1.5, max_draw: int | None = None) -> None:
        if not 0.0 < error:
            raise ValueError("error target must be positive")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if min_cache_rows < 2:
            raise ValueError("min_cache_rows must be at least 2")
        if safety < 1.0:
            raise ValueError("safety multiplier must be >= 1")
        self.engine = engine
        self.error = error
        self.confidence = confidence
        self.min_cache_rows = min_cache_rows
        self.safety = safety
        self.cache: HotSubsample = engine.enable_aqp_cache(budget, seed=seed)
        self._shards = int(getattr(engine, "shards", 1) or 1)
        self._max_draw = (max_draw if max_draw is not None
                          else self._infer_max_draw())
        self._snapshot_batch = getattr(engine, "snapshot_batch", None)
        self.queries = 0
        self.hits = 0
        self.escalations = 0
        self._engine_seen = self.cache.seen
        # Observability hooks (mirrors the structures' _emit pattern).
        self._registry = None
        self._trace = None
        self._obs_name = self.name
        self._event_counters: dict = {}

    # -- aggregates ----------------------------------------------------------

    def sum(self, column: str = "value", *,
            where: tuple[str, float, float] | None = None,
            error: float | None = None,
            confidence: float | None = None) -> AqpAnswer:
        """Population SUM(column), rows outside ``where`` contributing 0.

        ``where`` is an optional range predicate ``(column, low, high)``
        in :meth:`BatchQuery.filter` style.
        """
        return self._answer("sum", column, where, error, confidence)

    def count(self, where: tuple[str, float, float] | None = None, *,
              error: float | None = None,
              confidence: float | None = None) -> AqpAnswer:
        """Population COUNT of rows matching ``where`` (all when None)."""
        return self._answer("count", "value", where, error, confidence)

    def avg(self, column: str = "value", *,
            where: tuple[str, float, float] | None = None,
            error: float | None = None,
            confidence: float | None = None) -> AqpAnswer:
        """Mean of ``column`` over rows matching ``where``."""
        return self._answer("avg", column, where, error, confidence)

    # -- the tiered answer path ----------------------------------------------

    def _answer(self, kind: str, column: str,
                where: tuple[str, float, float] | None,
                error: float | None, confidence: float | None) -> AqpAnswer:
        error = self.error if error is None else error
        confidence = self.confidence if confidence is None else confidence
        self.queries += 1
        cache_q = self._usable_cache()
        if cache_q is not None:
            result = self._estimate(kind, cache_q, column, where)
            if result is not None:
                est, n_used = result
                interval = est.interval(confidence)
                if self._bound_holds(est, interval, error):
                    self.hits += 1
                    self._emit("aqp_cache_hit", aggregate=kind,
                               n=n_used, half_width=interval.half_width,
                               error=error)
                    self._gauges()
                    return AqpAnswer(est, interval, "cache", n_used,
                                     target_met=True)
        return self._escalate(kind, column, where, error, confidence,
                              cache_q)

    def _escalate(self, kind: str, column: str,
                  where: tuple[str, float, float] | None,
                  error: float, confidence: float,
                  cache_q: BatchQuery | None) -> AqpAnswer:
        if not self.cache.coherent:
            reason = "incoherent"
        elif cache_q is None:
            reason = "cold"
        else:
            reason = "bound_missed"
        k = self._plan_draw(kind, column, where, error, confidence, cache_q)
        batch, seen = self._draw(k)
        self._engine_seen = seen
        if not self.cache.coherent:
            # The draw is a uniform sample of the whole stream: re-seed
            # the cache from it so coherence self-heals after count-only
            # ingest (take() below copies, the estimate keeps its rows).
            self.cache.refresh(batch, seen)
        q = BatchQuery(batch, seen)
        result = self._estimate(kind, q, column, where)
        if result is None:
            # Degenerate even at disk size (an empty filter): report a
            # zero estimate with an infinite interval rather than fail.
            est = Estimate(0.0, math.inf)
            n_used = len(q)
        else:
            est, n_used = result
        interval = est.interval(confidence)
        self.escalations += 1
        self._emit("aqp_escalate", aggregate=kind, k=len(q), reason=reason)
        self._gauges()
        return AqpAnswer(est, interval, "disk", n_used,
                         target_met=self._bound_holds(est, interval, error),
                         k_drawn=len(q), reason=reason)

    # -- estimation helpers --------------------------------------------------

    def _usable_cache(self) -> BatchQuery | None:
        cache = self.cache
        if not cache.coherent or cache.fill < self.min_cache_rows:
            return None
        return cache.query()

    def _estimate(self, kind: str, q: BatchQuery, column: str,
                  where: tuple[str, float, float] | None
                  ) -> tuple[Estimate, int] | None:
        """(estimate, rows used) for one aggregate; None if degenerate."""
        n = len(q)
        if n < 2:
            return None
        values = q.batch.column(column).astype(np.float64, copy=False)
        mask = None
        if where is not None:
            mask = q.mask(*where)
        if kind == "avg":
            matching = values if mask is None else values[mask]
            if len(matching) < 2:
                return None
            return estimate_mean(matching), int(len(matching))
        if kind == "count":
            rows = (np.ones(n) if mask is None
                    else mask.astype(np.float64))
        else:
            rows = values if mask is None else np.where(mask, values, 0.0)
        return estimate_sum(rows, q._population), n

    @staticmethod
    def _bound_holds(est: Estimate, interval: ConfidenceInterval,
                     error: float) -> bool:
        if est.value == 0.0:
            return interval.half_width == 0.0
        return interval.half_width <= error * abs(est.value)

    # -- draw sizing ---------------------------------------------------------

    def _plan_draw(self, kind: str, column: str,
                   where: tuple[str, float, float] | None,
                   error: float, confidence: float,
                   cache_q: BatchQuery | None) -> int | None:
        """Choose ``k`` from the cache-observed variance.

        Without a usable cache there is nothing to size from, so the
        planner draws the engine default (``k=None``: the full
        structure / one shard's capacity) -- the same draw the
        pre-planner ``estimate_*`` path always paid.
        """
        ceiling = self._draw_ceiling()
        if cache_q is None or len(cache_q) < 2:
            return ceiling
        values = cache_q.batch.column(column).astype(np.float64, copy=False)
        mask = cache_q.mask(*where) if where is not None else None
        if kind == "avg":
            matching = values if mask is None else values[mask]
            selectivity = len(matching) / len(values)
            if len(matching) < 2 or selectivity <= 0.0:
                return ceiling
            rows, scale = matching, 1.0 / selectivity
        else:
            if kind == "count":
                rows = (np.ones(len(values)) if mask is None
                        else mask.astype(np.float64))
            else:
                rows = values if mask is None else np.where(mask, values, 0.0)
            scale = 1.0
        mean = float(rows.mean())
        std = float(rows.std(ddof=1))
        if mean == 0.0 or std == 0.0:
            return ceiling
        needed = required_sample_size(std, mean, error, confidence)
        k = math.ceil(needed * scale * self.safety)
        k = max(k, self.min_cache_rows)
        if ceiling is not None:
            k = min(k, ceiling)
        return k

    def _draw_ceiling(self) -> int | None:
        """The largest escalation draw that is always answerable."""
        bounds = []
        if self._max_draw is not None:
            bounds.append(self._max_draw)
        seen = max(self.cache.seen, self._engine_seen)
        if seen > 0:
            # Early in the stream a structure holds only `seen` records
            # (one shard roughly seen/shards); never over-ask.
            bounds.append(max(self.min_cache_rows,
                              seen // self._shards))
        return min(bounds) if bounds else None

    def _infer_max_draw(self) -> int | None:
        config = getattr(self.engine, "config", None)
        capacity = getattr(config, "capacity", None)
        if capacity is not None:
            return int(capacity)
        hello = getattr(self.engine, "hello", None)
        if callable(hello):
            try:
                meta = hello()
                capacity = int(meta.get("capacity", 0))
                shards = max(1, int(meta.get("shards", 1)))
                if capacity > 0:
                    self._shards = shards
                    return capacity // shards
            except Exception:
                return None
        capacity = getattr(self.engine, "capacity", None)
        if capacity is not None:
            return int(capacity) // self._shards
        return None

    def _draw(self, k: int | None):
        """One engine snapshot, columnar when the engine can."""
        try:
            if self._snapshot_batch is not None:
                return self._snapshot_batch(k)
        except ValueError:
            # k outran what the engine currently holds (a racing
            # estimate early in the stream): fall back to the always-
            # answerable engine default.
            return self._snapshot_batch(None)
        except TypeError:
            self._snapshot_batch = None  # engine has no columnar path
        records, seen = self.engine.snapshot(k)
        return RecordBatch.from_records(self.cache.schema, records), seen

    # -- observability -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of planned queries answered from the cache."""
        return self.hits / self.queries if self.queries else 0.0

    def instrument(self, registry, trace=None, *,
                   name: str | None = None) -> None:
        """Attach observers: ``aqp_cache_hit``/``aqp_escalate`` trace
        events plus ``aqp.hit_rate`` / ``aqp.cache_staleness`` /
        ``aqp.cache_fill`` gauges."""
        self._obs_name = name if name is not None else self.name
        self._registry = registry
        self._trace = trace
        self._event_counters = {}

    def _emit(self, kind: str, **fields) -> None:
        if self._registry is not None:
            counter = self._event_counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    f"events.{kind}", structure=self._obs_name)
                self._event_counters[kind] = counter
            counter.inc()
        if self._trace is not None:
            self._trace.emit(kind, self._obs_name, 0.0, **fields)

    def _gauges(self) -> None:
        if self._registry is None:
            return
        labels = {"structure": self._obs_name}
        self._registry.gauge("aqp.hit_rate", **labels).set(self.hit_rate)
        self._registry.gauge("aqp.cache_staleness", **labels).set(
            self.cache.staleness(self._engine_seen))
        self._registry.gauge("aqp.cache_fill", **labels).set(self.cache.fill)
