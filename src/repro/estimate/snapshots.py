"""Shared snapshot estimators: one home for ``estimate_sum/count/avg``.

Three call sites grew near-identical copies of the same loop -- build
per-record contribution rows from a ``(records, seen)`` snapshot, then
run the CLT estimator: :meth:`repro.serve.ServeClient.estimate_sum`,
:meth:`repro.service.ShardedReservoir.estimate_sum`, and the
:class:`~repro.estimate.aqp.SampleQuery` aggregate methods.
:class:`SnapshotEstimator` is the single implementation they now all
delegate to; the old methods keep their exact signatures as thin shims.

The SUM/COUNT convention everywhere: records failing the predicate
contribute 0 over the *whole* sample (the matching fraction is itself
estimated from the sample), so the scale-up by the population size stays
unbiased.  AVG restricts to the matching rows and needs no population.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..storage.records import Record
from .estimators import Estimate, estimate_mean, estimate_sum


class SnapshotEstimator:
    """CLT aggregate estimates over one ``(records, seen)`` snapshot.

    Args:
        records: a uniform sample of the stream (record objects).
        seen: the stream position the sample represents (the population
            size SUM/COUNT scale up by); ``None`` permits AVG only.
    """

    def __init__(self, records: Sequence[Record],
                 seen: int | None = None) -> None:
        self._records = records
        if seen is not None and seen < len(records):
            raise ValueError("population smaller than the sample")
        self._seen = seen

    def __len__(self) -> int:
        return len(self._records)

    def sum(self, *, value: Callable[[Record], float] | None = None,
            predicate: Callable[[Record], bool] | None = None) -> Estimate:
        """Population SUM(value) with non-matching records contributing 0."""
        self._need_population()
        value = value or (lambda r: r.value)
        rows = [value(r) if (predicate is None or predicate(r)) else 0.0
                for r in self._records]
        return estimate_sum(rows, self._seen)

    def count(self, predicate: Callable[[Record], bool] | None = None
              ) -> Estimate:
        """Population COUNT of records satisfying ``predicate``."""
        self._need_population()
        rows = [1.0 if (predicate is None or predicate(r)) else 0.0
                for r in self._records]
        return estimate_sum(rows, self._seen)

    def avg(self, *, value: Callable[[Record], float] | None = None,
            predicate: Callable[[Record], bool] | None = None) -> Estimate:
        """Mean of ``value`` over records matching ``predicate``."""
        value = value or (lambda r: r.value)
        rows = [value(r) for r in self._records
                if predicate is None or predicate(r)]
        if len(rows) < 2:
            raise ValueError(
                "predicate matched fewer than two sampled records")
        return estimate_mean(rows)

    def _need_population(self) -> None:
        if self._seen is None:
            raise ValueError(
                "population_size is required for SUM/COUNT scale-up")
