"""Observability: metrics, event tracing, and the unified ``stats()``.

The paper's argument is an I/O-cost argument; this package makes those
costs first-class operational data instead of benchmark-only internals.
Three pieces:

* :class:`MetricsRegistry` (with :class:`Counter`, :class:`Gauge`,
  :class:`Histogram`, :class:`Timer`) -- a zero-dependency metrics
  home every layer writes into;
* :class:`TraceSink` / :class:`TraceEvent` -- a structured event ring
  buffer (flushes, segment overwrites, dummy rotations, checkpoints,
  overflows, zone queries) with JSONL streaming;
* :class:`ReservoirStats` -- the frozen snapshot every reservoir,
  device, and file structure returns from its ``stats()`` method.

Wiring is one call::

    registry, trace = MetricsRegistry(), TraceSink()
    reservoir.instrument(registry, trace)
    reservoir.ingest(10_000_000)
    print(registry.to_json())
    print(reservoir.stats().records_per_second)

Attaching observers never charges simulated I/O: instrumented and
uninstrumented runs produce bit-identical clocks (tested).
"""

from .deprecation import reset_deprecation_warnings, warn_deprecated
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    Timer,
)
from .stats import ReservoirStats, aggregate_stats, stats_from_dict
from .trace import EVENT_KINDS, TraceEvent, TraceSink

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "ReservoirStats",
    "Timer",
    "TraceEvent",
    "TraceSink",
    "aggregate_stats",
    "reset_deprecation_warnings",
    "stats_from_dict",
    "warn_deprecated",
]
