"""Deprecation shims for the pre-``stats()`` accessors.

The unified observability API replaced a zoo of ad-hoc accessors
(``reservoir.seen``, ``StripedBlockDevice.combined_stats()``,
``ZoneMapIndex.last_stats``, ...).  The old names keep working through
this module: :func:`warn_deprecated` raises a ``DeprecationWarning``
once per (old name) per process -- once, not per call, because several
of the shimmed accessors sit on ingestion hot paths and per-call
warning machinery would dominate tight loops (and flood pytest's
warning capture).

``docs/API.md`` carries the old-name -> new-name migration table.
"""

from __future__ import annotations

import warnings

_warned: set[str] = set()


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit one ``DeprecationWarning`` per process for ``old``.

    Args:
        old: the legacy accessor, e.g. ``"StreamReservoir.clock"``.
        replacement: what callers should use instead, e.g.
            ``"stats().clock"``.
    """
    if old in _warned:
        return
    _warned.add(old)
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead "
        f"(see docs/API.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which deprecations already fired (test helper)."""
    _warned.clear()
