"""A zero-dependency metrics registry.

The paper's whole argument is a cost argument -- seeks versus
sequential blocks -- so the library's operational story needs those
quantities to be *observable* from the outside, not buried in ad-hoc
attributes.  This module provides the smallest useful vocabulary:

* :class:`Counter` -- a monotonically increasing total (seeks, flushes,
  blocks written);
* :class:`Gauge` -- a point-in-time value (subsamples alive, buffer
  fill);
* :class:`Histogram` -- a summary of an observed distribution (records
  per flush, seconds per checkpoint);
* :class:`Timer` -- a histogram of wall-clock durations with a context
  manager front end;
* :class:`MetricsRegistry` -- the get-or-create home for all of them,
  keyed by ``(name, labels)`` and dumpable as JSON.

Instrumentation is deliberately *passive*: metrics mirror quantities
that the structures compute anyway, so attaching a registry never
charges simulated I/O and never perturbs :class:`~repro.storage.disk_model.DiskModel`
clocks (a tested property).  Counters accept float increments so that
simulated seconds can be mirrored bit-exactly -- the reconciliation
tests assert registry values *equal* the disk model's totals.
"""

from __future__ import annotations

import json
import math
import time
from typing import IO, Iterator, Mapping

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common base: a name plus a frozen label set."""

    kind = "metric"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)

    def as_dict(self) -> dict:
        """JSON-ready representation (name, labels, kind, value fields)."""
        entry = {"name": self.name, "kind": self.kind}
        if self.labels:
            entry["labels"] = dict(sorted(self.labels.items()))
        entry.update(self._value_fields())
        return entry

    def _value_fields(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.labels}>"


class Counter(Metric):
    """A monotonically increasing total.

    Accepts float increments so simulated seconds can be mirrored
    exactly; negative increments are rejected.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (>= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def reset(self) -> None:
        """Zero the total (mirrors :meth:`DiskModel.reset` semantics)."""
        self.value = 0.0

    def _value_fields(self) -> dict:
        return {"value": self.value}


class Gauge(Metric):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        """Adjust the value by ``amount`` (may be negative)."""
        self.value += amount

    def _value_fields(self) -> dict:
        return {"value": self.value}


class Histogram(Metric):
    """Count / total / min / max summary of an observed distribution.

    Deliberately bucket-free: the consumers here (benchmark reports,
    JSON dumps) want compact summaries, and anything finer belongs in
    the trace, which keeps every event.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample of the distribution."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Average of the observed samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def _value_fields(self) -> dict:
        fields = {"count": self.count, "total": self.total,
                  "mean": self.mean}
        if self.count:
            fields["min"] = self.min
            fields["max"] = self.max
        return fields


class Timer(Histogram):
    """A histogram of durations with a context-manager front end.

    Example::

        with registry.timer("bench.wall_seconds", structure="geo file"):
            run_until(reservoir, horizon)
    """

    kind = "timer"

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Get-or-create home for every metric, keyed by ``(name, labels)``.

    The registry is the unit of wiring: build one, pass it to
    ``reservoir.instrument(registry)`` (or a device's ``instrument``),
    and every layer underneath contributes to the same namespace.
    Asking twice for the same name and labels returns the *same* metric
    object, which is how several spindles of a striped volume share one
    set of counters.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], Metric] = {}

    def _get_or_create(self, cls: type[Metric], name: str,
                       labels: Mapping[str, str]) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the :class:`Gauge` for ``(name, labels)``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the :class:`Histogram` for ``(name, labels)``."""
        return self._get_or_create(Histogram, name, labels)

    def timer(self, name: str, **labels: str) -> Timer:
        """Get or create the :class:`Timer` for ``(name, labels)``."""
        return self._get_or_create(Timer, name, labels)

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def get(self, name: str, **labels: str) -> Metric | None:
        """The registered metric, or ``None`` (never creates)."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Shorthand: a counter/gauge's value, 0.0 when unregistered."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        return getattr(metric, "value", 0.0)

    def as_dict(self) -> dict:
        """The whole registry as one JSON-ready mapping."""
        return {"metrics": [m.as_dict() for m in self]}

    def to_json(self, indent: int | None = 2) -> str:
        """The whole registry serialised as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def dump(self, sink: IO[str], indent: int | None = 2) -> None:
        """Write :meth:`to_json` (plus a trailing newline) to ``sink``."""
        sink.write(self.to_json(indent=indent))
        sink.write("\n")
