"""The unified ``stats()`` payload: :class:`ReservoirStats`.

Before this module, cost accounting was scattered: ``DiskModel.stats``,
``StripedBlockDevice.combined_stats()``, ``ZoneMapIndex.last_stats``,
``BiasedGeometricFile.overflow_events``, plus ``seen`` /
``samples_added`` / ``clock`` attributes on every reservoir.  Every
public structure now answers one question the same way::

    stats = reservoir.stats()
    stats.samples_added, stats.clock, stats.io.seeks, stats.extra

The object is a frozen snapshot -- safe to keep across further
ingestion -- and ``as_dict()`` makes it JSON-ready for the CLI's
``--metrics`` dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from types import MappingProxyType
from typing import Mapping, Sequence

from ..storage.disk_model import DiskStats


@dataclass(frozen=True)
class ReservoirStats:
    """Frozen snapshot of one reservoir maintainer's progress and cost.

    Attributes:
        name: the structure's benchmark name ("geo file", "scan", ...).
        capacity: reservoir size ``N`` in records.
        seen: stream records presented so far.
        samples_added: records admitted into the reservoir (the
            figures' y-axis).
        flushes: buffer flushes performed (0 for structures that do not
            flush, e.g. the virtual-memory baseline's steady state).
        clock: simulated disk seconds consumed so far.
        io: cumulative device counters (seeks, blocks, seconds), or
            ``None`` when the backing device has no cost model.
        extra: structure-specific counters (stack_overflows,
            overflow_events, n_cohorts, pool hit ratio, ...), read-only.
    """

    name: str
    capacity: int
    seen: int
    samples_added: int
    flushes: int
    clock: float
    io: DiskStats | None = None
    extra: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the extras so the snapshot really is immutable.
        object.__setattr__(self, "extra",
                           MappingProxyType(dict(self.extra)))

    @property
    def records_per_second(self) -> float:
        """Admission throughput against the simulated clock."""
        if self.clock <= 0:
            return 0.0
        return self.samples_added / self.clock

    @property
    def seeks(self) -> int:
        """Device seek total (0 when there is no cost model)."""
        return self.io.seeks if self.io is not None else 0

    def as_dict(self) -> dict:
        """JSON-ready representation (io flattened to a sub-mapping)."""
        entry = {
            "name": self.name,
            "capacity": self.capacity,
            "seen": self.seen,
            "samples_added": self.samples_added,
            "flushes": self.flushes,
            "clock": self.clock,
            "records_per_second": self.records_per_second,
        }
        if self.io is not None:
            entry["io"] = {
                "seeks": self.io.seeks,
                "reads": self.io.reads,
                "writes": self.io.writes,
                "blocks_read": self.io.blocks_read,
                "blocks_written": self.io.blocks_written,
                "sequential_blocks": self.io.sequential_blocks,
                "seek_seconds": self.io.seek_seconds,
                "transfer_seconds": self.io.transfer_seconds,
            }
        if self.extra:
            entry["extra"] = dict(self.extra)
        return entry


def stats_from_dict(entry: Mapping) -> ReservoirStats:
    """Rebuild a :class:`ReservoirStats` from :meth:`~ReservoirStats.as_dict`.

    The sharded service's workers live in other processes and ship
    their snapshots as plain dicts (a frozen ``MappingProxyType`` does
    not pickle); this is the receiving side.  Derived fields
    (``records_per_second``) are ignored -- they are recomputed from
    the counters.
    """
    io = entry.get("io")
    if io is not None:
        valid = {f.name for f in dataclass_fields(DiskStats)}
        io = DiskStats(**{k: v for k, v in io.items() if k in valid})
    return ReservoirStats(
        name=entry["name"],
        capacity=entry["capacity"],
        seen=entry["seen"],
        samples_added=entry["samples_added"],
        flushes=entry["flushes"],
        clock=entry["clock"],
        io=io,
        extra=entry.get("extra", {}),
    )


def aggregate_stats(snapshots: Sequence[ReservoirStats], *,
                    name: str = "service",
                    extra: Mapping | None = None) -> ReservoirStats:
    """Fan ``S`` per-shard snapshots into one service-level snapshot.

    Counter semantics follow the physical deployment: ``seen`` /
    ``samples_added`` / ``flushes`` / ``capacity`` and every I/O
    counter are *sums* over shards, while ``clock`` is the *maximum*
    shard clock -- the shards run concurrently on independent devices,
    so the service finishes when the slowest spindle does.  The
    aggregate's ``records_per_second`` therefore reports parallel
    throughput, which is the number the ``--shards`` benchmark gates
    on.

    ``extra`` (plus a ``shards`` count and per-shard ``seen`` list) is
    attached to the aggregate's ``extra`` mapping.
    """
    if not snapshots:
        raise ValueError("cannot aggregate zero snapshots")
    io = None
    if all(s.io is not None for s in snapshots):
        totals = {}
        for f in dataclass_fields(DiskStats):
            totals[f.name] = sum(getattr(s.io, f.name) for s in snapshots)
        io = DiskStats(**totals)
    merged_extra = {
        "shards": len(snapshots),
        "seen_per_shard": [s.seen for s in snapshots],
    }
    if extra:
        merged_extra.update(extra)
    return ReservoirStats(
        name=name,
        capacity=sum(s.capacity for s in snapshots),
        seen=sum(s.seen for s in snapshots),
        samples_added=sum(s.samples_added for s in snapshots),
        flushes=sum(s.flushes for s in snapshots),
        clock=max(s.clock for s in snapshots),
        io=io,
        extra=merged_extra,
    )
