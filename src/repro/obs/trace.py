"""Structured event tracing with a bounded ring buffer.

Metrics answer "how much"; traces answer "what happened, in what
order".  Every interesting decision a structure makes -- a buffer
flush, a segment overwrite, a dummy rotation in the multi-file
construction, a checkpoint, a weight-overflow rescale, a zone-map
query -- is emitted as a :class:`TraceEvent` carrying the simulated
clock at emission time, so a trace can be lined up against the
throughput curves the benchmarks draw.

:class:`TraceSink` retains the most recent ``capacity`` events in a
ring buffer (a long benchmark run cannot exhaust memory) and can
optionally stream every event as it happens to a JSONL file, which is
what the ``repro-bench --trace PATH`` flag does.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Iterator, Mapping

#: Event kinds the library itself emits; user code may add its own.
EVENT_KINDS = (
    "flush",
    "segment_overwrite",
    "dummy_rotation",
    "checkpoint",
    "overflow",
    "zone_query",
    # Sharded-service events (repro.service): a worker respawned from
    # its checkpoint, a merged cross-shard query answered, and a
    # bounded shard queue pushing back on the producer.
    "shard_recovery",
    "merged_query",
    "backpressure",
    # Pipelined flush engine (repro.pipeline): a flush handed to the
    # background writer, and an elevator-coalesced I/O plan.
    "flush_pipelined",
    "io_coalesced",
    # Serving layer (repro.serve): one request dispatched (carrying op,
    # status, and latency), and a client throttled by its token bucket
    # or the admission controller.
    "serve_request",
    "rate_limited",
    # Tiered AQP planner (repro.estimate.planner): a query answered
    # from the memory-resident hot subsample within its error target,
    # and a query escalated to a right-sized disk draw.
    "aqp_cache_hit",
    "aqp_escalate",
    # Shared-memory IPC plane (repro.service.shm / pool): one columnar
    # slab moved zero-copy over a shard's ring, in either direction.
    "ipc_slab",
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event.

    Attributes:
        seq: global emission index (0-based, never reused; gaps never
            occur -- the ring buffer drops old events, not sequence
            numbers).
        clock: the emitting structure's simulated disk clock, in
            seconds, at emission time.
        kind: event type ("flush", "segment_overwrite", ...).
        source: the emitting structure's name ("geo file", ...).
        fields: event-specific payload (flush index, level, ...).
    """

    seq: int
    clock: float
    kind: str
    source: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation (one JSONL line's content)."""
        return {"seq": self.seq, "clock": self.clock, "kind": self.kind,
                "source": self.source, "fields": dict(self.fields)}


class TraceSink:
    """Bounded in-memory event store with optional JSONL streaming.

    Args:
        capacity: ring-buffer size; the oldest events are dropped once
            exceeded (``dropped`` counts them).
        stream: optional text file-like object; every event is also
            written to it immediately as one JSON line.
    """

    def __init__(self, capacity: int = 65536,
                 stream: IO[str] | None = None) -> None:
        if capacity < 1:
            raise ValueError("trace sink needs room for at least one event")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._stream = stream
        self._next_seq = 0
        self._kind_counts: dict[str, int] = {}

    def emit(self, kind: str, source: str, clock: float,
             **fields: Any) -> TraceEvent:
        """Record one event; returns the stored :class:`TraceEvent`."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; "
                             f"expected one of {EVENT_KINDS}")
        event = TraceEvent(seq=self._next_seq, clock=clock, kind=kind,
                           source=source, fields=fields)
        self._next_seq += 1
        self._events.append(event)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if self._stream is not None:
            self._stream.write(json.dumps(event.as_dict()))
            self._stream.write("\n")
        return event

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the sink's lifetime (incl. dropped)."""
        return self._next_seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer so far."""
        return self._next_seq - len(self._events)

    def events(self, kind: str | None = None,
               source: str | None = None) -> list[TraceEvent]:
        """Retained events, optionally filtered by kind and/or source."""
        return [e for e in self._events
                if (kind is None or e.kind == kind)
                and (source is None or e.source == source)]

    def counts(self) -> dict[str, int]:
        """All-time event counts by kind (not just retained events)."""
        return dict(sorted(self._kind_counts.items()))

    def to_jsonl(self, sink: IO[str]) -> None:
        """Write the retained events to ``sink``, one JSON line each."""
        for event in self._events:
            sink.write(json.dumps(event.as_dict()))
            sink.write("\n")
