"""Pipelined flush engine: flush plans, I/O schedulers, writer thread.

See :mod:`repro.pipeline.engine` for the architecture and the
determinism/fault contracts; ``docs/PERFORMANCE.md`` has the prose
version with diagrams.
"""

from .engine import FlushEngine, PipelineWriteError
from .plan import FlushPlan, execute_ops
from .scheduler import (
    SCHEDULER_NAMES,
    ElevatorScheduler,
    FifoScheduler,
    make_scheduler,
)

__all__ = [
    "ElevatorScheduler",
    "FifoScheduler",
    "FlushEngine",
    "FlushPlan",
    "PipelineWriteError",
    "SCHEDULER_NAMES",
    "execute_ops",
    "make_scheduler",
]
