"""The flush engine: synchronous or pipelined execution of flush plans.

One :class:`FlushEngine` sits between a reservoir structure and its
block device.  Every flush the structure performs is recorded as a
:class:`~repro.pipeline.plan.FlushPlan` on the ingest thread (all RNG
draws, victim selection, and payload encoding happen at plan-build
time), then handed to the engine:

* **Synchronous** (``pipeline=False``, the default): the scheduled op
  sequence executes inline before ``submit`` returns -- identical
  behaviour to the legacy direct-to-device flush.
* **Pipelined** (``pipeline=True``): a depth-1 queue feeds a daemon
  writer thread.  ``submit`` blocks only while the *previous* plan is
  still draining (double buffering: the ingest thread refills a fresh
  buffer while the writer drains the sealed one), then enqueues and
  returns.  The writer only moves already-encoded bytes; it never
  touches structure state or RNG, so both modes issue the same device
  ops in the same per-plan order and the run is bit-exact either way.

``barrier()`` drains the queue -- required before any read of device
state (queries on retain devices, checkpoints, ``stats()``).

**Simulated timeline.** The paper's cost model is a simulated disk
clock, so overlap is modelled the same way: configure ``stream_rate``
(records/second of CPU-side admission work) and the engine tracks an
``elapsed_seconds`` timeline where filling the next buffer overlaps
the previous plan's disk time.  Synchronous elapsed is
``sum(fill_i + disk_i)``; pipelined elapsed is
``fill_1 + sum(max(fill_i, disk_{i-1})) + disk_last``.  On a
transfer-dominated flush (``disk <= fill``) the pipeline hides the
whole disk drain and throughput approaches 2x.

**Fault contract.** If the writer thread raises, the engine parks the
exception and drops any queued plans; the *next* ``submit``,
``barrier``, or explicit ``check()`` raises
:class:`PipelineWriteError` wrapping the original.  The reservoir's
in-memory ledgers are authoritative (sample state never lives only on
the device mid-flush), so after ``clear_fault()`` the structure keeps
working with no record loss -- only the device's cost accounting for
the failed plan is short.
"""

from __future__ import annotations

import queue
import threading

from .plan import FlushPlan, execute_ops
from .scheduler import FifoScheduler, make_scheduler


class PipelineWriteError(RuntimeError):
    """A background flush failed; raised on the next structure call."""


class FlushEngine:
    """Executes flush plans, inline or on a background writer thread."""

    def __init__(self, device, *, pipeline: bool = False,
                 scheduler=None) -> None:
        self.device = device
        self.pipeline = bool(pipeline)
        self.scheduler = scheduler if scheduler is not None \
            else FifoScheduler()
        self._queue: queue.Queue | None = None
        self._thread: threading.Thread | None = None
        self._fault: BaseException | None = None
        self._pending_disk = 0.0
        # Cumulative counters (engine stats / obs export).
        self.submitted = 0
        self.executed = 0
        self.dropped = 0
        self.extents_in = 0
        self.bursts_out = 0
        self.merged_extents = 0
        self.bridged_blocks = 0
        self.overhead_saved = 0
        self.elapsed_seconds = 0.0
        self.fill_seconds = 0.0
        self.disk_seconds = 0.0
        self.stall_seconds = 0.0

    # -- construction ---------------------------------------------------

    @classmethod
    def for_config(cls, device, config) -> "FlushEngine":
        """Build from the structure-config knobs (pipeline/io_scheduler)."""
        return cls(
            device,
            pipeline=getattr(config, "pipeline", False),
            scheduler=make_scheduler(
                getattr(config, "io_scheduler", "fifo")),
        )

    # -- fault handling -------------------------------------------------

    @property
    def fault(self) -> BaseException | None:
        return self._fault

    def check(self) -> None:
        """Raise the parked writer-thread exception, if any."""
        if self._fault is not None:
            raise PipelineWriteError(
                "background flush failed; reservoir state is intact "
                "(in-memory ledgers are authoritative) but the device "
                "write did not complete -- clear_fault() to continue"
            ) from self._fault

    def clear_fault(self) -> None:
        self._fault = None

    # -- submission -----------------------------------------------------

    def submit(self, plan: FlushPlan, *, fill_seconds: float = 0.0):
        """Schedule and execute (or enqueue) one flush plan.

        Returns the scheduler's coalescing summary for this plan so the
        caller can emit trace events without re-deriving it.
        """
        self.check()
        ops, summary = self.scheduler.schedule(plan, self.device)
        self.submitted += 1
        self.extents_in += summary["extents_in"]
        self.bursts_out += summary["bursts_out"]
        self.merged_extents += summary["merged"]
        self.bridged_blocks += summary["bridged_blocks"]
        self.overhead_saved += summary["overhead_saved"]
        self.fill_seconds += fill_seconds
        if not self.pipeline:
            disk = self._execute(ops)
            self.elapsed_seconds += fill_seconds + disk
            return summary
        q = self._ensure_writer()
        # Depth-1 queue: wait for the previous plan to finish draining.
        # While the writer was draining it, the ingest thread was
        # filling this plan's buffer -- the overlap the timeline models.
        q.join()
        self.check()
        prev_disk = self._pending_disk
        if self.submitted == 1 + self.dropped or prev_disk == 0.0:
            self.elapsed_seconds += fill_seconds
        else:
            self.elapsed_seconds += max(fill_seconds, prev_disk)
            self.stall_seconds += max(0.0, prev_disk - fill_seconds)
        self._pending_disk = 0.0
        q.put(ops)
        return summary

    def barrier(self) -> None:
        """Block until every submitted plan has hit the device."""
        if self._queue is not None:
            self._queue.join()
            if self._pending_disk:
                self.elapsed_seconds += self._pending_disk
                self.stall_seconds += self._pending_disk
                self._pending_disk = 0.0
        self.check()

    def close(self) -> None:
        """Drain outstanding plans and stop the writer thread.

        The engine stays usable: a later ``submit`` lazily restarts the
        writer.  Parked faults survive close and still raise on
        ``check()``.
        """
        if self._thread is None:
            if self._fault is not None:
                self.check()
            return
        self._queue.join()
        if self._pending_disk:
            self.elapsed_seconds += self._pending_disk
            self.stall_seconds += self._pending_disk
            self._pending_disk = 0.0
        self._queue.put(None)
        self._thread.join()
        self._queue = None
        self._thread = None
        self.check()

    # -- introspection --------------------------------------------------

    @property
    def queue_depth(self) -> int:
        q = self._queue
        return q.unfinished_tasks if q is not None else 0

    def stats(self) -> dict:
        return {
            "pipelined": self.pipeline,
            "scheduler": self.scheduler.name,
            "submitted": self.submitted,
            "executed": self.executed,
            "dropped": self.dropped,
            "extents_in": self.extents_in,
            "bursts_out": self.bursts_out,
            "merged_extents": self.merged_extents,
            "bridged_blocks": self.bridged_blocks,
            "overhead_saved": self.overhead_saved,
            "elapsed_seconds": self.elapsed_seconds,
            "fill_seconds": self.fill_seconds,
            "disk_seconds": self.disk_seconds,
            "stall_seconds": self.stall_seconds,
        }

    # -- internals ------------------------------------------------------

    def _execute(self, ops) -> float:
        """Run ops on the device; return the simulated disk seconds."""
        before = self._device_clock()
        execute_ops(ops, self.device)
        self.executed += 1
        disk = self._device_clock() - before
        self.disk_seconds += disk
        return disk

    def _device_clock(self) -> float:
        # ``clock`` is a property on cost-modelled devices (simulated,
        # striped); byte-only backends have no clock at all.
        return getattr(self.device, "clock", 0.0)

    def _ensure_writer(self) -> queue.Queue:
        if self._thread is None or not self._thread.is_alive():
            self._queue = queue.Queue(maxsize=1)
            self._thread = threading.Thread(
                target=self._writer_loop, args=(self._queue,),
                name="repro-flush-writer", daemon=True,
            )
            self._thread.start()
        return self._queue

    def _writer_loop(self, q: queue.Queue) -> None:
        while True:
            ops = q.get()
            try:
                if ops is None:
                    return
                if self._fault is not None:
                    # A previous plan failed: drop the rest rather than
                    # write past the fault (the device may be wedged).
                    self.dropped += 1
                    continue
                self._pending_disk = self._execute(ops)
            except BaseException as exc:  # noqa: BLE001 - parked for caller
                self._fault = exc
            finally:
                q.task_done()
