"""Flush plans: a recorded sequence of device operations.

A flush used to talk to its :class:`~repro.storage.device.BlockDevice`
directly, interleaving segment writes, stack writes/reads, and the
modelled per-segment overhead seeks as it walked the ledgers.  A
:class:`FlushPlan` records exactly that op sequence instead -- every
payload already encoded, every address already resolved -- so the plan
can be (a) executed later on a writer thread without touching any
structure state or RNG, and (b) reordered by an
:class:`~repro.pipeline.scheduler.IOScheduler` before execution.

Op encoding (plain tuples; the writer thread only iterates them):

* ``("write", block, n_blocks, data_or_None, overhead_seeks)`` --
  a segment/stack/cohort write.  ``data=None`` charges through
  :func:`~repro.storage.device.write_zeros` (cost-only call sites),
  bytes go through :func:`~repro.storage.device.write_payload`; both
  produce identical :class:`~repro.storage.disk_model.DiskStats`
  charges.  ``overhead_seeks`` models the unaligned-boundary
  read-modify-write bill (``extra_seeks_per_segment``) and is charged
  *after* the write, exactly where the legacy inline path charged it.
* ``("read", block, n_blocks)`` -- a cost-charging read
  (:func:`~repro.storage.device.read_discard`).
* ``("seek", count)`` -- bare random head movements with no transfer.
* ``("stream", n_blocks)`` -- emitted only by the elevator scheduler:
  the head streams past ``n_blocks`` it neither reads nor writes
  instead of seeking (cheaper than a seek for small gaps; see
  :meth:`~repro.storage.disk_model.DiskModel.stream_past`).

Determinism contract: a plan is built entirely on the ingest thread
(all RNG consumption, all payload encoding happens at build time);
executing the same op sequence produces the same device charges
whether it runs inline or on the writer thread.
"""

from __future__ import annotations

from ..storage.device import read_discard, write_payload, write_zeros

WRITE = "write"
READ = "read"
SEEK = "seek"
STREAM = "stream"


class FlushPlan:
    """One flush's device operations, recorded in issue order."""

    __slots__ = ("ops", "n_writes", "n_reads", "n_seeks", "records")

    def __init__(self) -> None:
        self.ops: list[tuple] = []
        self.n_writes = 0
        self.n_reads = 0
        self.n_seeks = 0
        #: Records drained into this plan (timeline modelling).
        self.records = 0

    def __len__(self) -> int:
        return len(self.ops)

    def write(self, block: int, n_blocks: int,
              data: bytes | None = None, *, overhead: int = 0) -> None:
        """Record one extent write plus its modelled overhead seeks."""
        if n_blocks <= 0:
            # The legacy inline path still charged the per-segment
            # overhead when the write itself clamped to nothing.
            self.seek(overhead)
            return
        self.ops.append((WRITE, block, n_blocks, data, overhead))
        self.n_writes += 1
        self.n_seeks += overhead

    def read(self, block: int, n_blocks: int) -> None:
        """Record one cost-charging read."""
        if n_blocks <= 0:
            return
        self.ops.append((READ, block, n_blocks))
        self.n_reads += 1

    def seek(self, count: int = 1) -> None:
        """Record ``count`` bare random head movements."""
        if count <= 0:
            return
        self.ops.append((SEEK, count))
        self.n_seeks += count


def _device_seek(device):
    """The device's bare-seek charger, or ``None`` for unmodelled devices.

    Mirrors the legacy ``FileLayout.charge_seek`` duck typing: a device
    may expose ``charge_seek`` directly (striped volumes) or through its
    cost ``model``; byte-only backends charge nothing.
    """
    direct = getattr(device, "charge_seek", None)
    if direct is not None:
        return direct
    model = getattr(device, "model", None)
    if model is not None:
        return model.charge_seek
    return None


def execute_ops(ops, device) -> None:
    """Run a (possibly scheduled) op sequence against ``device``.

    This is the *only* code that touches the device on behalf of a
    plan; the synchronous and pipelined engines both funnel through it,
    which is what makes twin-engine runs bit-exact.
    """
    charge_seek = _device_seek(device)
    stream = getattr(device, "charge_stream", None)
    for op in ops:
        kind = op[0]
        if kind == WRITE:
            _, block, n_blocks, data, overhead = op
            if data is None:
                write_zeros(device, block, n_blocks)
            else:
                write_payload(device, block, n_blocks, data)
            if overhead and charge_seek is not None:
                for _ in range(overhead):
                    charge_seek()
        elif kind == READ:
            read_discard(device, op[1], op[2])
        elif kind == SEEK:
            if charge_seek is not None:
                for _ in range(op[1]):
                    charge_seek()
        elif kind == STREAM:
            if stream is not None:
                stream(op[1])
        else:  # pragma: no cover - corrupt plan
            raise AssertionError(f"unknown plan op {kind!r}")
