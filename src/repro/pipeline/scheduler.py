"""I/O schedulers: reorder a flush plan before it hits the device.

``FifoScheduler`` replays a plan exactly as recorded -- it is the
identity transform and therefore reproduces the legacy inline flush
bit for bit.  ``ElevatorScheduler`` implements the classic one-way
elevator sweep: all writes in a plan are sorted by block address,
exactly-adjacent extents are merged into single ``write_blocks``
bursts, and small gaps between bursts are *streamed past* (the head
keeps moving at transfer rate) instead of paying a full random seek.
Reads keep their recorded relative order but run after the writes;
within a single flush plan the write and read extents never alias
(stack reads address regions whose content is cost-modelled only), so
the reorder is safe.

Both schedulers are pure functions of the plan: they consume no RNG
and do not touch structure state, so a given ``(plan, scheduler)``
pair always yields the same op sequence -- the determinism hinge for
the twin-engine parity guarantee.
"""

from __future__ import annotations

from .plan import READ, SEEK, STREAM, WRITE, FlushPlan


class FifoScheduler:
    """Identity scheduler: execute the plan in recorded order."""

    name = "fifo"

    def schedule(self, plan: FlushPlan, device=None):
        return list(plan.ops), {
            "extents_in": plan.n_writes,
            "bursts_out": plan.n_writes,
            "merged": 0,
            "bridged_blocks": 0,
            "overhead_saved": 0,
        }


def _bridge_limit(device) -> int:
    """Largest gap (in blocks) cheaper to stream past than to seek over.

    With the paper's disk parameters (10 ms seek, 32 KiB blocks at
    40 MiB/s) this is ~12 blocks.  Devices without a cost model get 0:
    merging exact-adjacent extents is still free, but there is no seek
    to trade against.
    """
    model = getattr(device, "model", None)
    params = getattr(model, "params", None)
    if params is None:
        return 0
    btt = params.block_transfer_time
    if btt <= 0:
        return 0
    return int(params.seek_time // btt)


class ElevatorScheduler:
    """Sort writes by block address; merge and bridge into bursts.

    ``bridge_blocks`` overrides the device-derived gap limit (``None``
    = derive from the device's disk parameters; ``0`` = merge only
    exactly-adjacent extents).
    """

    name = "elevator"

    def __init__(self, bridge_blocks: int | None = None) -> None:
        self.bridge_blocks = bridge_blocks

    def schedule(self, plan: FlushPlan, device=None):
        writes = []
        reads = []
        bare_seeks = 0
        streams = 0
        for op in plan.ops:
            kind = op[0]
            if kind == WRITE:
                writes.append(op)
            elif kind == READ:
                reads.append(op)
            elif kind == SEEK:
                bare_seeks += op[1]
            elif kind == STREAM:
                streams += op[1]
        bridge = self.bridge_blocks
        if bridge is None:
            bridge = _bridge_limit(device)

        # Stable sort: equal addresses keep recorded order, so a plan
        # that overwrites the same extent twice still lands last-wins.
        writes.sort(key=lambda op: op[1])

        bursts: list[list] = []
        bridged_blocks = 0
        merged = 0
        block_size = _block_size(device)
        for op in writes:
            _, block, n_blocks, data, overhead = op
            if bursts:
                cur = bursts[-1]
                gap = block - (cur[1] + cur[2])
                if 0 <= gap <= bridge and _can_join(cur, op, block_size):
                    if gap:
                        _pad_gap(cur, gap, block_size)
                        bridged_blocks += gap
                    _append_extent(cur, n_blocks, data, block_size)
                    # One boundary read-modify-write bill per burst,
                    # kept at the maximum overhead of its members: the
                    # merged burst still has two unaligned edges at
                    # most, not two per source extent.
                    cur[4] = max(cur[4], overhead)
                    merged += 1
                    continue
            bursts.append([WRITE, block, n_blocks, data, overhead])

        ops: list[tuple] = [tuple(b) for b in bursts]
        ops.extend(reads)
        if bare_seeks:
            ops.append((SEEK, bare_seeks))
        if streams:
            ops.append((STREAM, streams))
        overhead_saved = plan.n_seeks - sum(
            b[4] for b in bursts) - bare_seeks
        return ops, {
            "extents_in": plan.n_writes,
            "bursts_out": len(bursts),
            "merged": merged,
            "bridged_blocks": bridged_blocks,
            "overhead_saved": overhead_saved,
        }


def _block_size(device) -> int:
    model = getattr(device, "model", None)
    params = getattr(model, "params", None)
    if params is not None:
        return params.block_size
    return getattr(device, "block_size", 0)


def _can_join(cur: list, op: tuple, block_size: int) -> bool:
    """Bursts merge when both sides carry the same payload kind.

    Mixing a byte-backed extent into a cost-only (``data=None``) burst
    would either drop bytes or fabricate zeros, so such extents stay
    separate bursts; in practice a plan is homogeneous (retain devices
    record payloads everywhere, cost-only devices nowhere).
    """
    if (cur[3] is None) != (op[3] is None):
        return False
    if cur[3] is not None and block_size <= 0:
        # Cannot pad byte payloads to extent boundaries without a
        # known block size; keep the extents distinct.
        return False
    return True


def _pad_gap(cur: list, gap: int, block_size: int) -> None:
    if cur[3] is not None:
        _pad_to_blocks(cur, block_size)
        cur[3] = cur[3] + bytes(gap * block_size)
    cur[2] += gap


def _append_extent(cur: list, n_blocks: int, data, block_size: int) -> None:
    if cur[3] is not None:
        _pad_to_blocks(cur, block_size)
        cur[3] = cur[3] + data
    cur[2] += n_blocks


def _pad_to_blocks(cur: list, block_size: int) -> None:
    want = cur[2] * block_size
    if len(cur[3]) < want:
        cur[3] = cur[3] + bytes(want - len(cur[3]))


_SCHEDULERS = {
    "fifo": FifoScheduler,
    "elevator": ElevatorScheduler,
}

SCHEDULER_NAMES = tuple(sorted(_SCHEDULERS))


def make_scheduler(name: str):
    """Build a scheduler by config name (``fifo`` or ``elevator``)."""
    try:
        cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown io_scheduler {name!r}; expected one of "
            f"{SCHEDULER_NAMES}"
        ) from None
    return cls()
