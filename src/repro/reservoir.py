"""Common interface for disk-based reservoir maintainers.

The paper benchmarks five alternatives -- virtual memory, scan
(massive rebuild), localized overwrite, the geometric file, and
multiple geometric files -- against one task: keep a disk-resident
reservoir of ``N`` records fed from a stream, admitting records online.
:class:`StreamReservoir` is that task as an abstract base class, so the
benchmark harness (:mod:`repro.bench`) can drive any of them
identically.

Three ingestion paths exist:

* :meth:`offer` -- record-at-a-time, exact, keeps record payloads when
  the implementation retains them.  Tests and examples use this.
* :meth:`offer_many` -- the batch fast path: one vectorised admission
  draw for a whole slice of the stream, then a single
  :meth:`_admit_many` call.  Same output distribution as a loop of
  ``offer`` calls (tested), at a fraction of the per-record Python
  cost.  See docs/PERFORMANCE.md.
* :meth:`ingest` -- count-only fast path for paper-scale benchmark
  runs (billions of records).  Implementations advance all counters and
  charge all I/O exactly as ``offer`` would, but skip per-record Python
  objects.  See DESIGN.md on scale substitution.

Admission follows Algorithm 1: record ``i`` of the stream enters with
probability ``N / i`` (``mode="uniform"``).  The paper's throughput
experiments instead assume "every record produced by the stream was
sampled" (Section 8) -- recency-biased, as the paper notes -- which is
``mode="always"``; each method's relative throughput is identical, just
scaled.
"""

from __future__ import annotations

import abc
import random
from typing import Literal

import numpy as np

from .obs.deprecation import warn_deprecated
from .obs.stats import ReservoirStats
from .storage.records import Record

AdmissionMode = Literal["always", "uniform"]

#: numpy's Generator.hypergeometric requires ngood, nbad < 1e9 each.
_NUMPY_HYPERGEOMETRIC_LIMIT = 10 ** 9


def hypergeometric(rng: np.random.Generator, ngood: int, nbad: int,
                   nsample: int) -> int:
    """Hypergeometric draw that tolerates paper-scale populations.

    Within numpy's supported range (ngood, nbad < 1e9) the draw is
    exact.  Beyond it -- which only billion-record benchmark runs
    reach -- the draw falls back to a Binomial(nsample, ngood/total)
    approximation clipped to the hypergeometric support; at the
    buffer-to-reservoir ratios involved (B/N <= 1%) the variance
    discrepancy is below 1% and no test-scale code path uses it.
    """
    if nsample > ngood + nbad:
        raise ValueError("cannot sample more than the population")
    if ngood < _NUMPY_HYPERGEOMETRIC_LIMIT and nbad < _NUMPY_HYPERGEOMETRIC_LIMIT:
        return int(rng.hypergeometric(ngood, nbad, nsample))
    p = ngood / (ngood + nbad)
    draw = int(rng.binomial(nsample, p))
    return max(max(0, nsample - nbad), min(draw, min(ngood, nsample)))


def draw_victim_counts(rng: np.random.Generator, lives: list[int],
                       count: int) -> list[int]:
    """Algorithm 3's randomized partitioning as one vectorised draw.

    Returns how many of ``count`` uniformly-chosen victims land in each
    population of ``lives`` -- the multivariate hypergeometric
    distribution.  Uses numpy's O(n) "marginals" sampler when the total
    population is within its 1e9 limit, else falls back to sequential
    conditional draws through :func:`hypergeometric`.
    """
    if count < 0:
        raise ValueError("victim count must be non-negative")
    total = sum(lives)
    if count > total:
        raise ValueError("more victims than live records")
    if count == 0:
        return [0] * len(lives)
    if total < _NUMPY_HYPERGEOMETRIC_LIMIT and len(lives) > 1:
        colors = np.asarray(lives, dtype=np.int64)
        draw = rng.multivariate_hypergeometric(colors, count,
                                               method="marginals")
        return [int(k) for k in draw]
    if len(lives) > 1 and total < 2 * (_NUMPY_HYPERGEOMETRIC_LIMIT - 1):
        # Exact conditional decomposition: split the populations into
        # two halves of roughly equal mass, draw the first half's share
        # with one (exact-when-in-range) hypergeometric, recurse.
        # Keeps the fast vectorised path available for reservoirs just
        # past numpy's 1e9 limit (the paper's 50 GiB / 50 B
        # configuration is 1.07e9 records).  A single population can
        # itself exceed the limit (a huge first cohort); both the split
        # draw and the recursion go through the safe wrapper, which
        # degrades that one draw to a clipped binomial.
        split = _balanced_split(lives, total)
        first_total = sum(lives[:split])
        k_first = hypergeometric(rng, first_total, total - first_total,
                                 count)
        return (draw_victim_counts(rng, lives[:split], k_first)
                + draw_victim_counts(rng, lives[split:], count - k_first))
    counts: list[int] = []
    remaining_total = total
    remaining_draw = count
    for live in lives:
        if remaining_draw == 0:
            counts.append(0)
            continue
        if live == remaining_total:
            k = remaining_draw
        else:
            k = hypergeometric(rng, live, remaining_total - live,
                               remaining_draw)
        counts.append(k)
        remaining_total -= live
        remaining_draw -= k
    if remaining_draw != 0:
        raise AssertionError("victim draw did not exhaust the flush")
    return counts


def draw_victim_counts_array(rng: np.random.Generator, lives: np.ndarray,
                             count: int) -> np.ndarray:
    """Array-native :func:`draw_victim_counts` for the flush hot path.

    ``lives`` is an int64 population vector (typically a view into a
    :class:`VictimScratch` buffer, so steady-state flushes allocate no
    per-flush Python lists).  The common case -- every population within
    numpy's 1e9 limit -- is a single ``multivariate_hypergeometric``
    call; anything larger falls back to the exact list-based
    decomposition.
    """
    if count < 0:
        raise ValueError("victim count must be non-negative")
    m = int(lives.shape[0])
    total = int(lives.sum())
    if count > total:
        raise ValueError("more victims than live records")
    if count == 0:
        return np.zeros(m, dtype=np.int64)
    if m == 1:
        return np.array([count], dtype=np.int64)
    if total < _NUMPY_HYPERGEOMETRIC_LIMIT:
        return rng.multivariate_hypergeometric(lives, count,
                                               method="marginals")
    return np.asarray(
        draw_victim_counts(rng, [int(v) for v in lives], count),
        dtype=np.int64,
    )


class VictimScratch:
    """A reusable population buffer for Algorithm 3's victim draws.

    Steady-state flushing previously rebuilt a Python list of subsample
    sizes and converted it to a fresh numpy array on *every* flush; this
    scratch hands out views into one preallocated int64 buffer that
    grows geometrically and is reused across flushes.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = np.empty(0, dtype=np.int64)

    def view(self, n: int) -> np.ndarray:
        """A writable length-``n`` view, reallocating only on growth."""
        if self._buf.shape[0] < n:
            self._buf = np.empty(max(n, 2 * self._buf.shape[0], 16),
                                 dtype=np.int64)
        return self._buf[:n]


def _distinct_integers(rng: np.random.Generator, low: int, high: int,
                       k: int) -> np.ndarray:
    """A uniform random ``k``-subset of ``[low, high)`` in O(k) memory.

    Rejection-based: overdraw, deduplicate, repeat until ``k`` distinct
    values exist, then thin to exactly ``k`` (uniform by exchangeability
    of the values).  Callers guarantee ``k`` is at most half the range,
    so the expected number of rounds is O(1).
    """
    span = high - low
    if k >= span:
        return np.arange(low, high, dtype=np.int64)
    values = np.unique(rng.integers(low, high, size=k, dtype=np.int64))
    while values.shape[0] < k:
        extra = rng.integers(low, high, size=2 * (k - values.shape[0]) + 8,
                             dtype=np.int64)
        values = np.unique(np.concatenate([values, extra]))
    if values.shape[0] > k:
        values = rng.choice(values, size=k, replace=False)
    return values


def _balanced_split(lives: list[int], total: int) -> int:
    """Index splitting ``lives`` into two halves of roughly equal mass.

    Both halves must be non-empty and each below numpy's limit; the
    caller guarantees ``total < 2 * (limit - 1)``, so the split point
    nearest the mass midpoint always satisfies that.
    """
    target = total // 2
    acc = 0
    for index, live in enumerate(lives):
        acc += live
        if acc >= target:
            split = index + 1
            break
    else:  # pragma: no cover - loop always crosses total // 2
        split = len(lives) - 1
    return min(max(1, split), len(lives) - 1)


class StreamReservoir(abc.ABC):
    """A fixed-capacity disk-resident sample fed online from a stream.

    Args:
        capacity: reservoir size ``N`` in records.
        admission: ``"always"`` admits every stream record (the paper's
            benchmark mode); ``"uniform"`` applies the ``N/i``
            reservoir gate so the maintained sample is uniform.
        seed: RNG seed; drives both the ``random.Random`` used for
            per-record decisions and the numpy generator used for
            batched draws.
        law: the :class:`~repro.sampling.laws.SamplingLaw` owning every
            admission decision; ``None`` means the paper's uniform law
            (whose method bodies are the pre-refactor code verbatim,
            so default construction is bit-exact with older builds).
            Non-uniform laws supersede ``admission``.
    """

    #: Short name used in benchmark tables ("geo file", "scan", ...).
    name: str = "reservoir"

    def __init__(self, capacity: int, *, admission: AdmissionMode = "always",
                 seed: int | None = 0, law=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if admission not in ("always", "uniform"):
            raise ValueError(f"unknown admission mode {admission!r}")
        if law is None:
            from .sampling.laws import UniformLaw
            law = UniformLaw()
        self._law = law
        self.capacity = capacity
        self.admission = admission
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(
            seed if seed is not None else None
        )
        #: Minimum useful ingest chunk for the benchmark runner
        #: (flush-based structures override with their flush quantum).
        self.chunk_floor = 1
        #: Flush engine (repro.pipeline.FlushEngine), attached by
        #: disk-backed subclasses; None for purely in-memory paths.
        self._engine = None
        # Stream position (records offered) and admissions; exposed
        # through stats() and the deprecated seen/samples_added shims.
        self._seen = 0
        self._samples_added = 0
        # Hot AQP subsample (repro.estimate.planner.HotSubsample),
        # attached by enable_aqp_cache(); None keeps every ingest hook
        # a single attribute check.
        self._hot = None
        # Observability hooks, attached by instrument().
        self._obs_name: str = self.name
        self._registry = None
        self._trace = None
        self._event_counters: dict = {}

    # -- abstract hooks ----------------------------------------------------

    @abc.abstractmethod
    def _admit(self, record: Record | None) -> None:
        """Accept one admitted record (``None`` in count-only mode)."""

    @abc.abstractmethod
    def _admit_count(self, n: int) -> None:
        """Accept ``n`` admitted records without materialising them."""

    def _admit_many(self, records: list[Record | None]) -> None:
        """Accept a batch of admitted records (subclass batch hook).

        The default is the per-record loop, so every structure gets
        :meth:`offer_many` for free; flush-based structures override
        this with a buffer-level batch absorb.
        """
        admit = self._admit
        for record in records:
            admit(record)

    def _clock(self) -> float:
        """Simulated disk seconds consumed so far (subclass hook)."""
        return 0.0

    # -- pipelined flushing -------------------------------------------------

    def _check_engine(self) -> None:
        """Surface a parked writer-thread fault on the ingest path.

        Cheap enough for the per-record loop: two attribute reads when
        healthy.  Raises :class:`~repro.pipeline.PipelineWriteError`
        until :meth:`clear_fault` is called; the in-memory ledgers are
        authoritative, so no admitted record is lost either way.
        """
        engine = self._engine
        if engine is not None and engine.fault is not None:
            engine.check()

    def flush_barrier(self) -> None:
        """Wait until every background flush has reached the device.

        A no-op for synchronous engines.  Required before reading
        device state (checkpoints, retained-byte verification); also
        surfaces any parked writer fault.
        """
        engine = self._engine
        if engine is not None:
            engine.barrier()

    def close(self) -> None:
        """Drain pending flushes and stop the writer thread (if any).

        The structure stays usable afterwards -- a later flush restarts
        the writer lazily.
        """
        engine = self._engine
        if engine is not None:
            engine.close()

    def clear_fault(self) -> None:
        """Acknowledge a background-flush failure and resume."""
        engine = self._engine
        if engine is not None:
            engine.clear_fault()

    def _submit_plan(self, plan, records: int) -> None:
        """Hand one flush plan to the engine (subclass flush helper).

        Converts the drained record count into simulated fill seconds
        (the ``stream_rate`` config knob), forwards to the engine, and
        emits the ``flush_pipelined`` / ``io_coalesced`` trace events
        plus the queue-depth/stall gauges on the ingest thread.
        """
        engine = self._engine
        plan.records = records
        rate = getattr(getattr(self, "config", None), "stream_rate", None)
        fill = records / rate if rate else 0.0
        summary = engine.submit(plan, fill_seconds=fill)
        if engine.pipeline:
            self._emit("flush_pipelined", records=records,
                       queue_depth=engine.queue_depth)
        if (summary["merged"] or summary["bridged_blocks"]
                or summary["overhead_saved"]):
            self._emit("io_coalesced", **summary)
        if self._registry is not None:
            labels = {"structure": self._obs_name}
            self._registry.gauge("pipeline.queue_depth", **labels).set(
                engine.queue_depth)
            self._registry.gauge("pipeline.stall_seconds", **labels).set(
                engine.stall_seconds)

    # -- observability ------------------------------------------------------

    def stats(self) -> ReservoirStats:
        """Frozen snapshot of progress and cost; see :class:`ReservoirStats`.

        Every structure answers this identically: stream position,
        admissions, flushes, simulated clock, the backing device's
        cumulative I/O counters, and structure-specific extras.
        """
        # Device counters are only coherent once in-flight background
        # flushes land; the barrier is a no-op for synchronous engines.
        self.flush_barrier()
        io = None
        device = getattr(self, "device", None)
        device_stats = getattr(device, "stats", None)
        if callable(device_stats):
            io = device_stats()
        extra = self._stats_extra()
        if self._engine is not None:
            extra = {**extra, "pipeline": self._engine.stats()}
        return ReservoirStats(
            name=self.name,
            capacity=self.capacity,
            seen=self._seen,
            samples_added=self._samples_added,
            flushes=int(getattr(self, "flushes", 0)),
            clock=self._clock(),
            io=io,
            extra=extra,
        )

    def _stats_extra(self) -> dict:
        """Structure-specific counters for :meth:`stats` (subclass hook)."""
        return {}

    def instrument(self, registry, trace=None, *, name: str | None = None) -> None:
        """Attach a metrics registry (and optionally a trace sink).

        The backing device mirrors its I/O counters into ``registry``
        under the ``structure=name`` label, and every structural event
        (flush, segment overwrite, ...) bumps an ``events.*`` counter
        and lands in ``trace``.  Instrumentation charges no simulated
        time: instrumented and bare runs produce identical clocks.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            trace: optional :class:`repro.obs.TraceSink`.
            name: label value; defaults to the structure's ``name``.
        """
        self._obs_name = name if name is not None else self.name
        self._registry = registry
        self._trace = trace
        self._event_counters = {}
        device = getattr(self, "device", None)
        device_instrument = getattr(device, "instrument", None)
        if callable(device_instrument):
            device_instrument(registry, name=self._obs_name)

    def _emit(self, kind: str, **fields) -> None:
        """Record one structural event on the attached observers.

        A no-op (beyond two attribute checks) when the structure is not
        instrumented, so emission sites can be unconditional.
        """
        if self._registry is not None:
            counter = self._event_counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    f"events.{kind}", structure=self._obs_name)
                self._event_counters[kind] = counter
            counter.inc()
        if self._trace is not None:
            self._trace.emit(kind, self._obs_name, self._clock(), **fields)

    # -- deprecated accessors ----------------------------------------------

    @property
    def seen(self) -> int:
        """Deprecated: use ``stats().seen``."""
        warn_deprecated("StreamReservoir.seen", "stats().seen")
        return self._seen

    @seen.setter
    def seen(self, value: int) -> None:
        self._seen = value

    @property
    def samples_added(self) -> int:
        """Deprecated: use ``stats().samples_added``."""
        warn_deprecated("StreamReservoir.samples_added",
                        "stats().samples_added")
        return self._samples_added

    @samples_added.setter
    def samples_added(self, value: int) -> None:
        self._samples_added = value

    @property
    def clock(self) -> float:
        """Deprecated: use ``stats().clock``."""
        warn_deprecated("StreamReservoir.clock", "stats().clock")
        return self._clock()

    # -- hot AQP subsample ---------------------------------------------------

    def enable_aqp_cache(self, budget: int = 4096, *, seed: int = 0):
        """Attach (or return) the memory-resident AQP hot subsample.

        Every record-bearing ingest verb feeds the cache from then on;
        count-only paths mark it incoherent (see
        :class:`repro.estimate.planner.HotSubsample`).  The cache owns
        an independent RNG, so enabling it never perturbs the
        structure's own streams -- an instrumented twin stays bit-exact.
        Idempotent: a second call returns the existing cache.
        """
        if not self._law.is_uniform:
            raise TypeError(
                f"AQP hot cache assumes a uniform stream sample; "
                f"law {self._law.name!r} maintains a different "
                "distribution")
        if self._hot is None:
            from .estimate.planner import HotSubsample
            schema = getattr(self, "schema", None)
            if schema is None:
                from .storage.records import RecordSchema
                record_size = getattr(getattr(self, "config", None),
                                      "record_size", 100)
                schema = RecordSchema(record_size)
            self._hot = HotSubsample(schema, budget, seed=seed,
                                     stream_seen=self._seen)
        return self._hot

    @property
    def aqp_cache(self):
        """The attached hot subsample, or ``None``."""
        return self._hot

    # -- ingestion ---------------------------------------------------------

    @property
    def law(self):
        """The :class:`~repro.sampling.laws.SamplingLaw` in charge."""
        return self._law

    def offer(self, record: Record) -> None:
        """Present one stream record (record-level exact path)."""
        self._check_engine()
        self._seen += 1
        if self._hot is not None:
            self._hot.observe(record)
        if self._law.admit(self, record):
            self._samples_added += 1
            self._admit(record)

    def offer_many(self, records) -> int:
        """Present a batch of stream records (vectorised fast path).

        One numpy draw decides every admission in the batch, and the
        admitted records reach the structure through a single
        :meth:`_admit_many` call, so the per-record Python cost
        collapses to array slicing.  The output distribution is
        identical to calling :meth:`offer` once per record (tested in
        ``tests/test_batch_ingest.py``); only the RNG stream consumed
        differs.

        Args:
            records: a sequence of records (``None`` payloads are legal
                in count-only mode, exactly as for :meth:`offer`).

        Returns:
            The number of records admitted into the reservoir.
        """
        self._check_engine()
        if not isinstance(records, (list, tuple)):
            records = list(records)
        n = len(records)
        if n == 0:
            return 0
        if self._hot is not None:
            self._hot.observe_many(records)
        first = self._seen + 1
        last = self._seen + n
        self._seen = last
        admitted = self._law.select_many(self, records, first, last)
        if admitted:
            self._samples_added += len(admitted)
            self._admit_many(admitted)
        return len(admitted)

    def offer_batch(self, batch) -> int:
        """Present a batch of stream records (the protocol batch verb).

        Accepts either a
        :class:`~repro.storage.recordbatch.RecordBatch` or any plain
        sequence of records -- the one batch entry point the unified
        :class:`~repro.core.protocols.Reservoir` protocol names.  A
        ``RecordBatch`` takes the columnar twin of :meth:`offer_many`:
        the admission mask is the same single vectorised draw, but the
        admitted records stay a column slab end to end -- they reach
        the structure through :meth:`_admit_batch`, which columnar
        structures implement with slice copies (structures without a
        columnar path decode once and fall through to
        :meth:`_admit_many`; identical admission law either way).  A
        plain sequence routes to :meth:`offer_many` unchanged.

        Returns:
            The number of records admitted into the reservoir.
        """
        from .storage.recordbatch import RecordBatch

        if not isinstance(batch, RecordBatch):
            return self.offer_many(batch)
        self._check_engine()
        n = len(batch)
        if n == 0:
            return 0
        if self._hot is not None:
            self._hot.observe_batch(batch)
        first = self._seen + 1
        last = self._seen + n
        self._seen = last
        admitted = self._law.select_batch(self, batch, first, last)
        count = len(admitted)
        if count:
            self._samples_added += count
            if isinstance(admitted, RecordBatch):
                self._admit_batch(admitted)
            else:
                # Record-decoding laws hand back a plain list; route it
                # through the object batch hook.
                self._admit_many(admitted if isinstance(admitted, list)
                                 else list(admitted))
        return count

    def _admit_batch(self, batch) -> None:
        """Columnar admit hook; the default decodes to the object path."""
        self._admit_many(list(batch))

    # -- protocol queries --------------------------------------------------

    def snapshot(self, k: int | None = None, *, rng=None):
        """(:meth:`sample` result, stream position) in one call.

        The record-object twin of :meth:`snapshot_batch` and the
        :class:`~repro.core.protocols.Reservoir` protocol's consistent
        read: the returned ``seen`` count is the population size AQP
        estimators scale the sample by.  Subclasses provide
        ``sample()``; structures running count-only raise the same
        ``TypeError`` their ``sample()`` does.
        """
        return self.sample(k, rng=rng), self._seen

    def checkpoint(self) -> None:
        """Make the current state durable (protocol durability verb).

        For a bare structure durability means the backing device has
        absorbed every admitted record: this is :meth:`flush_barrier`.
        Wrappers that own persistent state override it with a real
        checkpoint write (:class:`~repro.core.managed.ManagedSample`
        saves its state file, the sharded service checkpoints every
        shard); the contract is identical -- on return, the work
        admitted before the call has reached its backing store.
        """
        self.flush_barrier()

    def _thin_records(self, records, k: int | None, rng=None):
        """Uniformly thin a record list to ``k`` (shared query helper).

        ``rng`` is the optional ``random.Random`` query generator the
        caller's ``sample()`` already threads through; ``None`` falls
        back to the structure's own stream, matching
        :meth:`apply_pending`'s convention.
        """
        if k is None:
            return records
        if k > len(records):
            raise ValueError(
                f"cannot draw {k} records from a sample of {len(records)}")
        gen = rng if rng is not None else self._rng
        return gen.sample(records, k)

    # -- columnar queries --------------------------------------------------

    def sample_batch(self, k: int | None = None, *, rng=None):
        """The current sample as a :class:`RecordBatch`.

        The base implementation is a decode shim over :meth:`sample`
        (available wherever ``sample()`` is); columnar structures
        override it with a pure-array path that never materialises
        record objects.

        Args:
            k: optionally thin to a uniform ``k``-subset.
            rng: optional ``numpy.random.Generator`` for the subset
                draw (and, in columnar overrides, the deferred-eviction
                draw), so queries need not perturb the structure's own
                RNG stream.
        """
        from .storage.recordbatch import RecordBatch

        schema = getattr(self, "schema", None)
        if schema is None:
            raise TypeError(f"{self.name} has no record schema; "
                            "sample_batch is unavailable")
        batch = RecordBatch.from_records(schema, self.sample())
        return self._thin_batch(batch, k, rng)

    def snapshot_batch(self, k: int | None = None, *, rng=None):
        """(:meth:`sample_batch` result, stream position) in one call.

        The columnar twin of the sharded service's ``snapshot``: the
        returned ``seen`` count is what merge allocation weighs.
        """
        return self.sample_batch(k, rng=rng), self._seen

    def _thin_batch(self, batch, k: int | None, rng):
        if k is None:
            return batch
        if k > len(batch):
            raise ValueError(
                f"cannot draw {k} records from a sample of {len(batch)}")
        gen = rng if rng is not None else self._np_rng
        return batch.take(gen.choice(len(batch), size=k, replace=False))

    def ingest(self, n: int) -> None:
        """Present ``n`` stream records (count-only fast path)."""
        self._check_engine()
        if n < 0:
            raise ValueError("cannot ingest a negative count")
        if n == 0:
            return
        if self._hot is not None:
            self._hot.observe_count(n)
        self._seen += n
        admitted = self._law.select_count(self, n)
        if admitted:
            self._samples_added += admitted
            self._admit_count(admitted)

    def _admits_current(self) -> bool:
        """Admission decision for the record at position ``self._seen``.

        Back-compat shim; the law owns the decision now.  Only valid
        for laws whose admission ignores record content (uniform).
        """
        return self._law.admit(self, None)

    # -- protected feeder API -----------------------------------------------
    #
    # Skip-based drivers (repro.sampling.feeder) decide admissions
    # *outside* the reservoir -- the gap draw is the N/i law -- and use
    # these two hooks to report the outcome, instead of poking _seen /
    # _samples_added / _admit directly.  Keeping the writes here means
    # stats() invariants and future batch hooks hold for every caller.

    def _advance_skipped(self, n: int) -> None:
        """Record that ``n`` stream records passed by unsampled."""
        if n < 0:
            raise ValueError("cannot skip a negative number of records")
        if self._hot is not None:
            # Skipped records never materialise, so the hot subsample
            # cannot stay a uniform sample of the stream: mark it
            # incoherent and let the planner's next escalation re-seed.
            self._hot.observe_count(n)
        self._seen += n

    def _accept(self, record: Record | None) -> None:
        """Accept one stream record whose admission was decided upstream."""
        if self._hot is not None:
            self._hot.observe_count(1)
        self._seen += 1
        self._samples_added += 1
        self._admit(record)

    def _accept_many(self, records: list[Record | None]) -> None:
        """Batch form of :meth:`_accept` (one :meth:`_admit_many` call)."""
        if not records:
            return
        if self._hot is not None:
            self._hot.observe_count(len(records))
        self._seen += len(records)
        self._samples_added += len(records)
        self._admit_many(records)

    @staticmethod
    def apply_pending(disk_records: list[Record], pending: list[Record],
                      rng: random.Random) -> list[Record]:
        """Materialise a valid sample mid-flush.

        Each buffered record joined the reservoir by (deferred) evicting
        one uniformly random *disk-resident* record -- sequential draws
        without replacement, i.e. a uniform random ``len(pending)``-
        subset of the disk records dies.  Used by every alternative's
        ``sample()`` so queries between flushes still see an exact
        fixed-size random sample.
        """
        if not pending:
            return list(disk_records)
        if len(pending) > len(disk_records):
            raise ValueError("more pending records than disk residents")
        victims = set(rng.sample(range(len(disk_records)), len(pending)))
        survivors = [record for i, record in enumerate(disk_records)
                     if i not in victims]
        return survivors + list(pending)

    @staticmethod
    def apply_pending_batch(disk: np.ndarray, pending: np.ndarray,
                            np_rng: np.random.Generator) -> np.ndarray:
        """Vectorised :meth:`apply_pending` over structured row arrays.

        The victim set is the same uniform without-replacement draw;
        victims are overwritten *in place* by the pending rows (the
        same multiset as survivors-plus-pending, one fancy-index write
        instead of an O(n) rebuild).  ``disk`` must be a freshly
        allocated array the caller owns -- typically the
        ``np.concatenate`` of ledger slabs.
        """
        if len(pending) == 0:
            return disk
        if len(pending) > len(disk):
            raise ValueError("more pending records than disk residents")
        victims = np_rng.choice(len(disk), size=len(pending),
                                replace=False)
        disk[victims] = pending
        return disk

    #: Dense-draw chunk bound for _count_uniform_admissions: caps every
    #: transient allocation at ~8 MB regardless of the ingest size.
    _ADMISSION_CHUNK = 1 << 20

    def _count_uniform_admissions(self, n: int) -> int:
        """Exactly sample how many of ``n`` offers pass the ``N/i`` gate.

        The count is a Poisson-binomial draw (position ``i`` admits
        independently with probability ``min(1, N/i)``), decomposed into
        chunks of bounded memory so ``ingest(10**9)`` never allocates an
        O(n) array:

        * positions at or below ``N`` always admit -- O(1);
        * a chunk ``[a, b]`` with ``b < 2a`` and ``N/a <= 1/2`` is drawn
          in two exact stages: ``K ~ Binomial(b - a + 1, N/a)``
          candidate positions (a uniform K-subset of the chunk), each
          thinned with probability ``(N/j) / (N/a) = a/j`` -- O(K)
          memory with ``E[K] <= (b - a + 1) / 2``;
        * the few chunks where ``N/a > 1/2`` (positions within 2x of
          capacity) fall back to the dense vectorised Bernoulli draw,
          bounded by ``_ADMISSION_CHUNK`` positions.

        The two-stage split is exact: a Bernoulli(``N/j``) event is the
        conjunction of independent Bernoulli(``N/a``) and
        Bernoulli(``a/j``) events, and the Binomial successes of i.i.d.
        trials form a uniform subset of the positions.
        """
        last = self._seen
        first = last - n + 1
        rng = self._np_rng
        capacity = self.capacity
        admitted = 0
        if first <= capacity:
            bound = min(last, capacity)
            admitted += bound - first + 1
            first = bound + 1
        a = first
        while a <= last:
            b = min(last, 2 * a - 1, a + self._ADMISSION_CHUNK - 1)
            length = b - a + 1
            p_max = capacity / a
            if p_max > 0.5:
                positions = np.arange(a, b + 1, dtype=np.float64)
                admitted += int(((rng.random(length) * positions)
                                 < capacity).sum())
            else:
                k = int(rng.binomial(length, p_max))
                if k:
                    if 2 * k > length:
                        # An extreme binomial draw can exceed the
                        # rejection sampler's guarantee; a dense draw
                        # over the (chunk-bounded) range stays exact.
                        pool = rng.permutation(
                            np.arange(a, b + 1, dtype=np.int64))
                        candidates = pool[:k]
                    else:
                        candidates = _distinct_integers(rng, a, b + 1, k)
                    admitted += int(((rng.random(k) * candidates) < a).sum())
            a = b + 1
        return admitted
