"""Common interface for disk-based reservoir maintainers.

The paper benchmarks five alternatives -- virtual memory, scan
(massive rebuild), localized overwrite, the geometric file, and
multiple geometric files -- against one task: keep a disk-resident
reservoir of ``N`` records fed from a stream, admitting records online.
:class:`StreamReservoir` is that task as an abstract base class, so the
benchmark harness (:mod:`repro.bench`) can drive any of them
identically.

Two ingestion paths exist:

* :meth:`offer` -- record-at-a-time, exact, keeps record payloads when
  the implementation retains them.  Tests and examples use this.
* :meth:`ingest` -- count-only fast path for paper-scale benchmark
  runs (billions of records).  Implementations advance all counters and
  charge all I/O exactly as ``offer`` would, but skip per-record Python
  objects.  See DESIGN.md on scale substitution.

Admission follows Algorithm 1: record ``i`` of the stream enters with
probability ``N / i`` (``mode="uniform"``).  The paper's throughput
experiments instead assume "every record produced by the stream was
sampled" (Section 8) -- recency-biased, as the paper notes -- which is
``mode="always"``; each method's relative throughput is identical, just
scaled.
"""

from __future__ import annotations

import abc
import random
from typing import Literal

import numpy as np

from .obs.deprecation import warn_deprecated
from .obs.stats import ReservoirStats
from .storage.records import Record

AdmissionMode = Literal["always", "uniform"]

#: numpy's Generator.hypergeometric requires ngood, nbad < 1e9 each.
_NUMPY_HYPERGEOMETRIC_LIMIT = 10 ** 9


def hypergeometric(rng: np.random.Generator, ngood: int, nbad: int,
                   nsample: int) -> int:
    """Hypergeometric draw that tolerates paper-scale populations.

    Within numpy's supported range (ngood, nbad < 1e9) the draw is
    exact.  Beyond it -- which only billion-record benchmark runs
    reach -- the draw falls back to a Binomial(nsample, ngood/total)
    approximation clipped to the hypergeometric support; at the
    buffer-to-reservoir ratios involved (B/N <= 1%) the variance
    discrepancy is below 1% and no test-scale code path uses it.
    """
    if nsample > ngood + nbad:
        raise ValueError("cannot sample more than the population")
    if ngood < _NUMPY_HYPERGEOMETRIC_LIMIT and nbad < _NUMPY_HYPERGEOMETRIC_LIMIT:
        return int(rng.hypergeometric(ngood, nbad, nsample))
    p = ngood / (ngood + nbad)
    draw = int(rng.binomial(nsample, p))
    return max(max(0, nsample - nbad), min(draw, min(ngood, nsample)))


def draw_victim_counts(rng: np.random.Generator, lives: list[int],
                       count: int) -> list[int]:
    """Algorithm 3's randomized partitioning as one vectorised draw.

    Returns how many of ``count`` uniformly-chosen victims land in each
    population of ``lives`` -- the multivariate hypergeometric
    distribution.  Uses numpy's O(n) "marginals" sampler when the total
    population is within its 1e9 limit, else falls back to sequential
    conditional draws through :func:`hypergeometric`.
    """
    if count < 0:
        raise ValueError("victim count must be non-negative")
    total = sum(lives)
    if count > total:
        raise ValueError("more victims than live records")
    if count == 0:
        return [0] * len(lives)
    if total < _NUMPY_HYPERGEOMETRIC_LIMIT and len(lives) > 1:
        colors = np.asarray(lives, dtype=np.int64)
        draw = rng.multivariate_hypergeometric(colors, count,
                                               method="marginals")
        return [int(k) for k in draw]
    if len(lives) > 1 and total < 2 * (_NUMPY_HYPERGEOMETRIC_LIMIT - 1):
        # Exact conditional decomposition: split the populations into
        # two halves of roughly equal mass, draw the first half's share
        # with one (exact-when-in-range) hypergeometric, recurse.
        # Keeps the fast vectorised path available for reservoirs just
        # past numpy's 1e9 limit (the paper's 50 GiB / 50 B
        # configuration is 1.07e9 records).  A single population can
        # itself exceed the limit (a huge first cohort); both the split
        # draw and the recursion go through the safe wrapper, which
        # degrades that one draw to a clipped binomial.
        split = _balanced_split(lives, total)
        first_total = sum(lives[:split])
        k_first = hypergeometric(rng, first_total, total - first_total,
                                 count)
        return (draw_victim_counts(rng, lives[:split], k_first)
                + draw_victim_counts(rng, lives[split:], count - k_first))
    counts: list[int] = []
    remaining_total = total
    remaining_draw = count
    for live in lives:
        if remaining_draw == 0:
            counts.append(0)
            continue
        if live == remaining_total:
            k = remaining_draw
        else:
            k = hypergeometric(rng, live, remaining_total - live,
                               remaining_draw)
        counts.append(k)
        remaining_total -= live
        remaining_draw -= k
    if remaining_draw != 0:
        raise AssertionError("victim draw did not exhaust the flush")
    return counts


def _balanced_split(lives: list[int], total: int) -> int:
    """Index splitting ``lives`` into two halves of roughly equal mass.

    Both halves must be non-empty and each below numpy's limit; the
    caller guarantees ``total < 2 * (limit - 1)``, so the split point
    nearest the mass midpoint always satisfies that.
    """
    target = total // 2
    acc = 0
    for index, live in enumerate(lives):
        acc += live
        if acc >= target:
            split = index + 1
            break
    else:  # pragma: no cover - loop always crosses total // 2
        split = len(lives) - 1
    return min(max(1, split), len(lives) - 1)


class StreamReservoir(abc.ABC):
    """A fixed-capacity disk-resident sample fed online from a stream.

    Args:
        capacity: reservoir size ``N`` in records.
        admission: ``"always"`` admits every stream record (the paper's
            benchmark mode); ``"uniform"`` applies the ``N/i``
            reservoir gate so the maintained sample is uniform.
        seed: RNG seed; drives both the ``random.Random`` used for
            per-record decisions and the numpy generator used for
            batched draws.
    """

    #: Short name used in benchmark tables ("geo file", "scan", ...).
    name: str = "reservoir"

    def __init__(self, capacity: int, *, admission: AdmissionMode = "always",
                 seed: int | None = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if admission not in ("always", "uniform"):
            raise ValueError(f"unknown admission mode {admission!r}")
        self.capacity = capacity
        self.admission = admission
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(
            seed if seed is not None else None
        )
        #: Minimum useful ingest chunk for the benchmark runner
        #: (flush-based structures override with their flush quantum).
        self.chunk_floor = 1
        # Stream position (records offered) and admissions; exposed
        # through stats() and the deprecated seen/samples_added shims.
        self._seen = 0
        self._samples_added = 0
        # Observability hooks, attached by instrument().
        self._obs_name: str = self.name
        self._registry = None
        self._trace = None
        self._event_counters: dict = {}

    # -- abstract hooks ----------------------------------------------------

    @abc.abstractmethod
    def _admit(self, record: Record | None) -> None:
        """Accept one admitted record (``None`` in count-only mode)."""

    @abc.abstractmethod
    def _admit_count(self, n: int) -> None:
        """Accept ``n`` admitted records without materialising them."""

    def _clock(self) -> float:
        """Simulated disk seconds consumed so far (subclass hook)."""
        return 0.0

    # -- observability ------------------------------------------------------

    def stats(self) -> ReservoirStats:
        """Frozen snapshot of progress and cost; see :class:`ReservoirStats`.

        Every structure answers this identically: stream position,
        admissions, flushes, simulated clock, the backing device's
        cumulative I/O counters, and structure-specific extras.
        """
        io = None
        device = getattr(self, "device", None)
        device_stats = getattr(device, "stats", None)
        if callable(device_stats):
            io = device_stats()
        return ReservoirStats(
            name=self.name,
            capacity=self.capacity,
            seen=self._seen,
            samples_added=self._samples_added,
            flushes=int(getattr(self, "flushes", 0)),
            clock=self._clock(),
            io=io,
            extra=self._stats_extra(),
        )

    def _stats_extra(self) -> dict:
        """Structure-specific counters for :meth:`stats` (subclass hook)."""
        return {}

    def instrument(self, registry, trace=None, *, name: str | None = None) -> None:
        """Attach a metrics registry (and optionally a trace sink).

        The backing device mirrors its I/O counters into ``registry``
        under the ``structure=name`` label, and every structural event
        (flush, segment overwrite, ...) bumps an ``events.*`` counter
        and lands in ``trace``.  Instrumentation charges no simulated
        time: instrumented and bare runs produce identical clocks.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            trace: optional :class:`repro.obs.TraceSink`.
            name: label value; defaults to the structure's ``name``.
        """
        self._obs_name = name if name is not None else self.name
        self._registry = registry
        self._trace = trace
        self._event_counters = {}
        device = getattr(self, "device", None)
        device_instrument = getattr(device, "instrument", None)
        if callable(device_instrument):
            device_instrument(registry, name=self._obs_name)

    def _emit(self, kind: str, **fields) -> None:
        """Record one structural event on the attached observers.

        A no-op (beyond two attribute checks) when the structure is not
        instrumented, so emission sites can be unconditional.
        """
        if self._registry is not None:
            counter = self._event_counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    f"events.{kind}", structure=self._obs_name)
                self._event_counters[kind] = counter
            counter.inc()
        if self._trace is not None:
            self._trace.emit(kind, self._obs_name, self._clock(), **fields)

    # -- deprecated accessors ----------------------------------------------

    @property
    def seen(self) -> int:
        """Deprecated: use ``stats().seen``."""
        warn_deprecated("StreamReservoir.seen", "stats().seen")
        return self._seen

    @seen.setter
    def seen(self, value: int) -> None:
        self._seen = value

    @property
    def samples_added(self) -> int:
        """Deprecated: use ``stats().samples_added``."""
        warn_deprecated("StreamReservoir.samples_added",
                        "stats().samples_added")
        return self._samples_added

    @samples_added.setter
    def samples_added(self, value: int) -> None:
        self._samples_added = value

    @property
    def clock(self) -> float:
        """Deprecated: use ``stats().clock``."""
        warn_deprecated("StreamReservoir.clock", "stats().clock")
        return self._clock()

    # -- ingestion ---------------------------------------------------------

    def offer(self, record: Record) -> None:
        """Present one stream record (record-level exact path)."""
        self._seen += 1
        if self._admits_current():
            self._samples_added += 1
            self._admit(record)

    def ingest(self, n: int) -> None:
        """Present ``n`` stream records (count-only fast path)."""
        if n < 0:
            raise ValueError("cannot ingest a negative count")
        if n == 0:
            return
        self._seen += n
        if self.admission == "always":
            admitted = n
        else:
            admitted = self._count_uniform_admissions(n)
        if admitted:
            self._samples_added += admitted
            self._admit_count(admitted)

    def _admits_current(self) -> bool:
        """Admission decision for the record at position ``self._seen``."""
        if self.admission == "always" or self._seen <= self.capacity:
            return True
        return self._rng.random() * self._seen < self.capacity

    @staticmethod
    def apply_pending(disk_records: list[Record], pending: list[Record],
                      rng: random.Random) -> list[Record]:
        """Materialise a valid sample mid-flush.

        Each buffered record joined the reservoir by (deferred) evicting
        one uniformly random *disk-resident* record -- sequential draws
        without replacement, i.e. a uniform random ``len(pending)``-
        subset of the disk records dies.  Used by every alternative's
        ``sample()`` so queries between flushes still see an exact
        fixed-size random sample.
        """
        if not pending:
            return list(disk_records)
        if len(pending) > len(disk_records):
            raise ValueError("more pending records than disk residents")
        victims = set(rng.sample(range(len(disk_records)), len(pending)))
        survivors = [record for i, record in enumerate(disk_records)
                     if i not in victims]
        return survivors + list(pending)

    def _count_uniform_admissions(self, n: int) -> int:
        """Exactly sample how many of ``n`` offers pass the ``N/i`` gate.

        Vectorised Poisson-binomial draw: each position ``i`` admits
        independently with probability ``min(1, N/i)``.
        """
        first = self._seen - n + 1
        positions = np.arange(first, self._seen + 1, dtype=np.float64)
        probs = np.minimum(1.0, self.capacity / positions)
        return int((self._np_rng.random(n) < probs).sum())
