"""In-memory sampling algorithms: the classical foundations the
geometric file builds on (paper Sections 3.1 and 7.2)."""

from .biased_reservoir import BiasedReservoir
from .deletions import RandomPairingReservoir
from .feeder import feed_stream
from .laws import (
    LAW_NAMES,
    AExpJLaw,
    SamplingLaw,
    SlidingWindowLaw,
    UniformLaw,
    WeightedReplacementLaw,
    make_law,
    reference_for,
)
from .reservoir import ReservoirSample, sample_without_replacement
from .skip import SkipReservoir, ZSkipper, gaps_z, skip_count_x
from .weights import (
    WeightFunction,
    clamped,
    exp_jump_keys,
    exponential_recency,
    linear_recency,
    uniform_weight,
    value_proportional,
)

__all__ = [
    "AExpJLaw",
    "BiasedReservoir",
    "LAW_NAMES",
    "RandomPairingReservoir",
    "ReservoirSample",
    "SamplingLaw",
    "SkipReservoir",
    "SlidingWindowLaw",
    "UniformLaw",
    "WeightFunction",
    "WeightedReplacementLaw",
    "ZSkipper",
    "clamped",
    "exp_jump_keys",
    "exponential_recency",
    "feed_stream",
    "gaps_z",
    "linear_recency",
    "make_law",
    "reference_for",
    "sample_without_replacement",
    "skip_count_x",
    "uniform_weight",
    "value_proportional",
]
