"""Biased reservoir sampling (paper Section 7, Algorithm 4).

A biased sample over-represents important records: the probability that
the j-th stream record is resident is ``|R| * f(r_j) / sum_k f(r_k)``
(Definition 1).  Algorithm 4 achieves this by admitting record ``i``
with probability ``|R| * f(r_i) / totalWeight`` and evicting a
*uniformly* chosen resident (Lemma 2 proves the invariant).

Early in the stream the admission "probability" can exceed one, which
would break Lemma 2.  Section 7.3.2 repairs this by scaling the *true
weight* of every existing record up whenever that happens, so that the
sample remains a correct biased sample for a perturbed weighting
function f' that the library can always evaluate (Definition 2 /
Lemma 3).  The guarantees, verbatim from the paper:

1. a record's true weight equals ``f(r_j)`` exactly if no later record
   overflowed (``|R| f(r_i) / totalWeight <= 1`` for all ``i > j``);
2. the true weight is always computable, so Horvitz-Thompson style
   unbiased estimates remain available regardless.

Implementation note -- rather than multiplying every resident's weight
on each overflow (O(|R|) per event), we keep a global scale factor
``G`` and store each resident's weight *relative to the scale at its
admission*: ``true(r) = G * stored(r)``.  An overflow multiplies ``G``.
This is algebraically identical to the paper's per-subsample multiplier
scheme (which :mod:`repro.core.biased_file` implements literally for
the on-disk case) and is exact, not an approximation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..storage.records import Record
from .weights import WeightFunction, uniform_weight

#: Fold the scale factor back into stored weights past this magnitude,
#: long before float64 precision becomes a concern.
_RENORMALIZE_ABOVE = 1e100


@dataclass
class _Resident:
    """A sampled record and its scale-relative stored weight."""

    record: Record
    stored_weight: float


class BiasedReservoir:
    """Fixed-size biased sample of a stream (Algorithm 4 + Section 7.3.2).

    Args:
        capacity: sample size ``|R|``.
        weight_fn: the user utility function ``f``; must return a
            strictly positive float.  Defaults to uniform weighting, in
            which case the structure behaves exactly like
            :class:`~repro.sampling.reservoir.ReservoirSample`.
        rng: randomness source.
    """

    def __init__(self, capacity: int,
                 weight_fn: WeightFunction = uniform_weight,
                 rng: random.Random | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.weight_fn = weight_fn
        self._rng = rng or random.Random()
        self._residents: list[_Resident] = []
        self._seen = 0
        self._scale = 1.0
        #: Sum of *true* weights over every record the stream has
        #: produced (the paper's totalWeight, kept in true-weight units).
        self._total_weight = 0.0
        self._overflow_events = 0
        self._fill_weight = 0.0  # sum of f over the first |R| records

    # -- observers --------------------------------------------------------

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def total_weight(self) -> float:
        """The paper's ``totalWeight``: sum of true weights so far."""
        return self._total_weight

    @property
    def overflow_events(self) -> int:
        """How many times Section 7.3.2 rescaling fired."""
        return self._overflow_events

    @property
    def is_full(self) -> bool:
        return len(self._residents) == self.capacity

    def __len__(self) -> int:
        return len(self._residents)

    def __iter__(self) -> Iterator[Record]:
        return (resident.record for resident in self._residents)

    def items(self) -> Iterator[tuple[Record, float]]:
        """Yield ``(record, true_weight)`` pairs for every resident."""
        for resident in self._residents:
            yield resident.record, self._scale * resident.stored_weight

    def true_weight_of(self, index: int) -> float:
        """True weight of the resident at position ``index``."""
        return self._scale * self._residents[index].stored_weight

    def inclusion_probability(self, true_weight: float) -> float:
        """``Pr[r in R]`` for a resident with the given true weight.

        This is Lemma 3's guarantee:
        ``|R| * true_weight / totalWeight``.
        """
        if self._total_weight == 0:
            raise ValueError("no records offered yet")
        return min(1.0, self.capacity * true_weight / self._total_weight)

    # -- mutation ---------------------------------------------------------

    def offer(self, record: Record) -> Record | None:
        """Present one stream record; returns the evicted record, if any.

        Raises:
            ValueError: if the weight function returns a non-positive
                value for this record.
        """
        weight = self.weight_fn(record)
        if weight <= 0:
            raise ValueError(
                f"weight function returned {weight!r}; must be positive"
            )
        self._seen += 1

        # -- start-up: the first |R| records enter unconditionally.  Each
        # gets effective weight 1; once the reservoir fills, the shared
        # multiplier totalWeight/|R| gives them all the *mean* true
        # weight ("a necessary evil", Section 7.3.2).
        if len(self._residents) < self.capacity:
            self._fill_weight += weight
            self._residents.append(_Resident(record, 0.0))
            if len(self._residents) == self.capacity:
                self._total_weight = self._fill_weight
                mean_true = self._fill_weight / self.capacity
                stored = mean_true / self._scale
                for resident in self._residents:
                    resident.stored_weight = stored
            return None

        self._total_weight += weight
        admit_probability = self.capacity * weight / self._total_weight
        if admit_probability > 1.0:
            # Section 7.3.2: scale every existing true weight so the
            # new record's admission probability is exactly one.
            scale_up = admit_probability
            self._scale *= scale_up
            self._total_weight = self.capacity * weight
            self._overflow_events += 1
            self._maybe_renormalize()
            admit_probability = 1.0

        if self._rng.random() >= admit_probability:
            return None
        victim = self._rng.randrange(self.capacity)
        evicted = self._residents[victim].record
        self._residents[victim] = _Resident(record, weight / self._scale)
        return evicted

    def extend(self, records) -> None:
        """Offer every record of an iterable in order."""
        for record in records:
            self.offer(record)

    def _maybe_renormalize(self) -> None:
        if self._scale <= _RENORMALIZE_ABOVE:
            return
        for resident in self._residents:
            resident.stored_weight *= self._scale
        self._scale = 1.0
