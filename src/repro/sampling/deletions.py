"""Bounded-size uniform sampling under deletions (paper Section 10).

The paper's future work asks for "handling a stream that included
deletions as well as insertions".  Plain reservoir sampling cannot: a
deletion that hits the sample shrinks it, and naively refilling from
later insertions biases the sample toward new records.

:class:`RandomPairingReservoir` implements the *random pairing* scheme
(Gemulla, Lehner and Haas; the now-standard answer to exactly this
problem): every deletion is eventually "paired" with a subsequent
insertion that conceptually takes its place.

State beyond the sample itself is two counters:

* ``c_in``  -- uncompensated deletions that had been *in* the sample;
* ``c_out`` -- uncompensated deletions that had not.

A deletion increments the matching counter (and removes the record if
it was resident).  While any deletion is uncompensated, an insertion
enters the sample with probability ``c_in / (c_in + c_out)`` -- the
probability that the slot it is pairing with was a sample slot -- and
decrements the matching counter; otherwise (no outstanding deletions)
the classic reservoir step applies.  The invariant, maintained at every
step and verified by Monte-Carlo tests: the sample is a uniform random
subset of the *current* population, of size
``min(capacity, population)`` whenever no deletions are outstanding
(and never larger).

Deletions address records by key; keys are assumed unique among live
records (the usual primary-key discipline).  Deleting a key that is not
in the current population is the caller's bug; with
``track_population=True`` (tests, small runs) it is detected and
raised, otherwise it silently corrupts the counters -- exactly the
contract a production system would document.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..storage.records import Record


class RandomPairingReservoir:
    """A uniform sample of an insert/delete record stream.

    Args:
        capacity: maximum sample size.
        rng: randomness source.
        track_population: additionally keep the set of live keys so
            that bad deletes raise instead of corrupting state (costs
            O(population) memory; meant for tests and moderate scale).
    """

    def __init__(self, capacity: int, rng: random.Random | None = None,
                 *, track_population: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = rng or random.Random()
        self._members: dict[int, Record] = {}
        self.population = 0
        #: Uncompensated deletions that had been in the sample.
        self.c_in = 0
        #: Uncompensated deletions that had not been in the sample.
        self.c_out = 0
        self._live_keys: set[int] | None = (
            set() if track_population else None
        )

    # -- observers --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._members.values())

    def __contains__(self, key: int) -> bool:
        return key in self._members

    @property
    def outstanding_deletions(self) -> int:
        return self.c_in + self.c_out

    def contents(self) -> list[Record]:
        return list(self._members.values())

    # -- mutation ---------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Present one inserted record.

        Raises:
            ValueError: on a duplicate key when tracking the population.
        """
        if self._live_keys is not None:
            if record.key in self._live_keys:
                raise ValueError(f"duplicate key {record.key}")
            self._live_keys.add(record.key)
        self.population += 1

        if self.c_in + self.c_out > 0:
            # Compensation phase: pair this insertion with one of the
            # outstanding deletions, uniformly at random.
            if (self._rng.random() * (self.c_in + self.c_out)
                    < self.c_in):
                self.c_in -= 1
                self._members[record.key] = record
            else:
                self.c_out -= 1
            return

        # No outstanding deletions: classic reservoir step over the
        # current population size.
        if len(self._members) < self.capacity:
            self._members[record.key] = record
            return
        if self._rng.random() * self.population < self.capacity:
            victim_key = self._rng.choice(list(self._members))
            del self._members[victim_key]
            self._members[record.key] = record

    def delete(self, key: int) -> bool:
        """Present one deletion; returns True if it hit the sample.

        Raises:
            ValueError: if the population is empty, or (when tracking)
                the key is not live.
        """
        if self.population == 0:
            raise ValueError("delete from an empty population")
        if self._live_keys is not None:
            if key not in self._live_keys:
                raise ValueError(f"key {key} is not in the population")
            self._live_keys.remove(key)
        self.population -= 1
        if key in self._members:
            del self._members[key]
            self.c_in += 1
            return True
        self.c_out += 1
        return False

    def apply(self, operations) -> None:
        """Apply ``("insert", record)`` / ``("delete", key)`` pairs."""
        for op, payload in operations:
            if op == "insert":
                self.insert(payload)
            elif op == "delete":
                self.delete(payload)
            else:
                raise ValueError(f"unknown operation {op!r}")

    def check_invariants(self) -> None:
        """Structural sanity: sizes and counters stay consistent."""
        if len(self._members) > self.capacity:
            raise AssertionError("sample exceeded its capacity")
        if len(self._members) > self.population:
            raise AssertionError("sample larger than the population")
        if self.c_in + len(self._members) > self.capacity:
            raise AssertionError(
                "outstanding in-sample deletions exceed free capacity"
            )
        if self.c_in < 0 or self.c_out < 0:
            raise AssertionError("negative compensation counter")
        if (self.c_in + self.c_out == 0
                and self.population >= self.capacity
                and len(self._members) < self.capacity):
            raise AssertionError(
                "sample under-full with no outstanding deletions"
            )
