"""Feeding a disk reservoir through Vitter's skip machinery.

Section 3.1: "Variations on the algorithm allow it to go to sleep for a
period of time during which it only counts the number of records that
have passed by.  After a certain number of records have been seen, the
algorithm can wake up and capture the next record from the stream" --
and the paper notes Vitter's techniques "could be used in conjunction
with our own".

:func:`feed_stream` is that conjunction: it drives any uniform-admission
:class:`~repro.reservoir.StreamReservoir` (a geometric file, the
multi-file structure, or a baseline) from a record iterator, using
Algorithm X / Algorithm Z gap sampling so that the per-record Python
work for *rejected* records is a single ``next()`` call instead of a
coin flip plus bookkeeping.  The output distribution is identical to
calling ``reservoir.offer`` per record (tested); only the CPU cost
changes.

Two execution modes share that contract:

* ``batch_size=1`` -- the original record-at-a-time loop: one scalar
  gap draw per acceptance, one ``next()`` per record.
* ``batch_size > 1`` (the default) -- :func:`~repro.sampling.skip.gaps_z`
  draws a whole batch of gaps at once; sequence-backed streams (lists,
  arrays -- anything sized and indexable) then advance by pure index
  arithmetic, touching only the accepted records, and iterator-backed
  streams discard skips through :func:`itertools.islice` instead of a
  ``next()``-per-record loop.  Accepted records reach the reservoir
  through one batched ``_accept_many`` call per gap batch.

All reservoir state changes go through the protected feeder API
(:meth:`~repro.reservoir.StreamReservoir._advance_skipped`,
:meth:`~repro.reservoir.StreamReservoir._accept`,
:meth:`~repro.reservoir.StreamReservoir._accept_many`), so ``stats()``
invariants and subclass batch hooks hold exactly as for ``offer``.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import islice
from typing import Iterable, Iterator

import numpy as np

from ..reservoir import StreamReservoir
from ..storage.records import Record
from .skip import ZSkipper, gaps_z, skip_count_x

#: Gap draws per gaps_z call in batched mode.
DEFAULT_BATCH = 256


def feed_stream(stream: Iterable[Record], reservoir: StreamReservoir,
                max_records: int | None = None, *,
                z_threshold: float = 22.0,
                batch_size: int = DEFAULT_BATCH) -> int:
    """Drive ``reservoir`` from ``stream`` using skip-based admission.

    Args:
        stream: the record source.  Sequences (anything supporting
            ``len`` and indexing) take the zero-copy index-arithmetic
            fast path in batched mode.
        reservoir: a structure constructed with ``admission="uniform"``
            (skip counting *is* the N/i law; "always" mode has nothing
            to skip and should use plain offers or ``ingest``).
        max_records: stop after this many stream records (``None`` =
            run until the stream ends).
        z_threshold: switch from Algorithm X to Algorithm Z once
            ``seen > z_threshold * capacity`` (scalar mode only; the
            batched gap generator has no X/Z split).
        batch_size: gaps drawn per batch; ``1`` selects the original
            scalar loop.

    Returns:
        The number of stream records consumed.

    Raises:
        ValueError: if the reservoir is not in uniform-admission mode,
            or ``batch_size`` is not positive.
    """
    if reservoir.admission != "uniform":
        raise ValueError(
            "skip feeding implements the uniform N/i admission law; "
            "construct the reservoir with admission='uniform'"
        )
    law = getattr(reservoir, "_law", None)
    if law is not None and not law.is_uniform:
        raise ValueError(
            "skip feeding draws gaps from the uniform N/i law; a "
            f"reservoir running law={law.name!r} must see every record "
            "(use offer_many/offer_batch)"
        )
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    if batch_size > 1 and isinstance(stream, Sequence):
        return _feed_sequence(stream, reservoir, max_records,
                              batch=batch_size)
    iterator: Iterator[Record] = iter(stream)
    consumed = _feed_fill(iterator, reservoir, max_records)
    if reservoir._seen < reservoir.capacity:
        return consumed  # stream or budget ended during the fill
    if batch_size > 1:
        return consumed + _feed_iterator_batched(
            iterator, reservoir,
            None if max_records is None else max_records - consumed,
            batch=batch_size,
        )
    return consumed + _feed_iterator_scalar(
        iterator, reservoir,
        None if max_records is None else max_records - consumed,
        z_threshold=z_threshold,
    )


# -- fill phase ------------------------------------------------------------


def _feed_fill(iterator: Iterator[Record], reservoir: StreamReservoir,
               max_records: int | None) -> int:
    """Admit every record until the reservoir is full (N/i >= 1)."""
    consumed = 0
    while reservoir._seen < reservoir.capacity:
        want = reservoir.capacity - reservoir._seen
        if max_records is not None:
            want = min(want, max_records - consumed)
        if want <= 0:
            return consumed
        chunk = list(islice(iterator, want))
        if not chunk:
            return consumed
        consumed += len(chunk)
        reservoir._accept_many(chunk)
    return consumed


# -- steady state: scalar (the original loop) ------------------------------


def _feed_iterator_scalar(iterator: Iterator[Record],
                          reservoir: StreamReservoir,
                          budget: int | None, *,
                          z_threshold: float) -> int:
    consumed = 0
    capacity = reservoir.capacity
    z: ZSkipper | None = None
    while budget is None or consumed < budget:
        if z is None and reservoir._seen > z_threshold * capacity:
            z = ZSkipper(capacity, reservoir._rng)
        if z is not None:
            gap = z.skip(reservoir._seen)
        else:
            gap = skip_count_x(capacity, reservoir._seen, reservoir._rng)
        if budget is not None and gap >= budget - consumed:
            # The next acceptance lies beyond the record budget: consume
            # the rest of the budget as skipped records and stop.
            skipped = _discard(iterator, budget - consumed)
            consumed += skipped
            reservoir._advance_skipped(skipped)
            return consumed
        skipped = _discard(iterator, gap)
        consumed += skipped
        reservoir._advance_skipped(skipped)
        if skipped < gap:
            return consumed  # stream ended inside the gap
        try:
            record = next(iterator)
        except StopIteration:
            return consumed
        consumed += 1
        reservoir._accept(record)
    return consumed


# -- steady state: batched gap draws ---------------------------------------


def _feed_iterator_batched(iterator: Iterator[Record],
                           reservoir: StreamReservoir,
                           budget: int | None, *, batch: int) -> int:
    consumed = 0
    capacity = reservoir.capacity
    rng = reservoir._np_rng
    while budget is None or consumed < budget:
        gaps = gaps_z(capacity, reservoir._seen, batch, rng)
        accepted: list[Record] = []
        for gap in gaps.tolist():
            if budget is not None and gap >= budget - consumed:
                skipped = _discard(iterator, budget - consumed)
                consumed += skipped
                reservoir._accept_many(accepted)
                reservoir._advance_skipped(skipped)
                return consumed
            skipped = _discard(iterator, gap)
            consumed += skipped
            if skipped < gap:
                reservoir._accept_many(accepted)
                reservoir._advance_skipped(skipped)
                return consumed  # stream ended inside the gap
            try:
                record = next(iterator)
            except StopIteration:
                reservoir._accept_many(accepted)
                reservoir._advance_skipped(skipped)
                return consumed
            consumed += 1
            reservoir._advance_skipped(skipped)
            accepted.append(record)
        reservoir._accept_many(accepted)
    return consumed


def _feed_sequence(sequence: Sequence[Record],
                   reservoir: StreamReservoir,
                   max_records: int | None, *, batch: int) -> int:
    """Index-arithmetic feeding: skipped records are never touched."""
    limit = len(sequence)
    if max_records is not None:
        limit = min(limit, max_records)
    position = 0  # records of `sequence` consumed so far

    # Fill phase: every record is admitted.
    if reservoir._seen < reservoir.capacity:
        take = min(limit, reservoir.capacity - reservoir._seen)
        if take > 0:
            reservoir._accept_many(list(sequence[:take]))
            position = take
        if reservoir._seen < reservoir.capacity:
            return position

    capacity = reservoir.capacity
    rng = reservoir._np_rng
    while position < limit:
        gaps = gaps_z(capacity, reservoir._seen, batch, rng)
        # 1-based offsets (from `position`) of the accepted records.
        offsets = np.cumsum(gaps + 1)
        in_range = int(np.searchsorted(offsets, limit - position,
                                       side="right"))
        accepted = [sequence[position + off - 1]
                    for off in offsets[:in_range].tolist()]
        if in_range < batch:
            # The next acceptance lies past the limit: everything up to
            # the limit is consumed, accepted records admitted, the
            # rest skipped.
            reservoir._accept_many(accepted)
            reservoir._advance_skipped(limit - position - in_range)
            position = limit
            break
        advance = int(offsets[-1])
        reservoir._accept_many(accepted)
        reservoir._advance_skipped(advance - in_range)
        position += advance
    return position


def _discard(iterator: Iterator[Record], n: int) -> int:
    """Consume up to ``n`` items; returns how many were available."""
    taken = 0
    while taken < n:
        chunk = min(n - taken, 4096)
        got = sum(1 for _ in islice(iterator, chunk))
        taken += got
        if got < chunk:
            break
    return taken
