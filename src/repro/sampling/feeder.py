"""Feeding a disk reservoir through Vitter's skip machinery.

Section 3.1: "Variations on the algorithm allow it to go to sleep for a
period of time during which it only counts the number of records that
have passed by.  After a certain number of records have been seen, the
algorithm can wake up and capture the next record from the stream" --
and the paper notes Vitter's techniques "could be used in conjunction
with our own".

:func:`feed_stream` is that conjunction: it drives any uniform-admission
:class:`~repro.reservoir.StreamReservoir` (a geometric file, the
multi-file structure, or a baseline) from a record iterator, using
Algorithm X / Algorithm Z gap sampling so that the per-record Python
work for *rejected* records is a single ``next()`` call instead of a
coin flip plus bookkeeping.  The output distribution is identical to
calling ``reservoir.offer`` per record (tested); only the CPU cost
changes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..reservoir import StreamReservoir
from ..storage.records import Record
from .skip import ZSkipper, skip_count_x


def feed_stream(stream: Iterable[Record], reservoir: StreamReservoir,
                max_records: int | None = None, *,
                z_threshold: float = 22.0) -> int:
    """Drive ``reservoir`` from ``stream`` using skip-based admission.

    Args:
        stream: the record source.
        reservoir: a structure constructed with ``admission="uniform"``
            (skip counting *is* the N/i law; "always" mode has nothing
            to skip and should use plain offers or ``ingest``).
        max_records: stop after this many stream records (``None`` =
            run until the stream ends).
        z_threshold: switch from Algorithm X to Algorithm Z once
            ``seen > z_threshold * capacity``.

    Returns:
        The number of stream records consumed.

    Raises:
        ValueError: if the reservoir is not in uniform-admission mode.
    """
    if reservoir.admission != "uniform":
        raise ValueError(
            "skip feeding implements the uniform N/i admission law; "
            "construct the reservoir with admission='uniform'"
        )
    iterator: Iterator[Record] = iter(stream)
    consumed = 0
    capacity = reservoir.capacity
    z: ZSkipper | None = None

    def remaining() -> int | None:
        if max_records is None:
            return None
        return max_records - consumed

    # Fill phase: every record is admitted (N/i >= 1).
    while reservoir._seen < capacity:
        if remaining() == 0:
            return consumed
        try:
            record = next(iterator)
        except StopIteration:
            return consumed
        consumed += 1
        reservoir.offer(record)

    # Steady phase: jump the exact acceptance gap, admit one record.
    while remaining() != 0:
        if z is None and reservoir._seen > z_threshold * capacity:
            z = ZSkipper(capacity, reservoir._rng)
        if z is not None:
            gap = z.skip(reservoir._seen)
        else:
            gap = skip_count_x(capacity, reservoir._seen, reservoir._rng)
        budget = remaining()
        if budget is not None and gap >= budget:
            # The next acceptance lies beyond the record budget: consume
            # the rest of the budget as skipped records and stop.
            consumed += _discard(iterator, budget)
            reservoir._seen += budget
            return consumed
        skipped = _discard(iterator, gap)
        consumed += skipped
        reservoir._seen += skipped
        if skipped < gap:
            return consumed  # stream ended inside the gap
        try:
            record = next(iterator)
        except StopIteration:
            return consumed
        consumed += 1
        reservoir._seen += 1
        reservoir._samples_added += 1
        reservoir._admit(record)
    return consumed


def _discard(iterator: Iterator[Record], n: int) -> int:
    """Consume up to ``n`` items; returns how many were available."""
    taken = 0
    while taken < n:
        try:
            next(iterator)
        except StopIteration:
            break
        taken += 1
    return taken
