"""Pluggable sampling laws over the geometric-file machinery.

The disk machinery of this repo -- buffer flushes, segment ladders,
LIFO stacks, columnar slabs, pipelined flush plans, checkpoints -- was
built for one law: the source paper's uniform reservoir sample.  This
module factors the *law* out of the *machinery*.  A
:class:`SamplingLaw` owns every distribution-bearing decision:

* **admission** -- which stream records enter the structure at all
  (scalar, vectorised-batch, and count-only forms);
* **placement** -- how an admitted record lands in the
  :class:`~repro.core.buffer.SampleBuffer` (Algorithm 2 replacement
  for the uniform law, plain staging for key-based laws, multiplicity
  fan-out for with-replacement);
* **victim selection** -- which resident records die at each flush
  (Algorithm 3's multivariate hypergeometric for uniform-victim laws,
  key-ordered culls for the others);
* **auxiliary state** -- per-record columns (keys, stream positions)
  carried in lock-step with the records through buffer, ledgers, and
  checkpoints;
* **materialisation** -- how a query-time sample is assembled from
  disk residents plus the in-flight buffer.

Four laws ship:

``uniform``
    The paper's Algorithm 1/2/3, *verbatim*: every method body is the
    pre-refactor code operating on the same RNG objects in the same
    order, so an engine constructed with the default config is
    bit-exact with the pre-law engines (samples, DiskStats, clock).

``aexpj``
    Efraimidis-Spirakis weighted-without-replacement (A-ExpJ).  Each
    record draws a key ``u**(1/w)`` (kept in log domain, see
    :func:`~repro.sampling.weights.exp_jump_keys`); the maintained
    sample is exactly the ``N`` largest keys seen.  Batched admission
    uses the exponential-jump skip: with threshold key ``T`` the
    weight to skip is ``log(u)/log(T)``, the weighted analogue of the
    PR 2 Algorithm-Z gap draws.  Between flushes the threshold is the
    *flush-time* threshold -- a stale lower bound -- which admits a
    superset that the flush culls; since the final sample is the top
    ``N`` keys of *all* records regardless of processing order, and a
    key below the flush threshold can never re-enter the top ``N``
    (thresholds only rise), the maintained distribution is exact.

``wr``
    Weighted *with* replacement (Startek-style): the reservoir is
    ``N`` exchangeable slots and record ``i`` with weight ``w_i``
    replaces ``m_i ~ Binomial(N, w_i / W_i)`` of them (``W_i`` the
    running weight total).  The ``m_i`` copies land by replacing
    ``k ~ Hypergeometric(count, N - count, m_i)`` distinct buffered
    records and joining with the rest, so the existing
    uniform-victim flush machinery applies unchanged.  Per-slot
    marginals are exactly ``P(slot = i) = w_i / W``; the joint law is
    negatively correlated across slots (victims are drawn without
    replacement), a variance-reducing coupling of the i.i.d.-slot
    reference.

``window``
    Sliding-window priority sampling (Babcock/Datar/Motwani): every
    record is admitted with a key and its stream position; the
    logical sample is the top-``s`` keys among the last ``window``
    records.  The reservoir capacity ``N`` is the *candidate budget*:
    flush victims are expired records and dominated records (more
    than ``s`` newer records carry higher keys), so the expected
    candidate need is ``s * (1 + ln(window / s))``.  When the budget
    forces a true candidate out, :attr:`SlidingWindowLaw.\
overflow_events` counts it -- the windowed analogue of the paper's
    stack-overflow accounting.  A ``weight`` spec adds time-decay
    priority inside the window.

See docs/SAMPLING_LAWS.md for the law matrix, config keys, and bench
numbers.
"""

from __future__ import annotations

import bisect
import math
import random
from collections import deque
from typing import Callable

import numpy as np

from ..reservoir import StreamReservoir, hypergeometric
from ..storage.records import Record
from .weights import (
    WeightFunction,
    exp_jump_keys,
    exponential_recency,
    uniform_weight,
    value_proportional,
)

#: Registered law names, accepted by ``GeometricFileConfig.law``.
LAW_NAMES = ("uniform", "aexpj", "wr", "window")

#: Named weight specs accepted in ``law_params`` (picklable stand-ins
#: for weight callables, so law configs cross process boundaries).
WEIGHT_SPECS = ("uniform", "value", "recency")


def _resolve_weight_fn(params: dict, weight_fn: WeightFunction | None
                       ) -> WeightFunction:
    """Pick the weight function: an explicit callable wins, else the
    picklable named spec from ``law_params`` (the sharded service can
    only ship plain data to worker processes)."""
    if weight_fn is not None:
        return weight_fn
    spec = params.get("weight", "uniform")
    if spec == "uniform":
        return uniform_weight
    if spec == "value":
        return value_proportional()
    if spec == "recency":
        half_life = params.get("half_life")
        if half_life is None:
            raise ValueError(
                "weight spec 'recency' needs a ('half_life', h) param")
        return exponential_recency(float(half_life))
    raise ValueError(
        f"unknown weight spec {spec!r}; expected one of {WEIGHT_SPECS} "
        "or pass weight_fn=")


def make_law(name: str, params: tuple = (),
             weight_fn: WeightFunction | None = None) -> "SamplingLaw":
    """Instantiate a law from its config spelling.

    Args:
        name: one of :data:`LAW_NAMES`.
        params: ``(key, value)`` pairs -- the
            ``GeometricFileConfig.law_params`` field (plain data, so it
            survives ``asdict``/JSON/pickle round trips).
        weight_fn: optional callable overriding the named weight spec
            for the weighted laws.
    """
    kv = dict(params)
    if name == "uniform":
        return UniformLaw()
    if name == "aexpj":
        return AExpJLaw(_resolve_weight_fn(kv, weight_fn))
    if name == "wr":
        return WeightedReplacementLaw(_resolve_weight_fn(kv, weight_fn))
    if name == "window":
        window = kv.get("window")
        if window is None:
            raise ValueError(
                "law 'window' needs a ('window', W) entry in law_params")
        return SlidingWindowLaw(
            int(window),
            sample_size=(int(kv["sample_size"])
                         if "sample_size" in kv else None),
            weight_fn=_resolve_weight_fn(kv, weight_fn),
        )
    raise ValueError(f"unknown sampling law {name!r}; "
                     f"expected one of {LAW_NAMES}")


class SamplingLaw:
    """Strategy protocol every sampling law implements.

    One law instance is bound to one structure (laws carry mutable
    state: thresholds, weight totals, pending auxiliary rows).  The
    engine calls the hooks in a fixed order:

    admission (``StreamReservoir`` verbs)
        :meth:`admit` / :meth:`select_many` / :meth:`select_batch` /
        :meth:`select_count` decide which records enter.  Laws with
        per-record auxiliary state stash one aux row per admitted
        record; placement consumes the stash in order.

    placement (``GeometricFile`` / ``MultipleGeometricFiles``)
        :meth:`place` / :meth:`place_many` / :meth:`place_batch` /
        :meth:`place_count` move admitted records into the buffer and
        trigger startup/steady flushes at the law's boundaries.

    victims (flush time)
        With :attr:`uniform_victims` the file keeps its Algorithm 3
        hypergeometric eviction; otherwise :meth:`plan_victims` picks
        the dead by content (keys/positions), applying old-ledger
        evictions itself and returning the drained-row victims for
        the freshly written ledger.

    materialisation (query time)
        :meth:`materialize` / :meth:`materialize_batch` assemble the
        current logical sample from ledgers plus buffer.

    checkpoints
        :meth:`state_dict` / :meth:`restore_state` round-trip the
        law's scalar state; aux rows ride the ledger/buffer codecs.
    """

    name = "abstract"
    #: True only for :class:`UniformLaw` -- gates the bit-exact legacy
    #: paths (feeder skips, AQP hot cache, count-only ingest).
    is_uniform = False
    #: Flush victims are a uniform subset of residents: keep the
    #: file's Algorithm 3 eviction and ``apply_pending`` queries.
    uniform_victims = False
    #: float64 aux columns carried per record (0 = none).
    aux_width = 0
    #: The law's samples can be merged across independent structures
    #: by ranking a shared per-record key (:meth:`sample_keyed`); the
    #: sharded service uses this for exact distributed queries.
    mergeable_by_key = False

    # -- admission ---------------------------------------------------------

    def admit(self, res: StreamReservoir, record: Record | None) -> bool:
        raise NotImplementedError

    def select_many(self, res: StreamReservoir, records, first: int,
                    last: int) -> list:
        raise NotImplementedError

    def select_batch(self, res: StreamReservoir, batch, first: int,
                     last: int):
        """Columnar admission; the default decodes to the object law.

        Key-based laws need per-record weight/key draws, so the batch
        verb decodes once and runs :meth:`select_many`; the admitted
        records still land in the columnar slab via placement.
        """
        return self.select_many(res, list(batch), first, last)

    def select_count(self, res: StreamReservoir, n: int) -> int:
        raise TypeError(
            f"law {self.name!r} needs each record's content; "
            "count-only ingest() is uniform-law only")

    # -- placement ---------------------------------------------------------

    def place(self, gf, record: Record | None) -> None:
        raise NotImplementedError

    def place_many(self, gf, records: list) -> None:
        for record in records:
            self.place(gf, record)

    def place_batch(self, gf, batch) -> None:
        self.place_many(gf, list(batch))

    def place_count(self, gf, n: int) -> None:
        raise TypeError(
            f"law {self.name!r} cannot place anonymous records")

    # -- victims -----------------------------------------------------------

    def plan_victims(self, gf, drained, drained_aux: np.ndarray,
                     count: int) -> np.ndarray:
        """Choose flush victims by content (non-uniform-victim laws).

        Called with the freshly drained records *before* the new
        ledger exists.  Must evict exactly ``count`` records in total:
        old-ledger victims are applied here via
        :meth:`~repro.core.subsample.SubsampleLedger.evict_indices`;
        the returned int64 array indexes victims among the drained
        records, which the file applies to the new ledger after its
        segments are written (booked as ghost stack debt, exactly like
        a uniform eviction outrunning the segment cascade).
        """
        raise NotImplementedError

    # -- materialisation ---------------------------------------------------

    def materialize(self, gf, rng: random.Random) -> list:
        raise NotImplementedError

    def materialize_batch(self, gf, gen: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    # -- checkpoint --------------------------------------------------------

    def state_dict(self) -> dict | None:
        """JSON-safe scalar state (``None`` when stateless)."""
        return None

    def restore_state(self, state: dict) -> None:
        pass

    def stats_extra(self) -> dict:
        """Law counters surfaced through ``stats().extra['law']``."""
        return {}

    def validate_config(self, config) -> None:
        """Reject config combinations the law cannot honour."""

    # -- shared helpers ----------------------------------------------------

    def _disk_records(self, gf) -> list:
        combined: list = []
        for ledger in gf.iter_ledgers():
            combined.extend(ledger.records or ())
        return combined

    def _disk_parts(self, gf) -> list[np.ndarray]:
        return [ledger.records.array for ledger in gf.iter_ledgers()
                if ledger.records is not None and len(ledger.records)]

    def _disk_aux(self, gf) -> np.ndarray:
        parts = [ledger.aux for ledger in gf.iter_ledgers()
                 if ledger.aux is not None and len(ledger.aux)]
        if not parts:
            return np.zeros((0, self.aux_width))
        return np.concatenate(parts)

    def _gather_eviction_pool(self, gf, drained_aux: np.ndarray):
        """(ledgers, aux, owner, row) over residents plus the drain.

        ``owner`` holds the ledger index (``-1`` for drained rows) and
        ``row`` the index within that owner, so a victim subset maps
        straight back to per-ledger ``evict_indices`` calls.  Iterates
        ledgers in the same order the materialise helpers concatenate
        them, keeping every row <-> aux pairing aligned.
        """
        ledgers = list(gf.iter_ledgers())
        aux_parts, owner_parts, row_parts = [], [], []
        for index, ledger in enumerate(ledgers):
            aux = ledger.aux
            n = 0 if aux is None else len(aux)
            if not n:
                continue
            aux_parts.append(aux)
            owner_parts.append(np.full(n, index, dtype=np.int64))
            row_parts.append(np.arange(n, dtype=np.int64))
        n = len(drained_aux)
        aux_parts.append(drained_aux)
        owner_parts.append(np.full(n, -1, dtype=np.int64))
        row_parts.append(np.arange(n, dtype=np.int64))
        return (ledgers, np.concatenate(aux_parts),
                np.concatenate(owner_parts), np.concatenate(row_parts))

    def _apply_victims(self, ledgers, owner: np.ndarray, row: np.ndarray,
                       victims: np.ndarray) -> np.ndarray:
        """Evict old-ledger victims; return the drained-row victims."""
        v_owner = owner[victims]
        v_row = row[victims]
        for index in np.unique(v_owner):
            if index < 0:
                continue
            ledgers[int(index)].evict_indices(v_row[v_owner == index])
        return np.sort(v_row[v_owner == -1])


class UniformLaw(SamplingLaw):
    """The source paper's law, hoisted verbatim.

    Every method body is the pre-refactor admission / placement code
    moved here unchanged: the same ``random.Random`` and numpy
    ``Generator`` objects are consumed in the same order, so a
    structure running this law is bit-exact with the pre-law engines
    on samples, DiskStats, and clock (twin-tested).
    """

    name = "uniform"
    is_uniform = True
    uniform_victims = True

    # -- admission (StreamReservoir.offer*/ingest bodies) ------------------

    def admit(self, res: StreamReservoir, record: Record | None) -> bool:
        if res.admission == "always" or res._seen <= res.capacity:
            return True
        return res._rng.random() * res._seen < res.capacity

    def select_many(self, res: StreamReservoir, records, first: int,
                    last: int) -> list:
        n = len(records)
        if res.admission == "always" or last <= res.capacity:
            return records if isinstance(records, list) else list(records)
        positions = np.arange(first, last + 1, dtype=np.float64)
        mask = (res._np_rng.random(n) * positions) < res.capacity
        if first <= res.capacity:
            mask[:res.capacity - first + 1] = True
        return [records[i] for i in np.flatnonzero(mask)]

    def select_batch(self, res: StreamReservoir, batch, first: int,
                     last: int):
        n = len(batch)
        if res.admission == "always" or last <= res.capacity:
            return batch
        positions = np.arange(first, last + 1, dtype=np.float64)
        mask = (res._np_rng.random(n) * positions) < res.capacity
        if first <= res.capacity:
            mask[:res.capacity - first + 1] = True
        return batch.take(np.flatnonzero(mask))

    def select_count(self, res: StreamReservoir, n: int) -> int:
        if res.admission == "always":
            return n
        return res._count_uniform_admissions(n)

    # -- placement (GeometricFile._admit* bodies) --------------------------

    def place(self, gf, record: Record | None) -> None:
        if gf.in_startup:
            gf.buffer.append(record)
            if gf.buffer.count >= gf._startup_sizes[gf._startup_index]:
                gf._startup_flush()
            return
        gf.buffer.add_admitted(record, gf.capacity)
        if gf.buffer.is_full:
            gf._flush()

    def place_many(self, gf, records: list) -> None:
        i = 0
        n = len(records)
        while i < n:
            if gf.in_startup:
                target = gf._startup_sizes[gf._startup_index]
                take = min(n - i, target - gf.buffer.count)
                gf.buffer.extend(records[i:i + take])
                i += take
                if gf.buffer.count >= target:
                    gf._startup_flush()
            else:
                i += gf.buffer.absorb_many(records, gf.capacity, start=i)
                if gf.buffer.is_full:
                    gf._flush()

    def place_batch(self, gf, batch) -> None:
        i = 0
        n = len(batch)
        while i < n:
            if gf.in_startup:
                target = gf._startup_sizes[gf._startup_index]
                take = min(n - i, target - gf.buffer.count)
                gf.buffer.extend_batch(batch[i:i + take])
                i += take
                if gf.buffer.count >= target:
                    gf._startup_flush()
            else:
                i += gf.buffer.absorb_batch(batch, gf.capacity, start=i)
                if gf.buffer.is_full:
                    gf._flush()

    def place_count(self, gf, n: int) -> None:
        while n > 0:
            if gf.in_startup:
                target = gf._startup_sizes[gf._startup_index]
            else:
                target = gf.buffer.capacity
            take = min(n, target - gf.buffer.count)
            gf.buffer.append_count(take)
            n -= take
            if gf.buffer.count >= target:
                if gf.in_startup:
                    gf._startup_flush()
                else:
                    gf._flush()

    # -- materialisation (GeometricFile.sample* bodies) --------------------

    def materialize(self, gf, rng: random.Random) -> list:
        combined = self._disk_records(gf)
        pending = list(gf.buffer)
        if gf.in_startup:
            return combined + pending
        return StreamReservoir.apply_pending(combined, pending, rng)

    def materialize_batch(self, gf, gen: np.random.Generator) -> np.ndarray:
        dtype = gf.schema.dtype
        parts = self._disk_parts(gf)
        pending = gf.buffer.pending_view()
        if gf.in_startup:
            if len(pending):
                parts = parts + [pending]
            return (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))
        combined = (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))
        return StreamReservoir.apply_pending_batch(combined, pending, gen)


class _WeightedLaw(SamplingLaw):
    """Shared weight plumbing for the non-uniform laws."""

    def __init__(self, weight_fn: WeightFunction) -> None:
        self.weight_fn = weight_fn
        #: Aux rows stashed at admission, consumed by placement in
        #: admission order.  Always empty between ingest verbs, so
        #: checkpoints never need to serialise it.
        self._stash: deque = deque()

    def _weight_of(self, record: Record) -> float:
        weight = float(self.weight_fn(record))
        if not weight > 0:
            raise ValueError(
                f"weight function returned {weight!r}; must be positive")
        return weight

    def _weights_of(self, records) -> np.ndarray:
        fn = self.weight_fn
        w = np.fromiter((fn(r) for r in records), dtype=np.float64,
                        count=len(records))
        if w.size and not np.all(w > 0):
            raise ValueError("weight function must be strictly positive")
        return w

    def place(self, gf, record: Record | None) -> None:
        gf.buffer.append(record, aux=self._stash.popleft())
        if gf.in_startup:
            if gf.buffer.count >= gf._startup_sizes[gf._startup_index]:
                gf._startup_flush()
        elif gf.buffer.is_full:
            gf._flush()

    def place_many(self, gf, records: list) -> None:
        stash = self._stash
        buffer = gf.buffer
        for record in records:
            buffer.append(record, aux=stash.popleft())
            if gf.in_startup:
                if buffer.count >= gf._startup_sizes[gf._startup_index]:
                    gf._startup_flush()
            elif buffer.is_full:
                gf._flush()


class AExpJLaw(_WeightedLaw):
    """Efraimidis-Spirakis weighted-without-replacement (A-ExpJ).

    State: the log-domain threshold key ``log T`` -- the smallest key
    that survived the last flush cull (``-inf`` until the reservoir
    first overflows).  Admission keeps any key above the threshold;
    the flush keeps the top ``N`` keys of residents plus drain and
    raises the threshold to the new minimum survivor.

    Exactness: the target sample is the top ``N`` keys over *all*
    stream records (Efraimidis & Spirakis 2006), an order-free
    criterion.  The stale (flush-time) threshold admits a superset of
    the true top ``N`` -- never a subset, since thresholds only rise
    -- and the cull discards exactly the surplus, so the maintained
    sample is distributionally exact at every flush boundary, and
    query-time materialisation applies the same top-``N`` rule to the
    buffered surplus in between.
    """

    name = "aexpj"
    aux_width = 1  # log-domain key
    mergeable_by_key = True

    def __init__(self, weight_fn: WeightFunction) -> None:
        super().__init__(weight_fn)
        self._log_t = -math.inf

    # -- admission ---------------------------------------------------------

    def admit(self, res: StreamReservoir, record: Record) -> bool:
        weight = self._weight_of(record)
        log_t = self._log_t
        if log_t == -math.inf:
            u = 1.0 - res._rng.random()
            self._stash.append((math.log(u) / weight,))
            return True
        # key > T  <=>  u > T**w: draw u conditioned on admission.
        t_pow = math.exp(log_t * weight)
        u = res._rng.random()
        if u <= t_pow:
            return False
        self._stash.append((math.log(u) / weight,))
        return True

    def select_many(self, res: StreamReservoir, records, first: int,
                    last: int) -> list:
        if not isinstance(records, list):
            records = list(records)
        weights = self._weights_of(records)
        log_t = self._log_t
        rng = res._np_rng
        if log_t == -math.inf:
            keys = exp_jump_keys(weights, rng)
            self._stash.extend((float(key),) for key in keys)
            return records
        # Exponential jump: the weight mass to skip past is
        # X = log(u) / log(T); the record whose cumulative weight
        # crosses X is the next admission, with its key drawn
        # conditioned on exceeding T.  One uniform per admission plus
        # one per jump -- O(admitted), not O(batch).
        cumulative = np.cumsum(weights)
        n = len(records)
        admitted: list = []
        stash = self._stash
        position = 0.0
        while True:
            u = rng.random()
            if u <= 0.0:  # pragma: no cover - measure-zero guard
                u = np.nextafter(0, 1)
            position += math.log(u) / log_t
            index = int(np.searchsorted(cumulative, position, side="left"))
            if index >= n:
                break
            weight = float(weights[index])
            t_pow = math.exp(log_t * weight)
            key_u = t_pow + (1.0 - t_pow) * rng.random()
            stash.append((math.log(key_u) / weight,))
            admitted.append(records[index])
            position = float(cumulative[index])
        return admitted

    # -- victims -----------------------------------------------------------

    def plan_victims(self, gf, drained, drained_aux: np.ndarray,
                     count: int) -> np.ndarray:
        ledgers, aux, owner, row = self._gather_eviction_pool(
            gf, drained_aux)
        total = aux.shape[0]
        n_evict = total - gf.capacity
        if n_evict <= 0:
            return np.empty(0, dtype=np.int64)
        keys = aux[:, 0]
        order = np.argsort(keys, kind="stable")
        victims = order[:n_evict]
        # The smallest surviving key is the new admission threshold.
        self._log_t = float(keys[order[n_evict]])
        return self._apply_victims(ledgers, owner, row, victims)

    # -- materialisation ---------------------------------------------------

    def _top_k_indices(self, gf, keys: np.ndarray) -> np.ndarray:
        k = min(keys.shape[0], gf.capacity)
        if k == keys.shape[0]:
            return np.arange(k, dtype=np.int64)
        return np.argsort(keys, kind="stable")[keys.shape[0] - k:]

    def materialize(self, gf, rng: random.Random) -> list:
        records = self._disk_records(gf) + list(gf.buffer)
        keys = np.concatenate(
            [self._disk_aux(gf)[:, 0], gf.buffer.aux_view()[:, 0]])
        return [records[int(i)] for i in self._top_k_indices(gf, keys)]

    def materialize_batch(self, gf, gen: np.random.Generator) -> np.ndarray:
        dtype = gf.schema.dtype
        parts = self._disk_parts(gf)
        pending = gf.buffer.pending_view()
        if len(pending):
            parts = parts + [pending]
        combined = (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))
        keys = np.concatenate(
            [self._disk_aux(gf)[:, 0], gf.buffer.aux_view()[:, 0]])
        return combined[self._top_k_indices(gf, keys)]

    def sample_keyed(self, gf) -> tuple[list, np.ndarray]:
        """The current sample with its log keys, best key first.

        A record's key depends only on the record (and its own uniform
        draw), never on which reservoir holds it, so keys rank records
        across *independent* structures: the union's A-ExpJ sample is
        exactly the global top-``k`` of the concatenated keyed samples.
        The sharded service's merge layer relies on this.
        """
        records = self._disk_records(gf) + list(gf.buffer)
        keys = np.concatenate(
            [self._disk_aux(gf)[:, 0], gf.buffer.aux_view()[:, 0]])
        top = self._top_k_indices(gf, keys)[::-1]
        return [records[int(i)] for i in top], keys[top]

    # -- checkpoint --------------------------------------------------------

    def state_dict(self) -> dict:
        return {"log_threshold": self._log_t}

    def restore_state(self, state: dict) -> None:
        self._log_t = float(state["log_threshold"])

    def stats_extra(self) -> dict:
        return {"log_threshold": self._log_t}


class WeightedReplacementLaw(_WeightedLaw):
    """Weighted with-replacement sampling over ``N`` exchangeable slots.

    State: the running weight total ``W``.  Record ``i`` replaces
    ``m_i ~ Binomial(N, w_i / W_i)`` slots; since victims are uniform
    distinct slots, the copies ride the existing uniform machinery:
    ``k ~ Hypergeometric(count, N - count, m_i)`` copies overwrite
    distinct buffered records, the remaining ``m_i - k`` join the
    buffer and each dooms one uniform disk resident at the next flush
    (Algorithm 3 unchanged, hence :attr:`uniform_victims`).

    Per-slot marginals are exact (``P(slot = i) = w_i / W`` by
    induction on the survival recursion); the slots are negatively
    correlated rather than i.i.d. because victims are drawn without
    replacement, and copies of a multiplicity spanning a flush
    boundary resolve their victims in the later epoch.
    """

    name = "wr"
    uniform_victims = True

    def __init__(self, weight_fn: WeightFunction) -> None:
        super().__init__(weight_fn)
        self._total = 0.0
        #: Multiplicities of admitted records, consumed by placement.
        self._pending: deque[int] = deque()

    # -- admission ---------------------------------------------------------

    def admit(self, res: StreamReservoir, record: Record) -> bool:
        weight = self._weight_of(record)
        self._total += weight
        m = int(res._np_rng.binomial(res.capacity, weight / self._total))
        if m == 0:
            return False
        self._pending.append(m)
        return True

    def select_many(self, res: StreamReservoir, records, first: int,
                    last: int) -> list:
        if not isinstance(records, list):
            records = list(records)
        weights = self._weights_of(records)
        if not weights.size:
            return []
        cumulative = self._total + np.cumsum(weights)
        m = res._np_rng.binomial(res.capacity, weights / cumulative)
        self._total = float(cumulative[-1])
        admitted_idx = np.flatnonzero(m > 0)
        self._pending.extend(int(v) for v in m[admitted_idx])
        return [records[i] for i in admitted_idx]

    # -- placement ---------------------------------------------------------

    def place(self, gf, record: Record | None) -> None:
        m = self._pending.popleft()
        while m > 0 and gf.in_startup:
            gf.buffer.append(record)
            m -= 1
            if gf.buffer.count >= gf._startup_sizes[gf._startup_index]:
                gf._startup_flush()
        if m <= 0:
            return
        count = gf.buffer.count
        in_buffer = 0
        if count > 0:
            in_buffer = hypergeometric(
                gf._np_rng, count, gf.capacity - count, m)
        if in_buffer:
            for slot in gf._rng.sample(range(count), in_buffer):
                gf.buffer.replace(slot, record)
        for _ in range(m - in_buffer):
            gf.buffer.append(record)
            if gf.buffer.is_full:
                gf._flush()

    def place_many(self, gf, records: list) -> None:
        for record in records:
            self.place(gf, record)

    # -- materialisation (uniform victims => uniform pending apply) --------

    def materialize(self, gf, rng: random.Random) -> list:
        combined = self._disk_records(gf)
        pending = list(gf.buffer)
        if gf.in_startup:
            return combined + pending
        return StreamReservoir.apply_pending(combined, pending, rng)

    def materialize_batch(self, gf, gen: np.random.Generator) -> np.ndarray:
        dtype = gf.schema.dtype
        parts = self._disk_parts(gf)
        pending = gf.buffer.pending_view()
        if gf.in_startup:
            if len(pending):
                parts = parts + [pending]
            return (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))
        combined = (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))
        return StreamReservoir.apply_pending_batch(combined, pending, gen)

    # -- checkpoint --------------------------------------------------------

    def state_dict(self) -> dict:
        return {"total_weight": self._total}

    def restore_state(self, state: dict) -> None:
        self._total = float(state["total_weight"])

    def stats_extra(self) -> dict:
        return {"total_weight": self._total}


class SlidingWindowLaw(_WeightedLaw):
    """Priority sampling over the last ``window`` stream records.

    Every record is admitted (the newest record is always a sample
    candidate) carrying two aux columns: a priority key (weighted like
    A-ExpJ, so a ``recency`` weight spec yields time-decay inside the
    window) and its stream position.  The logical sample is the
    top-``sample_size`` keys among in-window records; the reservoir
    capacity ``N`` bounds the *candidate set*, whose expected need is
    ``s * (1 + ln(window / s))`` (Babcock et al. 2002) -- size ``N``
    generously above that, e.g. ``N >= s * (2 + ln(window / s))``.

    Flush victims, worst first: expired records, then dominated ones
    (dominance rank = number of newer in-window records with a higher
    key; rank ``>= s`` means the record can never re-enter the
    sample), then -- only if the candidate budget still overflows --
    true candidates by worst rank, counted in
    :attr:`overflow_events`.
    """

    name = "window"
    aux_width = 2  # (log key, stream position)

    def __init__(self, window: int, *, sample_size: int | None = None,
                 weight_fn: WeightFunction = uniform_weight) -> None:
        super().__init__(weight_fn)
        if window < 1:
            raise ValueError("window must be at least 1")
        if sample_size is not None and sample_size < 1:
            raise ValueError("sample_size must be positive")
        self.window = window
        self._sample_size = sample_size
        self.overflow_events = 0

    def sample_size_for(self, capacity: int) -> int:
        """The logical sample size ``s`` (defaults to ``N // 4``,
        leaving budget for the ``s * ln(window/s)`` candidate tail)."""
        if self._sample_size is not None:
            return self._sample_size
        return max(1, capacity // 4)

    def validate_config(self, config) -> None:
        s = self.sample_size_for(config.capacity)
        if s > config.capacity:
            raise ValueError(
                f"sample_size {s} exceeds the candidate budget "
                f"(capacity {config.capacity})")
        if s > self.window:
            raise ValueError(
                f"sample_size {s} exceeds the window {self.window}")

    # -- admission (everything enters; the key decides survival) -----------

    def admit(self, res: StreamReservoir, record: Record) -> bool:
        weight = self._weight_of(record)
        u = 1.0 - res._rng.random()
        self._stash.append((math.log(u) / weight, float(res._seen)))
        return True

    def select_many(self, res: StreamReservoir, records, first: int,
                    last: int) -> list:
        if not isinstance(records, list):
            records = list(records)
        keys = exp_jump_keys(self._weights_of(records), res._np_rng)
        positions = np.arange(first, last + 1, dtype=np.float64)
        self._stash.extend(
            (float(k), float(p)) for k, p in zip(keys, positions))
        return records

    # -- victims -----------------------------------------------------------

    def plan_victims(self, gf, drained, drained_aux: np.ndarray,
                     count: int) -> np.ndarray:
        ledgers, aux, owner, row = self._gather_eviction_pool(
            gf, drained_aux)
        total = aux.shape[0]
        n_evict = total - gf.capacity
        if n_evict <= 0:
            return np.empty(0, dtype=np.int64)
        keys = aux[:, 0]
        positions = aux[:, 1]
        expired = positions <= (gf._seen - self.window)
        ranks = self._dominance_ranks(keys, positions)
        # Worst records first: expired, then highest dominance rank,
        # then lowest key.  np.lexsort orders by the *last* key first.
        order = np.lexsort((keys, -ranks, np.where(expired, 0, 1)))
        victims = order[:n_evict]
        s = self.sample_size_for(gf.capacity)
        lost = int(np.sum(~expired[victims] & (ranks[victims] < s)))
        if lost:
            self.overflow_events += lost
        return self._apply_victims(ledgers, owner, row, victims)

    @staticmethod
    def _dominance_ranks(keys: np.ndarray, positions: np.ndarray
                         ) -> np.ndarray:
        """Rank = newer records with a strictly higher key.

        One newest-first sweep with an insertion-sorted key list:
        O(n log n) comparisons (list inserts dominate at huge n, but
        n is capacity + buffer here).
        """
        order = np.argsort(-positions, kind="stable")
        ranks = np.empty(keys.shape[0], dtype=np.int64)
        seen_keys: list[float] = []
        for i in order:
            key = float(keys[i])
            ranks[int(i)] = len(seen_keys) - bisect.bisect_right(
                seen_keys, key)
            bisect.insort(seen_keys, key)
        return ranks

    # -- materialisation ---------------------------------------------------

    def _select_live(self, gf, keys: np.ndarray, positions: np.ndarray
                     ) -> np.ndarray:
        live = np.flatnonzero(positions > (gf._seen - self.window))
        s = self.sample_size_for(gf.capacity)
        if live.shape[0] <= s:
            return live
        return live[np.argsort(keys[live], kind="stable")[live.shape[0] - s:]]

    def materialize(self, gf, rng: random.Random) -> list:
        records = self._disk_records(gf) + list(gf.buffer)
        aux = np.concatenate([self._disk_aux(gf), gf.buffer.aux_view()])
        chosen = self._select_live(gf, aux[:, 0], aux[:, 1])
        return [records[int(i)] for i in chosen]

    def materialize_batch(self, gf, gen: np.random.Generator) -> np.ndarray:
        dtype = gf.schema.dtype
        parts = self._disk_parts(gf)
        pending = gf.buffer.pending_view()
        if len(pending):
            parts = parts + [pending]
        combined = (np.concatenate(parts) if parts
                    else np.empty(0, dtype=dtype))
        aux = np.concatenate([self._disk_aux(gf), gf.buffer.aux_view()])
        return combined[self._select_live(gf, aux[:, 0], aux[:, 1])]

    # -- checkpoint --------------------------------------------------------

    def state_dict(self) -> dict:
        return {"overflow_events": self.overflow_events}

    def restore_state(self, state: dict) -> None:
        self.overflow_events = int(state["overflow_events"])

    def stats_extra(self) -> dict:
        return {"window": self.window,
                "overflow_events": self.overflow_events}


# -- in-memory reference implementations -----------------------------------
#
# Small, obviously-correct twins for the equivalence suites: each
# realises the law's target distribution directly in memory, with no
# buffers, flushes, thresholds, or jumps.  tests/test_laws.py compares
# per-record inclusion (or slot) frequencies over many seeded trials.


class AExpJReference:
    """Dense A-Res: key every record, keep the top ``N``.

    Shares :func:`~repro.sampling.weights.exp_jump_keys` with
    :class:`AExpJLaw`, so engine and reference draw keys from the one
    kernel; Efraimidis & Spirakis prove A-Res and A-ExpJ sample the
    identical distribution (both select the top-``N`` keys).
    """

    def __init__(self, capacity: int, weight_fn: WeightFunction,
                 seed: int = 0) -> None:
        self.capacity = capacity
        self.weight_fn = weight_fn
        self._np_rng = np.random.default_rng(seed)
        self._keys: list[float] = []
        self._records: list[Record] = []

    def offer_many(self, records) -> None:
        records = list(records)
        weights = np.fromiter((self.weight_fn(r) for r in records),
                              dtype=np.float64, count=len(records))
        keys = exp_jump_keys(weights, self._np_rng)
        self._keys.extend(float(k) for k in keys)
        self._records.extend(records)

    def sample(self) -> list[Record]:
        keys = np.asarray(self._keys)
        k = min(self.capacity, keys.shape[0])
        top = np.argsort(keys, kind="stable")[keys.shape[0] - k:]
        return [self._records[int(i)] for i in top]


class WeightedReplacementReference:
    """I.i.d. slots: record ``i`` replaces each slot w.p. ``w_i / W_i``."""

    def __init__(self, capacity: int, weight_fn: WeightFunction,
                 seed: int = 0) -> None:
        self.capacity = capacity
        self.weight_fn = weight_fn
        self._np_rng = np.random.default_rng(seed)
        self._total = 0.0
        self._slots: list[Record | None] = [None] * capacity

    def offer_many(self, records) -> None:
        for record in records:
            weight = float(self.weight_fn(record))
            self._total += weight
            mask = self._np_rng.random(self.capacity) < (weight
                                                         / self._total)
            for slot in np.flatnonzero(mask):
                self._slots[int(slot)] = record

    def sample(self) -> list[Record]:
        return [r for r in self._slots if r is not None]


class SlidingWindowReference:
    """Ground truth: a uniform ``s``-subset of the in-window records.

    Priority sampling with i.i.d. keys selects each in-window
    ``s``-subset equiprobably, so the reference skips keys entirely
    and draws the subset directly.
    """

    def __init__(self, window: int, sample_size: int,
                 seed: int = 0) -> None:
        self.window = window
        self.sample_size = sample_size
        self._rng = random.Random(seed)
        self._recent: deque[Record] = deque(maxlen=window)

    def offer_many(self, records) -> None:
        self._recent.extend(records)

    def sample(self) -> list[Record]:
        pool = list(self._recent)
        if len(pool) <= self.sample_size:
            return pool
        return self._rng.sample(pool, self.sample_size)


_REFERENCES: dict[str, Callable] = {
    "aexpj": AExpJReference,
    "wr": WeightedReplacementReference,
    "window": SlidingWindowReference,
}


def reference_for(name: str, **kwargs):
    """Instantiate the in-memory reference twin for a law name."""
    try:
        cls = _REFERENCES[name]
    except KeyError:
        raise ValueError(f"no reference implementation for law {name!r}; "
                         f"expected one of {tuple(_REFERENCES)}") from None
    return cls(**kwargs)
