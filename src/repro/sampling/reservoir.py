"""Classic reservoir sampling (paper Algorithm 1).

This is the in-memory baseline every disk-based structure in the
library generalises: maintain a fixed-capacity set ``R`` such that after
``i`` records have been seen, ``R`` is a uniform random sample without
replacement of those ``i`` records.

The implementation follows Algorithm 1 verbatim: the first ``N`` records
enter directly; record ``i > N`` enters with probability ``N / i`` and,
when it does, evicts a uniformly random resident.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")


class ReservoirSample:
    """A uniform random sample of everything fed to :meth:`offer`.

    Args:
        capacity: the fixed sample size ``N = |R|``.
        rng: source of randomness (seeded for reproducibility).

    Invariants (tested):
        * ``len(sample)`` == ``min(capacity, seen)``;
        * after any prefix of offers, each seen item is resident with
          probability ``capacity / seen``.
    """

    def __init__(self, capacity: int, rng: random.Random | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = rng or random.Random()
        self._items: list = []
        self._seen = 0

    @property
    def seen(self) -> int:
        """Records offered so far (the stream position ``i``)."""
        return self._seen

    @property
    def is_full(self) -> bool:
        return len(self._items) == self.capacity

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def contents(self) -> list:
        """A copy of the current sample."""
        return list(self._items)

    def offer(self, item: T) -> T | None:
        """Present one stream record to the reservoir.

        Returns the record that was evicted to make room, or ``None``
        when nothing was evicted (the reservoir was still filling, or
        the new record was rejected -- in which case the rejected record
        itself is returned as the "evicted" one would be misleading, so
        rejection also returns ``None``).
        """
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return None
        # Admit with probability N / i (Algorithm 1, line 4).
        if self._rng.random() * self._seen < self.capacity:
            victim_index = self._rng.randrange(self.capacity)
            evicted = self._items[victim_index]
            self._items[victim_index] = item
            return evicted
        return None

    def extend(self, items: Iterable[T]) -> None:
        """Offer every item of an iterable in order."""
        for item in items:
            self.offer(item)


def sample_without_replacement(population: Sequence[T], n: int,
                               rng: random.Random | None = None) -> list[T]:
    """One-shot uniform sample of ``n`` items via a reservoir pass.

    Provided for symmetry with the streaming API; for in-memory
    sequences ``random.sample`` is equivalent, and the tests assert the
    two agree in distribution.
    """
    if n < 0:
        raise ValueError("sample size must be non-negative")
    if n > len(population):
        raise ValueError("cannot sample more items than the population has")
    if n == 0:
        return []
    reservoir = ReservoirSample(n, rng)
    reservoir.extend(population)
    return reservoir.contents()
