"""Skip-based reservoir sampling (Vitter 1985).

Section 3.1 of the paper notes that "variations on the algorithm allow
it to go to sleep for a period of time during which it only counts the
number of records that have passed by" -- Vitter's Algorithms X and Z.
They compute, in O(1) expected work per *accepted* record, how many
stream records to skip before the next acceptance, instead of flipping a
coin per record.  The paper cites them as directly composable with the
geometric file (the buffer only needs the accepted records), so we
implement both and expose a :class:`SkipReservoir` that plugs the skip
machinery into the same ``offer`` interface as
:class:`~repro.sampling.reservoir.ReservoirSample`.

References:
    J.S. Vitter.  Random sampling with a reservoir.  ACM TOMS 11(1),
    1985.  Algorithm X computes the exact skip distribution by direct
    search; Algorithm Z samples it by rejection from a continuous
    envelope, giving O(n (1 + log(i/n))) total expected time.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, TypeVar

import numpy as np

T = TypeVar("T")


def gaps_z(n: int, seen: int, k: int,
           rng: np.random.Generator) -> np.ndarray:
    """``k`` consecutive acceptance gaps in one vectorised draw.

    Returns an int64 array ``g`` where ``g[0]`` is the number of
    records skipped after stream position ``seen`` before the next
    acceptance, ``g[1]`` the skip after *that* acceptance, and so on --
    the same joint distribution as ``k`` sequential
    :func:`skip_count_x` / :class:`ZSkipper` draws (tested), because
    the acceptance events are exactly independent Bernoullis: record
    ``j`` of the stream is accepted with probability ``n/j``
    regardless of earlier outcomes.  The implementation draws whole
    blocks of those Bernoullis with numpy and reads the gaps off the
    hit indices, so the cost per gap is O(1) array work instead of a
    Python-level rejection loop per acceptance.

    Args:
        n: reservoir capacity (the reservoir must be full:
            ``seen >= n >= 1``).
        seen: stream position after which the first gap starts.
        k: number of gaps to produce.
        rng: numpy generator (vectorised draws need numpy's API; the
            scalar helpers keep ``random.Random`` for compatibility).
    """
    if n < 1 or seen < n:
        raise ValueError("requires a full reservoir: seen >= n >= 1")
    if k < 0:
        raise ValueError("cannot draw a negative number of gaps")
    out = np.empty(k, dtype=np.int64)
    filled = 0
    t = seen          # records consumed so far
    pending = 0       # skips accumulated since the last acceptance
    while filled < k:
        # E[gap] ~ (t - n)/n; size the block for the remaining gaps
        # with a little slack so one draw usually suffices.
        mean_run = (t + 1) / n
        block = int(mean_run * (k - filled) * 1.25) + 16
        positions = np.arange(t + 1, t + block + 1, dtype=np.float64)
        hits = np.flatnonzero(rng.random(block) * positions < n)
        if hits.shape[0] == 0:
            pending += block
            t += block
            continue
        take = min(k - filled, hits.shape[0])
        kept = hits[:take]
        gaps = np.diff(kept, prepend=-1) - 1
        gaps[0] += pending
        out[filled:filled + take] = gaps
        filled += take
        if take < hits.shape[0]:
            # Truncated at the k-th acceptance: every draw past it --
            # hit or miss alike, chosen without looking at the outcomes
            # -- is discarded, so redrawing those positions later is an
            # independent fresh start.
            pending = 0
            t += int(kept[-1]) + 1
        else:
            # The whole block is resolved: the trailing misses are
            # *decided* (redrawing them would give those positions a
            # second acceptance chance), so they carry into the next
            # gap as pending skips.
            pending = block - (int(kept[-1]) + 1)
            t += block
    return out


def skip_count_x(n: int, seen: int, rng: random.Random) -> int:
    """Algorithm X: exact skip after stream position ``seen``.

    Draws U and finds the smallest s >= 0 with
    ``P[gap > s] = prod_{j=1..s+1} (seen+j-n)/(seen+j) <= U``,
    the exact distribution of the gap between acceptances.
    """
    if n < 1 or seen < n:
        raise ValueError("requires a full reservoir: seen >= n >= 1")
    u = rng.random()
    skip = 0
    quot = (seen + 1 - n) / (seen + 1)
    while quot > u:
        skip += 1
        position = seen + skip + 1
        quot *= (position - n) / position
    return skip


class ZSkipper:
    """Vitter's Algorithm Z: rejection-sampled skip lengths.

    The variable ``W`` (distributed as ``U**(-1/n)``) is carried across
    calls exactly as in Vitter's pseudocode -- on the fast path the
    acceptance test's ``rhs/lhs`` ratio is reused as the next ``W``.

    Use :meth:`skip` once the reservoir is full; callers normally switch
    from Algorithm X to Z when ``seen > threshold * n`` (Vitter suggests
    a threshold around 22).
    """

    def __init__(self, n: int, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("reservoir size must be at least 1")
        self.n = n
        self._rng = rng
        self._w = math.exp(-math.log(rng.random()) / n)

    def skip(self, seen: int) -> int:
        """Records to skip after position ``seen`` (``seen >= n``)."""
        n = self.n
        t = seen
        if t < n:
            raise ValueError("requires a full reservoir: seen >= n")
        term = t - n + 1
        while True:
            u = self._rng.random()
            x = t * (self._w - 1.0)
            s = int(x)
            # Fast path: U <= h(S) / (c * g(X))?
            tmp = (t + 1) / term
            lhs = math.exp(
                math.log(((u * tmp * tmp) * (term + s)) / (t + x)) / n
            )
            rhs = (((t + x) / (term + s)) * term) / t
            if lhs <= rhs:
                self._w = rhs / lhs
                return s
            # Slow path: exact test U <= f(S) / (c * g(X)).
            y = (((u * (t + 1)) / term) * (t + s + 1)) / (t + x)
            if n < s:
                denom = t
                numer_lim = term + s
            else:
                denom = t - n + s
                numer_lim = t + 1
            for numer in range(t + s, numer_lim - 1, -1):
                y = (y * numer) / denom
                denom -= 1
            self._w = math.exp(-math.log(self._rng.random()) / n)
            if math.exp(math.log(y) / n) <= (t + x) / t:
                return s


class SkipReservoir:
    """Reservoir sampler that skips over rejected records in O(1).

    Identical output distribution to
    :class:`~repro.sampling.reservoir.ReservoirSample` but only does
    real work for accepted records.  ``offer`` still takes every record
    (so it drops into existing pipelines); :meth:`pending_skip` exposes
    how many upcoming records will be ignored so that callers able to
    seek (e.g. a file reader) can jump, acknowledging the jump with
    :meth:`skip_ahead`.

    Args:
        capacity: sample size.
        rng: randomness source.
        use_z: switch to Algorithm Z once
            ``seen > z_threshold * capacity``; otherwise always use
            Algorithm X.
        z_threshold: the T constant for the X-to-Z switch (Vitter
            recommends about 22).
    """

    def __init__(self, capacity: int, rng: random.Random | None = None,
                 *, use_z: bool = True, z_threshold: float = 22.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = rng or random.Random()
        self._use_z = use_z
        self._z_threshold = z_threshold
        self._z: ZSkipper | None = None
        self._items: list = []
        self._seen = 0
        self._skip_remaining = 0
        self._skip_armed = False

    @property
    def seen(self) -> int:
        return self._seen

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def contents(self) -> list:
        """A copy of the current sample."""
        return list(self._items)

    def pending_skip(self) -> int:
        """Records that will be ignored before the next acceptance."""
        if len(self._items) < self.capacity:
            return 0
        self._arm()
        return self._skip_remaining

    def _arm(self) -> None:
        if self._skip_armed:
            return
        if self._use_z and self._seen > self._z_threshold * self.capacity:
            if self._z is None:
                self._z = ZSkipper(self.capacity, self._rng)
            self._skip_remaining = self._z.skip(self._seen)
        else:
            self._skip_remaining = skip_count_x(self.capacity, self._seen,
                                                self._rng)
        self._skip_armed = True

    def offer(self, item: T) -> T | None:
        """Present one record; returns the evicted record on acceptance."""
        if len(self._items) < self.capacity:
            self._seen += 1
            self._items.append(item)
            return None
        self._arm()
        self._seen += 1
        if self._skip_remaining > 0:
            self._skip_remaining -= 1
            return None
        # This record is the accepted one; re-arm for the next gap.
        self._skip_armed = False
        victim = self._rng.randrange(self.capacity)
        evicted = self._items[victim]
        self._items[victim] = item
        return evicted

    def skip_ahead(self, produced: int) -> None:
        """Acknowledge that ``produced`` records flew by unseen.

        Only legal for ``produced <= pending_skip()``.
        """
        if produced < 0:
            raise ValueError("cannot skip a negative number of records")
        self._arm()
        if produced > self._skip_remaining:
            raise ValueError("skipping past the next accepted record")
        self._skip_remaining -= produced
        self._seen += produced
