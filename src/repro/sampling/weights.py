"""Weighting functions for biased sampling (paper Section 7.1).

The paper "assume[s] the existence of a user-defined weighting function
f which takes as an argument a record r, and returns a real number
greater than 0 that describes the record's utility".  These are the
stock functions the examples and benchmarks use; any callable
``Record -> float`` works.

The time-decay family implements the paper's flagship use case: "in
sensor data management, queries might refer to recent sensor readings
far more frequently than older ones", so recent records are weighted
up.  Note that for streaming use the weight must be computable at
*arrival time* and fixed thereafter -- the algorithms store effective
weights, not the function -- so recency bias is expressed as weights
that *grow* with the record's timestamp: a record that arrives later
gets a larger weight, which is equivalent to exponentially decaying the
importance of older records.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..storage.records import Record

WeightFunction = Callable[[Record], float]


def exp_jump_keys(weights, rng: np.random.Generator) -> np.ndarray:
    """Vectorised Efraimidis-Spirakis key draws, in log domain.

    A weighted-without-replacement sample of size ``N`` is exactly the
    ``N`` records with the largest keys ``u**(1/w)`` with
    ``u ~ Uniform(0, 1]`` (Efraimidis & Spirakis 2006).  This kernel
    draws one key per weight in a single numpy pass and returns
    ``log(u)/w`` -- the log of the key, a strictly monotone transform,
    so "largest key" comparisons are unchanged while tiny
    ``u**(1/w)`` values for heavy batches never underflow.

    Both :class:`~repro.sampling.laws.AExpJLaw` (the dense
    below-threshold path) and the in-memory reference implementation
    draw their keys through this one kernel, so the equivalence suite
    exercises a single key law, not two copies.

    Args:
        weights: positive per-record weights (any array-like).
        rng: a ``numpy.random.Generator``; consumes exactly
            ``len(weights)`` uniforms.

    Returns:
        ``float64`` array of log-keys in ``(-inf, 0]``.

    Raises:
        ValueError: if any weight is not strictly positive.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if w.size and not np.all(w > 0):
        raise ValueError("weights must be strictly positive")
    # 1 - U maps [0, 1) onto (0, 1]: log never sees an exact zero.
    u = 1.0 - rng.random(w.shape[0])
    return np.log(u) / w


def uniform_weight(record: Record) -> float:
    """f(r) = 1: biased machinery degenerates to uniform sampling."""
    return 1.0


def exponential_recency(half_life: float) -> WeightFunction:
    """Recency bias with a half-life, expressed in timestamp units.

    A record produced ``half_life`` later than another is twice as
    likely to be retained.  Implemented as ``f(r) = 2**(t / half_life)``;
    only weight *ratios* matter to the sampling distribution
    (Definition 1 normalises by the total weight).

    Raises:
        ValueError: if ``half_life`` is not positive.
    """
    if half_life <= 0:
        raise ValueError("half_life must be positive")

    def weight(record: Record) -> float:
        return math.pow(2.0, record.timestamp / half_life)

    return weight


def linear_recency(slope: float, floor: float = 1.0) -> WeightFunction:
    """Weight growing linearly with the timestamp: ``floor + slope*t``."""
    if slope < 0 or floor <= 0:
        raise ValueError("slope must be non-negative and floor positive")

    def weight(record: Record) -> float:
        return floor + slope * record.timestamp

    return weight


def value_proportional(epsilon: float = 1e-12) -> WeightFunction:
    """Weight proportional to |value| -- over-represent large outliers.

    This mirrors the variance-reduction heuristics the paper cites
    ([4][5][6][12][13]): the records that dominate a SUM's variance are
    exactly the large ones, so sampling them preferentially and
    reweighting at query time (Horvitz-Thompson, see
    :mod:`repro.estimate.estimators`) slashes the error.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    def weight(record: Record) -> float:
        return abs(record.value) + epsilon

    return weight


def clamped(fn: WeightFunction, low: float, high: float) -> WeightFunction:
    """Clamp another weight function into ``[low, high]``.

    Useful to tame "wildly fluctuating" f (paper Section 7.2), which
    otherwise forces frequent true-weight rescaling.
    """
    if not (0 < low <= high):
        raise ValueError("need 0 < low <= high")

    def weight(record: Record) -> float:
        return min(high, max(low, fn(record)))

    return weight
