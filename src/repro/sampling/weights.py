"""Weighting functions for biased sampling (paper Section 7.1).

The paper "assume[s] the existence of a user-defined weighting function
f which takes as an argument a record r, and returns a real number
greater than 0 that describes the record's utility".  These are the
stock functions the examples and benchmarks use; any callable
``Record -> float`` works.

The time-decay family implements the paper's flagship use case: "in
sensor data management, queries might refer to recent sensor readings
far more frequently than older ones", so recent records are weighted
up.  Note that for streaming use the weight must be computable at
*arrival time* and fixed thereafter -- the algorithms store effective
weights, not the function -- so recency bias is expressed as weights
that *grow* with the record's timestamp: a record that arrives later
gets a larger weight, which is equivalent to exponentially decaying the
importance of older records.
"""

from __future__ import annotations

import math
from typing import Callable

from ..storage.records import Record

WeightFunction = Callable[[Record], float]


def uniform_weight(record: Record) -> float:
    """f(r) = 1: biased machinery degenerates to uniform sampling."""
    return 1.0


def exponential_recency(half_life: float) -> WeightFunction:
    """Recency bias with a half-life, expressed in timestamp units.

    A record produced ``half_life`` later than another is twice as
    likely to be retained.  Implemented as ``f(r) = 2**(t / half_life)``;
    only weight *ratios* matter to the sampling distribution
    (Definition 1 normalises by the total weight).

    Raises:
        ValueError: if ``half_life`` is not positive.
    """
    if half_life <= 0:
        raise ValueError("half_life must be positive")

    def weight(record: Record) -> float:
        return math.pow(2.0, record.timestamp / half_life)

    return weight


def linear_recency(slope: float, floor: float = 1.0) -> WeightFunction:
    """Weight growing linearly with the timestamp: ``floor + slope*t``."""
    if slope < 0 or floor <= 0:
        raise ValueError("slope must be non-negative and floor positive")

    def weight(record: Record) -> float:
        return floor + slope * record.timestamp

    return weight


def value_proportional(epsilon: float = 1e-12) -> WeightFunction:
    """Weight proportional to |value| -- over-represent large outliers.

    This mirrors the variance-reduction heuristics the paper cites
    ([4][5][6][12][13]): the records that dominate a SUM's variance are
    exactly the large ones, so sampling them preferentially and
    reweighting at query time (Horvitz-Thompson, see
    :mod:`repro.estimate.estimators`) slashes the error.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")

    def weight(record: Record) -> float:
        return abs(record.value) + epsilon

    return weight


def clamped(fn: WeightFunction, low: float, high: float) -> WeightFunction:
    """Clamp another weight function into ``[low, high]``.

    Useful to tame "wildly fluctuating" f (paper Section 7.2), which
    otherwise forces frequent true-weight rescaling.
    """
    if not (0 < low <= high):
        raise ValueError("need 0 < low <= high")

    def weight(record: Record) -> float:
        return min(high, max(low, fn(record)))

    return weight
