"""Network serving layer for very large online samples.

The ROADMAP's north star is a sample under "heavy traffic from
millions of users"; this package is the surface those users talk to.
A :class:`ReservoirServer` owns one engine (typically a
:class:`~repro.service.ShardedReservoir`) and speaks a length-prefixed
JSON protocol (:mod:`repro.serve.protocol`); :class:`ServeClient` /
:class:`AsyncServeClient` mirror the unified
:class:`~repro.core.protocols.Reservoir` protocol over it; and
:class:`InlineTransport` runs a served session fully in process --
every byte still encoded and decoded -- so tier-1 tests prove the
served path bit-exact against direct engine calls without touching a
socket.

Quickstart::

    from repro.serve import ReservoirServer, ServeClient, ServerConfig

    server = ReservoirServer(engine, ServerConfig(rate_rps=500))
    client = ServeClient.in_process(server)     # or .connect(host, port)
    client.offer_batch(records)
    sample = client.sample(100)
    client.close()

See docs/SERVING.md for the wire format, the op table, error codes,
and the backpressure / drain semantics.
"""

from .client import AsyncServeClient, ServeClient, ServeError
from .protocol import (
    ERROR_CODES,
    MAX_FRAME,
    OPS,
    PROTOCOL_VERSION,
    ErrorInfo,
    FrameDecoder,
    FrameError,
    Request,
    Response,
)
from .ratelimit import TokenBucket
from .server import ReservoirServer, ServerConfig, Session
from .transport import InlineTransport, SocketTransport, TransportClosed

__all__ = [
    "AsyncServeClient",
    "ERROR_CODES",
    "ErrorInfo",
    "FrameDecoder",
    "FrameError",
    "InlineTransport",
    "MAX_FRAME",
    "OPS",
    "PROTOCOL_VERSION",
    "Request",
    "ReservoirServer",
    "Response",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "Session",
    "SocketTransport",
    "TokenBucket",
    "TransportClosed",
]
