"""Client SDK for the reservoir server, sync and async.

:class:`ServeClient` mirrors the unified
:class:`~repro.core.protocols.Reservoir` protocol method for method --
code written against the protocol runs unchanged whether pointed at a
local structure or a served one -- and adds the count-only ``ingest``
fast path plus the ``estimate_*`` AQP conveniences (which draw their
snapshot over the wire and run the estimator locally, since predicates
are Python callables that cannot cross a JSON protocol).

Backpressure is cooperative: on ``busy`` or ``rate_limited`` the
client sleeps exactly the server-supplied ``retry_after`` and retries,
up to ``max_retries`` attempts, so a producer naturally slows to the
service's admission rate.  Any other error raises
:class:`ServeError` carrying the wire code.

:class:`AsyncServeClient` is the same surface with ``async`` methods
over an ``asyncio`` stream connection, for callers already living in
an event loop (the load-generator bench drives many of these
concurrently).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable

from ..estimate import Estimate, SnapshotEstimator
from ..obs import ReservoirStats, stats_from_dict
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema
from .protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ErrorInfo,
    Request,
    Response,
    decode_records,
    encode_frame,
    encode_record,
    encode_records,
)
from .transport import InlineTransport, SocketTransport, TransportClosed

#: Fallback backoff when a retryable error carries no ``retry_after``.
DEFAULT_BACKOFF = 0.05


class ServeError(RuntimeError):
    """A request failed with a wire error the client does not retry.

    Attributes:
        code: the wire error code (see :mod:`repro.serve.protocol`).
        retry_after: the server's suggested backoff, when given.
    """

    def __init__(self, error: ErrorInfo) -> None:
        super().__init__(f"{error.code}: {error.message}")
        self.code = error.code
        self.retry_after = error.retry_after


def _encode_batch_arg(records) -> list[list]:
    """Wire-encode an ``offer_batch`` argument (batch or sequence);
    a ``RecordBatch`` decodes through its record iterator."""
    return encode_records(records)


class ServeClient:
    """Synchronous served reservoir conforming to the protocol.

    Args:
        transport: an :class:`~repro.serve.transport.InlineTransport`
            or :class:`~repro.serve.transport.SocketTransport`.
        max_retries: attempts per call on retryable errors (``busy``,
            ``rate_limited``) before giving up with :class:`ServeError`.
        sleep: injectable sleep for deterministic tests.
    """

    name = "served reservoir"

    def __init__(self, transport, *, max_retries: int = 8,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self._transport = transport
        self.max_retries = max_retries
        self._sleep = sleep
        self._next_id = 0
        self._hello: dict | None = None
        self.retries = 0
        self._closed = False
        self._hot = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def connect(cls, host: str, port: int, *, timeout: float = 30.0,
                max_frame: int = MAX_FRAME, **kwargs) -> "ServeClient":
        """Open a TCP session to a running server."""
        return cls(SocketTransport(host, port, timeout=timeout,
                                   max_frame=max_frame), **kwargs)

    @classmethod
    def in_process(cls, server, **kwargs) -> "ServeClient":
        """A served session against an in-process server (the twin)."""
        return cls(InlineTransport(server), **kwargs)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------

    def _call(self, op: str, args: dict | None = None) -> dict:
        self._next_id += 1
        request = Request(op=op, id=self._next_id, args=args or {},
                          v=PROTOCOL_VERSION)
        attempts = 0
        while True:
            response = self._transport.request(request)
            if response.ok:
                return response.result or {}
            error = response.error
            assert error is not None
            if error.code in RETRYABLE_CODES and attempts < self.max_retries:
                attempts += 1
                self.retries += 1
                self._sleep(error.retry_after
                            if error.retry_after else DEFAULT_BACKOFF)
                continue
            raise ServeError(error)

    def hello(self) -> dict:
        """Session/engine metadata (cached after the first call)."""
        if self._hello is None:
            self._hello = self._call("hello")
        return self._hello

    # -- Reservoir protocol --------------------------------------------------

    def offer(self, record: Record) -> None:
        """Present one stream record to the served reservoir."""
        self._call("offer", {"record": encode_record(record)})
        if self._hot is not None:
            self._hot.observe(record)

    def offer_batch(self, records) -> int:
        """Present a batch (``RecordBatch`` or sequence); returns the
        number admitted."""
        result = self._call("offer_batch",
                            {"records": _encode_batch_arg(records)})
        if self._hot is not None:
            if isinstance(records, RecordBatch):
                self._hot.observe_batch(records)
            else:
                self._hot.observe_many(
                    records if isinstance(records, (list, tuple))
                    else list(records))
        return int(result["admitted"])

    def ingest(self, n: int) -> None:
        """Count-only ingestion (cheap load generation)."""
        self._call("ingest", {"n": int(n)})
        if self._hot is not None:
            self._hot.observe_count(int(n))

    def sample(self, k: int | None = None) -> list[Record]:
        """A uniform random sample of the served union stream."""
        return decode_records(self._call("sample", {"k": k})["records"])

    def sample_batch(self, k: int | None = None) -> RecordBatch:
        """:meth:`sample` as one columnar :class:`RecordBatch`."""
        result = self._call("sample_batch", {"k": k})
        schema = RecordSchema(int(result["record_size"]))
        return RecordBatch.from_records(schema,
                                        decode_records(result["records"]))

    def snapshot(self, k: int | None = None) -> tuple[list[Record], int]:
        """(:meth:`sample` result, union stream position) in one call."""
        result = self._call("snapshot", {"k": k})
        return decode_records(result["records"]), int(result["seen"])

    def stats(self) -> ReservoirStats:
        """The engine's aggregated :class:`ReservoirStats`."""
        return stats_from_dict(self._call("stats")["stats"])

    def checkpoint(self) -> None:
        """Force the engine to checkpoint durably before returning."""
        self._call("checkpoint")

    def close(self) -> None:
        """End the session and release the transport (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._call("close")
        except (TransportClosed, ServeError):
            pass  # the goodbye is a courtesy, not a contract
        self._transport.close()

    # -- AQP conveniences ----------------------------------------------------
    # Thin shims over the shared :class:`repro.estimate.SnapshotEstimator`
    # (one wire snapshot, estimator math run locally — predicates are
    # callables and stay client-side); signatures are preserved exactly.

    def estimate_sum(self, k: int | None = None, *,
                     value: Callable[[Record], float] | None = None,
                     predicate: Callable[[Record], bool] | None = None,
                     ) -> Estimate:
        """Estimate SUM(value) over the entire served stream."""
        return SnapshotEstimator(*self.snapshot(k)).sum(
            value=value, predicate=predicate)

    def estimate_count(self, k: int | None = None,
                       predicate: Callable[[Record], bool] = lambda r: True,
                       ) -> Estimate:
        """Estimate COUNT of stream records satisfying ``predicate``."""
        return SnapshotEstimator(*self.snapshot(k)).count(predicate)

    def estimate_avg(self, k: int | None = None, *,
                     value: Callable[[Record], float] | None = None,
                     predicate: Callable[[Record], bool] | None = None,
                     ) -> Estimate:
        """Estimate AVG(value) over stream records matching ``predicate``."""
        records, _ = self.snapshot(k)
        return SnapshotEstimator(records).avg(value=value, predicate=predicate)

    # -- Tiered AQP cache ----------------------------------------------------

    def enable_aqp_cache(self, budget: int = 4096, *, seed: int = 0):
        """Attach a client-side :class:`repro.estimate.HotSubsample`.

        A :class:`repro.estimate.QueryPlanner` over this client answers
        bounded queries from the local cache without any wire round-trip
        (and hence without the server-side ``flush_barrier``); only
        escalations touch the transport.  Records already offered before
        enabling (per :meth:`stats`) leave the cache incoherent until the
        first escalation refreshes it from a uniform server draw.

        ``AsyncServeClient`` deliberately has no cache: its concurrency
        model would interleave ``observe`` calls across in-flight offers,
        breaking the sequential admission law the cache relies on.
        """
        if self._hot is None:
            from ..estimate.planner import HotSubsample
            record_size = int(self.hello().get("record_size") or 0)
            schema = RecordSchema(record_size if record_size > 0 else 100)
            self._hot = HotSubsample(schema, budget, seed=seed,
                                     stream_seen=self.stats().seen)
        return self._hot

    @property
    def aqp_cache(self):
        """The attached :class:`HotSubsample`, or ``None``."""
        return self._hot


class AsyncServeClient:
    """Asynchronous served reservoir (same surface, ``async`` methods).

    Built over one ``asyncio`` stream connection; a session serialises
    its own requests (one in flight at a time), and concurrency comes
    from running many sessions, which is how the load bench and the
    concurrency tests use it.

    Args:
        reader/writer: an open ``asyncio`` stream pair.
        max_retries: as for :class:`ServeClient`.
    """

    name = "served reservoir (async)"

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 max_retries: int = 8,
                 max_frame: int = MAX_FRAME) -> None:
        self._reader = reader
        self._writer = writer
        self.max_retries = max_retries
        self._max_frame = max_frame
        self._next_id = 0
        self._hello: dict | None = None
        self.retries = 0
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int,
                      **kwargs) -> "AsyncServeClient":
        """Open a TCP session to a running server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, **kwargs)

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------------

    async def _roundtrip(self, request: Request) -> Response:
        self._writer.write(
            encode_frame(request.to_wire(), max_frame=self._max_frame))
        await self._writer.drain()
        prefix = await self._reader.readexactly(4)
        length = int.from_bytes(prefix, "big")
        if length > self._max_frame:
            raise TransportClosed(f"oversized response frame ({length} B)")
        body = await self._reader.readexactly(length)
        return Response.from_wire(json.loads(body.decode("utf-8")))

    async def _call(self, op: str, args: dict | None = None) -> dict:
        if self._closed:
            raise TransportClosed("client is closed")
        self._next_id += 1
        request = Request(op=op, id=self._next_id, args=args or {},
                          v=PROTOCOL_VERSION)
        attempts = 0
        while True:
            try:
                response = await self._roundtrip(request)
            except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
                raise TransportClosed(f"server went away: {exc!r}") from exc
            if response.ok:
                return response.result or {}
            error = response.error
            assert error is not None
            if error.code in RETRYABLE_CODES and attempts < self.max_retries:
                attempts += 1
                self.retries += 1
                await asyncio.sleep(error.retry_after
                                    if error.retry_after else DEFAULT_BACKOFF)
                continue
            raise ServeError(error)

    async def hello(self) -> dict:
        """Session/engine metadata (cached after the first call)."""
        if self._hello is None:
            self._hello = await self._call("hello")
        return self._hello

    # -- Reservoir protocol (async) ------------------------------------------

    async def offer(self, record: Record) -> None:
        """Present one stream record to the served reservoir."""
        await self._call("offer", {"record": encode_record(record)})

    async def offer_batch(self, records) -> int:
        """Present a batch; returns the number admitted."""
        result = await self._call("offer_batch",
                                  {"records": _encode_batch_arg(records)})
        return int(result["admitted"])

    async def ingest(self, n: int) -> None:
        """Count-only ingestion (cheap load generation)."""
        await self._call("ingest", {"n": int(n)})

    async def sample(self, k: int | None = None) -> list[Record]:
        """A uniform random sample of the served union stream."""
        result = await self._call("sample", {"k": k})
        return decode_records(result["records"])

    async def sample_batch(self, k: int | None = None) -> RecordBatch:
        """:meth:`sample` as one columnar :class:`RecordBatch`."""
        result = await self._call("sample_batch", {"k": k})
        schema = RecordSchema(int(result["record_size"]))
        return RecordBatch.from_records(schema,
                                        decode_records(result["records"]))

    async def snapshot(self, k: int | None = None
                       ) -> tuple[list[Record], int]:
        """(:meth:`sample` result, union stream position) in one call."""
        result = await self._call("snapshot", {"k": k})
        return decode_records(result["records"]), int(result["seen"])

    async def stats(self) -> ReservoirStats:
        """The engine's aggregated :class:`ReservoirStats`."""
        return stats_from_dict((await self._call("stats"))["stats"])

    async def checkpoint(self) -> None:
        """Force the engine to checkpoint durably before returning."""
        await self._call("checkpoint")

    async def close(self) -> None:
        """End the session and close the connection (idempotent)."""
        if self._closed:
            return
        try:
            await self._call("close")
        except (TransportClosed, ServeError):
            pass
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
