"""Wire protocol for the reservoir serving layer.

One frame = one request or one response.  Framing is a 4-byte
big-endian length prefix followed by that many bytes of UTF-8 JSON --
trivially parseable from any language, debuggable with ``xxd``, and
self-delimiting on a stream socket.  The JSON body is versioned
(``"v"``) and correlated (``"id"``), so a transport may pipeline
requests and still match responses.

Why JSON for a sampling system whose tests demand bit-exactness:
Python's ``json`` emits the shortest ``repr`` that round-trips every
float exactly, and record payload bytes travel base64-encoded, so a
record decoded from a frame compares equal -- field for field -- to
the record that was encoded.  That is what makes the
:class:`~repro.serve.transport.InlineTransport` twin test meaningful:
a served session returns byte-identical samples to direct engine
calls, through a *real* encode/decode round trip.

The op set mirrors the unified :class:`~repro.core.protocols.Reservoir`
protocol one-to-one (plus ``hello`` for session setup and ``ingest``
for count-only load generation); see docs/SERVING.md for the normative
op table, error codes, and backpressure semantics.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..storage.records import Record

#: Protocol version spoken by this module; bumped on wire changes.
PROTOCOL_VERSION = 1

#: Frames larger than this are rejected before allocation (a corrupt
#: or hostile length prefix must not trigger a multi-GiB read).
MAX_FRAME = 16 * 1024 * 1024

#: The 4-byte big-endian length prefix.
_PREFIX = struct.Struct(">I")

#: Ops a server understands; anything else earns ``unknown_op``.
OPS = (
    "hello",
    "offer",
    "offer_batch",
    "ingest",
    "sample",
    "sample_batch",
    "snapshot",
    "stats",
    "checkpoint",
    "close",
)

# -- error codes -------------------------------------------------------------

#: Admission control rejected an ingest op (queue too deep); the
#: response carries ``retry_after`` seconds derived from the overshoot.
ERR_BUSY = "busy"
#: The session's token bucket is empty; ``retry_after`` says when a
#: token will exist.
ERR_RATE_LIMITED = "rate_limited"
#: Malformed frame, JSON, or arguments.
ERR_BAD_REQUEST = "bad_request"
#: The request's ``"v"`` is not a version this server speaks.
ERR_UNSUPPORTED_VERSION = "unsupported_version"
#: The request's ``"op"`` is not in :data:`OPS`.
ERR_UNKNOWN_OP = "unknown_op"
#: The server is draining; no new work is accepted.
ERR_SHUTTING_DOWN = "shutting_down"
#: The engine raised; the message carries the repr.
ERR_INTERNAL = "internal"

ERROR_CODES = (
    ERR_BUSY,
    ERR_RATE_LIMITED,
    ERR_BAD_REQUEST,
    ERR_UNSUPPORTED_VERSION,
    ERR_UNKNOWN_OP,
    ERR_SHUTTING_DOWN,
    ERR_INTERNAL,
)

#: Error codes a client may transparently retry after ``retry_after``.
RETRYABLE_CODES = (ERR_BUSY, ERR_RATE_LIMITED)


class FrameError(ValueError):
    """A frame violated the length-prefix contract (too large, short)."""


@dataclass(frozen=True)
class Request:
    """One decoded request frame.

    Attributes:
        op: operation name (one of :data:`OPS` for valid requests).
        id: client-chosen correlation id, echoed in the response.
        args: op-specific arguments mapping.
        v: protocol version the client speaks.
    """

    op: str
    id: int = 0
    args: dict = field(default_factory=dict)
    v: int = PROTOCOL_VERSION

    def to_wire(self) -> dict:
        """JSON-ready representation."""
        return {"v": self.v, "id": self.id, "op": self.op,
                "args": self.args}

    @classmethod
    def from_wire(cls, body: dict) -> "Request":
        """Rebuild from a decoded JSON body (types coerced, not trusted)."""
        args = body.get("args") or {}
        if not isinstance(args, dict):
            raise ValueError("request args must be an object")
        return cls(op=str(body.get("op", "")), id=int(body.get("id", 0)),
                   args=args, v=int(body.get("v", 0)))


@dataclass(frozen=True)
class ErrorInfo:
    """The error half of a failed response.

    Attributes:
        code: one of :data:`ERROR_CODES`.
        message: human-readable detail.
        retry_after: seconds the client should wait before retrying,
            for the retryable codes; ``None`` otherwise.
    """

    code: str
    message: str = ""
    retry_after: float | None = None

    def to_wire(self) -> dict:
        """JSON-ready representation."""
        wire: dict = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            wire["retry_after"] = self.retry_after
        return wire

    @classmethod
    def from_wire(cls, body: dict) -> "ErrorInfo":
        """Rebuild from a decoded JSON error object."""
        retry = body.get("retry_after")
        return cls(code=str(body.get("code", ERR_INTERNAL)),
                   message=str(body.get("message", "")),
                   retry_after=None if retry is None else float(retry))


@dataclass(frozen=True)
class Response:
    """One decoded response frame (``ok`` result xor ``error``).

    Attributes:
        id: correlation id echoed from the request.
        ok: True for a successful call.
        result: op-specific result mapping when ``ok``.
        error: :class:`ErrorInfo` when not ``ok``.
        v: protocol version the server speaks.
    """

    id: int
    ok: bool
    result: dict | None = None
    error: ErrorInfo | None = None
    v: int = PROTOCOL_VERSION

    def to_wire(self) -> dict:
        """JSON-ready representation."""
        wire: dict = {"v": self.v, "id": self.id, "ok": self.ok}
        if self.ok:
            wire["result"] = self.result if self.result is not None else {}
        else:
            assert self.error is not None
            wire["error"] = self.error.to_wire()
        return wire

    @classmethod
    def from_wire(cls, body: dict) -> "Response":
        """Rebuild from a decoded JSON body."""
        ok = bool(body.get("ok"))
        error = None if ok else ErrorInfo.from_wire(body.get("error") or {})
        return cls(id=int(body.get("id", 0)), ok=ok,
                   result=body.get("result") if ok else None,
                   error=error, v=int(body.get("v", 0)))


def success(request_id: int, result: dict | None = None) -> Response:
    """A successful :class:`Response` for ``request_id``."""
    return Response(id=request_id, ok=True,
                    result=result if result is not None else {})


def failure(request_id: int, code: str, message: str = "",
            retry_after: float | None = None) -> Response:
    """A failed :class:`Response` carrying ``code``."""
    return Response(id=request_id, ok=False,
                    error=ErrorInfo(code=code, message=message,
                                    retry_after=retry_after))


# -- framing -----------------------------------------------------------------

def encode_frame(body: dict, *, max_frame: int = MAX_FRAME) -> bytes:
    """Serialise one JSON body into a length-prefixed frame."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the {max_frame}-byte "
            "limit")
    return _PREFIX.pack(len(payload)) + payload


def decode_frame(frame: bytes, *, max_frame: int = MAX_FRAME) -> dict:
    """Decode one complete frame (prefix included) back into its body."""
    if len(frame) < _PREFIX.size:
        raise FrameError("frame shorter than its length prefix")
    (length,) = _PREFIX.unpack_from(frame)
    if length > max_frame:
        raise FrameError(
            f"declared frame length {length} exceeds the {max_frame}-byte "
            "limit")
    if len(frame) != _PREFIX.size + length:
        raise FrameError(
            f"frame length {len(frame) - _PREFIX.size} != declared {length}")
    return json.loads(frame[_PREFIX.size:].decode("utf-8"))


class FrameDecoder:
    """Incremental frame splitter for stream transports.

    Feed it arbitrary byte chunks as they arrive; it yields complete
    decoded JSON bodies and buffers the remainder.  Both the blocking
    socket transport and tests use it; asyncio reads use
    ``readexactly`` directly.
    """

    def __init__(self, *, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[dict]:
        """Absorb ``data``; yield every frame body completed by it."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _PREFIX.size:
                return
            (length,) = _PREFIX.unpack_from(bytes(self._buffer[:_PREFIX.size]))
            if length > self.max_frame:
                raise FrameError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte limit")
            end = _PREFIX.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_PREFIX.size:end])
            del self._buffer[:end]
            yield json.loads(payload.decode("utf-8"))

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting a complete frame."""
        return len(self._buffer)


# -- record codec ------------------------------------------------------------

def encode_record(record: Record) -> list:
    """One record as the 4-element wire list (payload base64)."""
    return [record.key, record.value, record.timestamp,
            base64.b64encode(record.payload).decode("ascii")]


def decode_record(fields: Any) -> Record:
    """Rebuild a :class:`Record` from its wire list."""
    if not isinstance(fields, (list, tuple)) or len(fields) != 4:
        raise ValueError(f"malformed wire record: {fields!r}")
    key, value, timestamp, payload = fields
    return Record(key=int(key), value=float(value),
                  timestamp=float(timestamp),
                  payload=base64.b64decode(payload))


def encode_records(records) -> list[list]:
    """A sequence of records as wire lists."""
    return [encode_record(record) for record in records]


def decode_records(items: Any) -> list[Record]:
    """Rebuild a list of records from wire lists."""
    if not isinstance(items, list):
        raise ValueError("wire records must be a list")
    return [decode_record(item) for item in items]
