"""Per-client token-bucket rate limiting.

Each connected session owns one :class:`TokenBucket`: ``rate`` tokens
refill per second up to a ``burst`` ceiling, and every request spends
one token.  An empty bucket does not queue the request -- the server
answers ``rate_limited`` with a ``retry_after`` telling the client
exactly when a token will exist, which keeps the event loop free of
per-client timers and pushes the waiting to the edge (the client SDK
honours ``retry_after`` transparently).

The clock is injectable so tests drive the bucket deterministically;
production uses ``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable


class TokenBucket:
    """A standard token bucket with continuous refill.

    Args:
        rate: tokens added per second; ``0`` disables limiting (every
            acquire succeeds).
        burst: bucket capacity -- the largest instantaneous spike
            allowed.  Defaults to ``rate`` (one second of credit).
        clock: monotonic time source, injectable for tests.
    """

    def __init__(self, rate: float, burst: float | None = None,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = rate
        self.burst = float(burst if burst is not None else rate)
        if rate > 0 and self.burst <= 0:
            raise ValueError("burst must be positive when limiting")
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        self._updated = now
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available.

        Returns ``0.0`` on success, else the seconds until the bucket
        will hold enough tokens (the response's ``retry_after``);
        nothing is spent on failure.
        """
        if self.rate <= 0:
            return 0.0
        if tokens <= 0:
            raise ValueError("must acquire a positive number of tokens")
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Tokens currently available (refilled to now)."""
        self._refill()
        return self._tokens
