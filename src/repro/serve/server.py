"""The reservoir server: one engine, many sessions, one dispatch path.

:class:`ReservoirServer` owns a single engine (anything implementing
the unified :class:`~repro.core.protocols.Reservoir` protocol --
production deployments use a
:class:`~repro.service.ShardedReservoir`) and answers wire requests
against it.  All request handling funnels through :meth:`dispatch`,
one synchronous, transport-agnostic function: the asyncio TCP
front-end, the blocking :class:`~repro.serve.transport.InlineTransport`
twin, and the tests all exercise literally the same code path, which
is what makes the twin-run bit-exactness guarantee a statement about
the server rather than about a test double.

Concurrency model: the engine is not thread-safe, so the asyncio
front-end funnels every dispatch through a single-worker executor
thread.  The event loop itself never blocks -- frame I/O, admission
control, and rate limiting all happen on the loop -- and queries are
consistent snapshot cuts at the engine's flush frontier (PR 3's
query-RNG segregation means reads never perturb ingest state, PR 5's
``flush_barrier`` means they never wait for queued background I/O
beyond the barrier), so a slow reader cannot stall a writer's
admission decisions: the writer's requests are either answered or
pushed back explicitly.

Pushback is never implicit queueing.  Ingest ops are admitted only
while the engine's journal depth (unacknowledged batches across
shards) is at or below ``admission_depth``; beyond it the server
answers ``busy`` with a ``retry_after`` proportional to the overshoot
-- the 429 idiom -- so backpressure reaches the producer as data, not
as an unbounded socket buffer.  Per-session token buckets bound any
single client's request rate the same way (``rate_limited`` +
``retry_after``).

Shutdown is a drain: stop accepting connections, answer in-flight
requests, reject new work with ``shutting_down``, then checkpoint the
engine so no acknowledged record is lost.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from .protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_INTERNAL,
    ERR_RATE_LIMITED,
    ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_OP,
    ERR_UNSUPPORTED_VERSION,
    MAX_FRAME,
    OPS,
    PROTOCOL_VERSION,
    FrameError,
    Request,
    Response,
    decode_frame,
    decode_record,
    decode_records,
    encode_frame,
    encode_records,
    failure,
    success,
)
from .ratelimit import TokenBucket

#: Ops that add records (and therefore face admission control).
INGEST_OPS = ("offer", "offer_batch", "ingest")

#: Ops still answered while the server is draining.
DRAIN_OPS = ("hello", "close")


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs; every default is safe for tests.

    Attributes:
        host: bind address for the TCP front-end.
        port: bind port; ``0`` picks a free one (see
            :attr:`ReservoirServer.address` after start).
        rate_rps: per-session token-bucket refill rate in requests per
            second; ``0`` disables rate limiting.
        rate_burst: per-session bucket capacity; ``None`` means one
            second of credit (``rate_rps``).
        admission_depth: largest engine journal depth (unacknowledged
            journaled messages across shards) at which ingest ops are
            still admitted; deeper queues earn ``busy``.
        busy_retry_per_message: seconds of ``retry_after`` charged per
            journal message beyond ``admission_depth`` -- the knob
            translating queue overshoot into client backoff.
        max_frame: largest frame accepted or produced, in bytes.
    """

    host: str = "127.0.0.1"
    port: int = 0
    rate_rps: float = 0.0
    rate_burst: float | None = None
    admission_depth: int = 1024
    busy_retry_per_message: float = 0.002
    max_frame: int = MAX_FRAME


class Session:
    """Per-client connection state: identity, bucket, counters."""

    def __init__(self, session_id: int, bucket: TokenBucket) -> None:
        self.id = session_id
        self.bucket = bucket
        self.requests = 0
        self.rejected = 0
        self.closed = False


class ReservoirServer:
    """Serve one reservoir engine to many sessions.

    Args:
        engine: the owned reservoir (typically a
            :class:`~repro.service.ShardedReservoir`); the server calls
            only unified-protocol methods plus the optional
            ``journal_depth`` gauge.
        config: serving knobs; defaults are test-safe.
        clock: wall-clock source for request latency accounting,
            injectable for tests.
    """

    name = "reservoir server"

    def __init__(self, engine, config: ServerConfig | None = None,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self._clock = clock
        self.draining = False
        self._next_session = 0
        self.sessions_opened = 0
        self.sessions_active = 0
        self.requests_served = 0
        self.busy_rejections = 0
        self.rate_limit_rejections = 0
        # Observability hooks (server-level), instrument() attaches.
        self._registry = None
        self._trace = None
        self._obs_name = self.name
        self._event_counters: dict = {}
        # asyncio front-end state, populated by start().
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._conn_tasks: set = set()

    # -- sessions ------------------------------------------------------------

    def open_session(self) -> Session:
        """Create one session with its own token bucket."""
        self._next_session += 1
        self.sessions_opened += 1
        self.sessions_active += 1
        bucket = TokenBucket(self.config.rate_rps, self.config.rate_burst,
                             clock=self._clock)
        return Session(self._next_session, bucket)

    def close_session(self, session: Session) -> None:
        """Retire a session (idempotent)."""
        if not session.closed:
            session.closed = True
            self.sessions_active -= 1

    # -- dispatch (the one true request path) --------------------------------

    def dispatch(self, request: Request, session: Session) -> Response:
        """Answer one request synchronously.

        Every transport funnels here.  Order of checks: version, op
        existence, drain state, rate limit, admission control, then
        the engine call.  Engine ``ValueError``/``TypeError`` map to
        ``bad_request`` (the caller sent arguments the engine
        rejects); anything else is ``internal``.
        """
        started = self._clock()
        session.requests += 1
        response = self._dispatch_inner(request, session)
        latency = self._clock() - started
        self.requests_served += 1
        status = "ok" if response.ok else response.error.code
        self._emit("serve_request", op=request.op, status=status,
                   session=session.id, latency=latency)
        self._set_gauges()
        return response

    def _dispatch_inner(self, request: Request, session: Session) -> Response:
        if request.v != PROTOCOL_VERSION:
            return failure(request.id, ERR_UNSUPPORTED_VERSION,
                           f"server speaks protocol {PROTOCOL_VERSION}, "
                           f"request carried {request.v}")
        if request.op not in OPS:
            return failure(request.id, ERR_UNKNOWN_OP,
                           f"unknown op {request.op!r}")
        if self.draining and request.op not in DRAIN_OPS:
            return failure(request.id, ERR_SHUTTING_DOWN,
                           "server is draining")
        wait = session.bucket.try_acquire()
        if wait > 0:
            session.rejected += 1
            self.rate_limit_rejections += 1
            self._emit("rate_limited", op=request.op, session=session.id,
                       retry_after=wait)
            return failure(request.id, ERR_RATE_LIMITED,
                           "session token bucket empty", retry_after=wait)
        if request.op in INGEST_OPS:
            depth = int(getattr(self.engine, "journal_depth", 0))
            overshoot = depth - self.config.admission_depth
            if overshoot > 0:
                session.rejected += 1
                self.busy_rejections += 1
                retry = overshoot * self.config.busy_retry_per_message
                self._emit("rate_limited", op=request.op,
                           session=session.id, retry_after=retry,
                           journal_depth=depth)
                return failure(request.id, ERR_BUSY,
                               f"journal depth {depth} exceeds admission "
                               f"threshold {self.config.admission_depth}",
                               retry_after=retry)
        try:
            return success(request.id, self._execute(request, session))
        except (ValueError, TypeError, KeyError) as exc:
            return failure(request.id, ERR_BAD_REQUEST, repr(exc))
        except Exception as exc:  # noqa: BLE001 - the wire must answer
            return failure(request.id, ERR_INTERNAL, repr(exc))

    def _execute(self, request: Request, session: Session) -> dict:
        """Run one validated op against the engine."""
        op, args = request.op, request.args
        engine = self.engine
        if op == "hello":
            config = getattr(engine, "config", None)
            return {
                "protocol": PROTOCOL_VERSION,
                "server": self._obs_name,
                "engine": getattr(engine, "name", type(engine).__name__),
                "capacity": int(getattr(engine, "capacity", 0)),
                "shards": int(getattr(engine, "shards", 1)),
                "record_size": int(getattr(config, "record_size", 0)),
                "session": session.id,
            }
        if op == "offer":
            engine.offer(decode_record(args["record"]))
            return {}
        if op == "offer_batch":
            admitted = engine.offer_batch(decode_records(args["records"]))
            return {"admitted": int(admitted)}
        if op == "ingest":
            n = int(args["n"])
            engine.ingest(n)
            return {"ingested": n}
        if op == "sample":
            records = engine.sample(self._arg_k(args))
            return {"records": encode_records(records)}
        if op == "sample_batch":
            batch = engine.sample_batch(self._arg_k(args))
            return {"records": encode_records(batch),
                    "record_size": batch.schema.record_size}
        if op == "snapshot":
            records, seen = engine.snapshot(self._arg_k(args))
            return {"records": encode_records(records), "seen": int(seen)}
        if op == "stats":
            return {"stats": engine.stats().as_dict()}
        if op == "checkpoint":
            engine.checkpoint()
            return {}
        if op == "close":
            self.close_session(session)
            return {"goodbye": True}
        raise AssertionError(f"unhandled op {op!r}")  # pragma: no cover

    @staticmethod
    def _arg_k(args: dict) -> int | None:
        k = args.get("k")
        return None if k is None else int(k)

    # -- frame-level entry (inline transport + tests) ------------------------

    def handle_frame(self, frame: bytes, session: Session) -> bytes:
        """Decode one request frame, dispatch it, encode the response.

        Malformed frames and bodies earn ``bad_request`` responses
        rather than exceptions -- a wire server answers, it does not
        crash.
        """
        try:
            body = decode_frame(frame, max_frame=self.config.max_frame)
            request = Request.from_wire(body)
        except (FrameError, ValueError, UnicodeDecodeError) as exc:
            response = failure(0, ERR_BAD_REQUEST, repr(exc))
            return encode_frame(response.to_wire(),
                                max_frame=self.config.max_frame)
        response = self.dispatch(request, session)
        return encode_frame(response.to_wire(),
                            max_frame=self.config.max_frame)

    # -- graceful drain ------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting work and checkpoint the engine (idempotent).

        After this returns, every record the server acknowledged has
        reached the engine's durable store; subsequent non-``hello``/
        ``close`` requests earn ``shutting_down``.  The engine itself
        stays open -- its owner decides when to ``close()`` it.
        """
        if not self.draining:
            self.draining = True
        self.engine.checkpoint()

    # -- asyncio front-end ---------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP listener and start accepting sessions."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="reservoir-serve")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` once started."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session = self.open_session()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    frame = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # client went away mid-stream: just clean up
                if frame is None:
                    break
                response_frame = await loop.run_in_executor(
                    self._executor, self.handle_frame, frame, session)
                writer.write(response_frame)
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
                if session.closed:
                    break
        finally:
            self.close_session(session)
            self._set_gauges()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> bytes | None:
        """One complete frame from the stream, or ``None`` on EOF."""
        try:
            prefix = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between frames
            raise
        length = int.from_bytes(prefix, "big")
        if length > self.config.max_frame:
            raise asyncio.IncompleteReadError(prefix, length)
        body = await reader.readexactly(length)
        return prefix + body

    async def shutdown(self) -> None:
        """Graceful drain of the TCP front-end, then the engine.

        Stops the listener, flips :attr:`draining` (new requests on
        live connections get ``shutting_down``), lets in-flight
        dispatches finish, checkpoints the engine, and releases the
        executor.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        if self._executor is not None:
            # Checkpoint on the engine thread so it never races an
            # in-flight dispatch.
            await loop.run_in_executor(self._executor, self.drain)
            self._executor.shutdown(wait=True)
            self._executor = None
        else:
            self.drain()

    # -- observability -------------------------------------------------------

    def instrument(self, registry, trace=None, *, name: str | None = None
                   ) -> None:
        """Attach server-level observers.

        Every dispatched request bumps ``events.serve_request`` and
        lands in the trace with its op, status, and latency; throttles
        (token bucket or admission control) additionally emit
        ``events.rate_limited``.  Gauges mirror live queue state:
        ``serve.sessions``, ``serve.journal_depth``.
        """
        self._obs_name = name if name is not None else self.name
        self._registry = registry
        self._trace = trace
        self._event_counters = {}

    def _emit(self, kind: str, **fields) -> None:
        if self._registry is not None:
            counter = self._event_counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    f"events.{kind}", structure=self._obs_name)
                self._event_counters[kind] = counter
            counter.inc()
        if self._trace is not None:
            self._trace.emit(kind, self._obs_name, 0.0, **fields)

    def _set_gauges(self) -> None:
        if self._registry is None:
            return
        labels = {"structure": self._obs_name}
        self._registry.gauge("serve.sessions", **labels).set(
            self.sessions_active)
        self._registry.gauge("serve.journal_depth", **labels).set(
            int(getattr(self.engine, "journal_depth", 0)))
