"""Client transports: in-process twin and blocking TCP.

Two ways to reach a :class:`~repro.serve.server.ReservoirServer`:

* :class:`InlineTransport` -- no sockets, no event loop.  Every
  request is *fully encoded* into a wire frame, handed to the server's
  ``handle_frame`` (the same entry the TCP path uses, executor
  aside), and the response frame is fully decoded.  A session run
  through it is therefore bit-exact with direct engine calls while
  still exercising every byte of the protocol -- the twin-run
  discipline tier-1 tests rely on (no asyncio in the default test
  lane).
* :class:`SocketTransport` -- a plain blocking TCP socket for the
  synchronous :class:`~repro.serve.client.ServeClient`.

Both expose the same two methods (``request``, ``close``), which is
all the client SDK needs.
"""

from __future__ import annotations

import socket

from .protocol import (
    MAX_FRAME,
    FrameDecoder,
    Request,
    Response,
    encode_frame,
)


class TransportClosed(ConnectionError):
    """The transport (or its server) is no longer usable."""


class InlineTransport:
    """In-process transport: full wire round trip, zero I/O.

    Args:
        server: a :class:`~repro.serve.server.ReservoirServer`; the
            transport opens one session on it and funnels every
            request through ``handle_frame``.
    """

    def __init__(self, server) -> None:
        self._server = server
        self._session = server.open_session()
        self._closed = False

    def request(self, request: Request) -> Response:
        """Encode, dispatch, decode one request."""
        if self._closed:
            raise TransportClosed("inline transport is closed")
        frame = encode_frame(request.to_wire(),
                             max_frame=self._server.config.max_frame)
        reply = self._server.handle_frame(frame, self._session)
        decoder = FrameDecoder(max_frame=self._server.config.max_frame)
        bodies = list(decoder.feed(reply))
        if len(bodies) != 1 or decoder.pending:
            raise TransportClosed(
                f"server returned {len(bodies)} frames for one request")
        return Response.from_wire(bodies[0])

    def close(self) -> None:
        """Retire the session (idempotent)."""
        if not self._closed:
            self._closed = True
            self._server.close_session(self._session)


class SocketTransport:
    """Blocking TCP transport for the synchronous client.

    Args:
        host: server address.
        port: server port.
        timeout: socket timeout in seconds for connect and replies.
        max_frame: largest frame accepted, matching the server's.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 max_frame: int = MAX_FRAME) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._max_frame = max_frame
        self._closed = False

    def request(self, request: Request) -> Response:
        """Write one request frame; block for the response frame."""
        if self._closed:
            raise TransportClosed("socket transport is closed")
        try:
            self._sock.sendall(
                encode_frame(request.to_wire(), max_frame=self._max_frame))
            while True:
                data = self._sock.recv(65536)
                if not data:
                    raise TransportClosed("server closed the connection")
                for body in self._decoder.feed(data):
                    return Response.from_wire(body)
        except OSError as exc:
            self.close()
            raise TransportClosed(f"transport failed: {exc!r}") from exc

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
