"""``repro.service``: a sharded, multi-process sampling service.

The paper maintains one disk-resident reservoir per machine; this
package is the deployment layer on top -- ``S`` shard workers (each a
checkpointed geometric file on its own device directory) ingesting
partitioned batches in parallel, one supervisor serving merged queries
that are provably uniform over the union stream, and per-shard fault
recovery from checkpoints with journal replay.

Quick start::

    from repro import GeometricFileConfig
    from repro.service import ShardedReservoir

    config = GeometricFileConfig(capacity=25_000, buffer_capacity=500,
                                 record_size=50, admission="uniform",
                                 retain_records=True)
    with ShardedReservoir("/var/lib/repro", config, shards=4) as svc:
        svc.offer_batch(batch)            # partitioned, backpressured
        merged = svc.sample(200)         # uniform over the union stream
        est = svc.estimate_sum(200)      # AQP with CLT error bars
        svc.kill_shard(2)                # chaos-test it
        svc.recover()                    # checkpoint + journal replay

See docs/SERVICE.md for the architecture, the uniformity proof sketch,
the failure model, and backpressure semantics.
"""

from .merge import allocate_counts, merge_shard_samples
from .partition import (
    HashPartitioner,
    RoundRobinPartitioner,
    make_partitioner,
    mix64,
)
from .pool import InlinePool, ProcessPool, ShardDead
from .sharded import ShardedReservoir, default_device_spec
from .shm import HAVE_SHM, SlabRing, TornSlabError
from .spec import SHARD_KINDS, ShardSpec, shard_directory
from .worker import ShardWorker, SimulatedCrash, worker_main

__all__ = [
    "HAVE_SHM",
    "HashPartitioner",
    "InlinePool",
    "ProcessPool",
    "RoundRobinPartitioner",
    "SHARD_KINDS",
    "ShardDead",
    "ShardSpec",
    "ShardWorker",
    "ShardedReservoir",
    "SimulatedCrash",
    "SlabRing",
    "TornSlabError",
    "allocate_counts",
    "default_device_spec",
    "make_partitioner",
    "merge_shard_samples",
    "mix64",
    "shard_directory",
    "worker_main",
]
