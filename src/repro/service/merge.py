"""Merging per-shard samples into one uniform sample of the union.

The correctness rule (proof sketch in docs/SERVICE.md): a uniform
``k``-subset of a partitioned population is drawn by first allocating
per-partition counts ``(k_1, ..., k_S)`` from the multivariate
hypergeometric weighted by partition sizes -- here each shard's
``seen`` count, i.e. how much of the stream it has absorbed -- and
then drawing a uniform ``k_i``-subset within each partition.  Shard
``i``'s reservoir is itself a uniform sample of its ``seen_i`` stream
records (the paper's Algorithm 1 invariant), and a uniform subset of a
uniform sample is a uniform subset of the underlying stream, so the
concatenation is a uniform ``k``-subset of the *union* stream.

The allocation reuses :func:`repro.reservoir.draw_victim_counts` --
Algorithm 3's randomized-partitioning draw is exactly the multivariate
hypergeometric this merge needs, including its paper-scale (> 1e9
records) decomposition.

Workers return their records uniformly *ordered*, so taking the first
``k_i`` of a shard's reply is itself a uniform ``k_i``-subset; the
merge therefore needs one round trip even though the allocation is
drawn supervisor-side after the replies arrive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..reservoir import draw_victim_counts
from ..storage.records import Record


def allocate_counts(rng: np.random.Generator, seen: Sequence[int],
                    k: int) -> list[int]:
    """Multivariate-hypergeometric shard allocation of a ``k``-draw.

    Args:
        rng: the supervisor's merge RNG.
        seen: per-shard stream positions (partition sizes).
        k: merged sample size; must not exceed ``sum(seen)``.
    """
    total = sum(seen)
    if k > total:
        raise ValueError(
            f"cannot draw {k} records from a union stream of {total}")
    return draw_victim_counts(rng, list(seen), k)


def merge_shard_samples(rng: np.random.Generator,
                        payloads: Sequence[dict], k: int) -> list[Record]:
    """Merge per-shard ``sample`` replies into a uniform ``k``-sample.

    Args:
        rng: the supervisor's merge RNG (allocation and final shuffle).
        payloads: one worker ``sample`` payload per shard, each with
            ``seen``, ``size``, and uniformly-ordered ``records``.
        k: requested merged sample size.

    Raises:
        ValueError: when the allocation lands a shard a count larger
            than the records it returned.  Two distinct causes, both
            actionable: the shard returned fewer than ``min(k, size)``
            records (caller bug), or ``k`` exceeds a shard's reservoir
            size while its ``seen`` keeps drawing allocation toward it
            (ask for ``k`` at most the smallest shard reservoir).
    """
    seen = [p["seen"] for p in payloads]
    counts = allocate_counts(rng, seen, k)
    merged: list[Record] = []
    for payload, count in zip(payloads, counts):
        if count > len(payload["records"]):
            raise ValueError(
                f"allocation wants {count} records from a shard that "
                f"returned {len(payload['records'])} (reservoir size "
                f"{payload['size']}); request k no larger than the "
                f"smallest shard reservoir"
            )
        merged.extend(payload["records"][:count])
    # A uniform subset is exchangeable; the shuffle only removes the
    # by-shard grouping from the returned order.
    order = rng.permutation(len(merged))
    return [merged[i] for i in order]


def merge_weighted_samples(rng: np.random.Generator,
                           payloads: Sequence[dict],
                           k: int) -> list[Record]:
    """Merge *keyed* (A-ExpJ) shard replies: global top-``k`` by key.

    A record's ``log(u)/w`` key is drawn from the record alone, never
    from the reservoir holding it, so keys rank records across
    independent shards; the union stream's A-ExpJ sample is exactly
    the ``k`` largest keys in the concatenated replies.  Workers rank
    their replies best key first and trim to ``min(k, size)``, which
    always covers the shard's contribution to the global top-``k``
    when ``k`` is at most one shard's capacity (the same bound the
    uniform merge documents).  The final shuffle only removes the key
    ranking from the returned order; the selected *set* is
    deterministic given the replies.
    """
    records: list[Record] = []
    keys: list[float] = []
    for payload in payloads:
        records.extend(payload["records"])
        keys.extend(payload["keys"])
    take = min(k, len(records))
    top = np.argsort(np.asarray(keys), kind="stable")[::-1][:take]
    merged = [records[int(i)] for i in top]
    order = rng.permutation(len(merged))
    return [merged[i] for i in order]


def merge_shard_batches(rng: np.random.Generator,
                        payloads: Sequence[dict], k: int, schema):
    """Columnar :func:`merge_shard_samples`: one ``RecordBatch`` out.

    Each shard's allocated prefix is encoded into the schema's
    structured dtype once, the pieces are concatenated, and the
    de-grouping shuffle is a single row permutation.  Consumes the
    merge RNG identically to the scalar helper (one allocation draw,
    one permutation), so the two return the same sample multiset from
    the same generator state.
    """
    from ..storage.recordbatch import RecordBatch

    seen = [p["seen"] for p in payloads]
    counts = allocate_counts(rng, seen, k)
    parts = []
    for payload, count in zip(payloads, counts):
        if count > len(payload["records"]):
            raise ValueError(
                f"allocation wants {count} records from a shard that "
                f"returned {len(payload['records'])} (reservoir size "
                f"{payload['size']}); request k no larger than the "
                f"smallest shard reservoir"
            )
        if count:
            records = payload["records"][:count]
            if isinstance(records, RecordBatch):
                parts.append(records.array)
            else:
                parts.append(
                    RecordBatch.from_records(schema, records).array
                )
    if parts:
        merged = np.concatenate(parts)
    else:
        merged = np.empty(0, dtype=schema.dtype)
    order = rng.permutation(len(merged))
    return RecordBatch(schema, merged[order])
