"""Partitioning a stream across shards.

Correctness note up front: the merged-query math (docs/SERVICE.md) is
*insensitive* to how records are routed -- per-shard ``seen`` counts
weight the multivariate hypergeometric allocation, so any deterministic
or even adversarial split still yields a uniform merged sample.
Partitioning only affects balance (shard reservoirs fill at the same
rate when partitions are even) and affinity (hash partitioning sends
equal keys to the same shard, which keeps per-key locality for
downstream consumers).

Two strategies:

* :class:`HashPartitioner` -- routes by a 64-bit mix of ``record.key``
  (stable across processes and runs, unlike Python's randomised string
  hashing); records without a key (count-only ``None`` placeholders)
  fall back to round-robin.
* :class:`RoundRobinPartitioner` -- cycles shards record by record;
  exactly balanced, no key affinity.

Both are stateful only in a single rotation counter, which the service
owns; the per-shard replay journal records batches *after*
partitioning, so crash recovery never re-runs a partitioner.
"""

from __future__ import annotations

import numpy as np

from ..storage.recordbatch import RecordBatch
from ..storage.records import Record


def mix64(value: int) -> int:
    """SplitMix64 finaliser: a cheap, well-distributed 64-bit mix.

    ``key % S`` alone would send every stride-``S`` key pattern to one
    shard; the mix makes shard choice insensitive to key structure.
    """
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB
    value &= 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def mix64_array(values) -> np.ndarray:
    """Vectorised :func:`mix64` over a key column.

    Bit-identical to the scalar mix for every input (two's-complement
    int64 keys reinterpret as uint64, exactly like the Python mask).
    """
    v = np.asarray(values).astype(np.uint64)
    v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return v ^ (v >> np.uint64(31))


class RoundRobinPartitioner:
    """Cycle records across ``shards`` starting from a rotating offset."""

    name = "round-robin"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self._next = 0

    def split(self, records) -> list[list]:
        """Partition one batch; returns a list of ``shards`` sub-batches."""
        parts: list[list] = [[] for _ in range(self.shards)]
        index = self._next
        for record in records:
            parts[index].append(record)
            index = (index + 1) % self.shards
        self._next = index
        return parts

    def split_batch(self, batch: RecordBatch) -> list[RecordBatch]:
        """Columnar :meth:`split`: one boolean-mask select per shard.

        Routing (and rotation-counter advance) is identical to feeding
        ``list(batch)`` through :meth:`split`; sub-batches preserve
        stream order, so per-shard ingestion is order-identical too.
        """
        n = len(batch)
        assign = (np.arange(n, dtype=np.int64) + self._next) % self.shards
        parts = [RecordBatch(batch.schema, batch.array[assign == s])
                 for s in range(self.shards)]
        self._next = (self._next + n) % self.shards
        return parts

    def split_count(self, n: int) -> list[int]:
        """Partition a count-only batch of ``n`` records.

        The remainder rotates with the same counter as :meth:`split`,
        so long runs stay balanced to within one record.
        """
        if n < 0:
            raise ValueError("cannot split a negative count")
        base, remainder = divmod(n, self.shards)
        counts = [base] * self.shards
        for k in range(remainder):
            counts[(self._next + k) % self.shards] += 1
        self._next = (self._next + remainder) % self.shards
        return counts


class HashPartitioner(RoundRobinPartitioner):
    """Route by hashed record key; ``None`` records fall back to
    round-robin (count-only streams have no keys to hash)."""

    name = "hash"

    def split(self, records) -> list[list]:
        parts: list[list] = [[] for _ in range(self.shards)]
        index = self._next
        shards = self.shards
        for record in records:
            if isinstance(record, Record):
                parts[mix64(record.key) % shards].append(record)
            else:
                parts[index].append(record)
                index = (index + 1) % shards
        self._next = index
        return parts

    def split_batch(self, batch: RecordBatch) -> list[RecordBatch]:
        """Columnar :meth:`split`: vectorised key mix, one mask per shard.

        Weighted batches decode to :class:`WeightedRecord` rows, which
        the list path round-robins (they are not ``Record`` instances),
        so the columnar path does the same for exact routing parity.
        """
        if batch.schema.weighted:
            return super().split_batch(batch)
        assign = mix64_array(batch.keys) % np.uint64(self.shards)
        # No rotation advance: the list path only advances on non-Record
        # (count-only) entries, which a batch never carries.
        return [RecordBatch(batch.schema, batch.array[assign == s])
                for s in range(self.shards)]


_PARTITIONERS = {
    "hash": HashPartitioner,
    "round-robin": RoundRobinPartitioner,
}


def make_partitioner(strategy: str, shards: int) -> RoundRobinPartitioner:
    """Build a partitioner by name (``"hash"`` or ``"round-robin"``)."""
    try:
        cls = _PARTITIONERS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; expected one of "
            f"{sorted(_PARTITIONERS)}"
        ) from None
    return cls(shards)
