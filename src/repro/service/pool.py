"""Worker pools: real processes and an in-process stand-in.

:class:`ProcessPool` is the production harness -- one daemon process
per shard, a *bounded* inbox queue (the bound IS the backpressure: a
producer outrunning a shard blocks in ``send`` until the shard drains),
and an outbox for replies.  :class:`InlinePool` runs the identical
:class:`~repro.service.worker.ShardWorker` state machine synchronously
in the calling process: deterministic, dependency-free, and fast --
the variant tier-1 tests exercise, with crashes simulated by dropping
the worker object (its checkpoint file on disk is all that survives,
exactly as for a killed process).

Both pools expose the same surface: ``send`` / ``recv`` / ``try_recv``
/ ``drain`` / ``alive`` / ``kill`` / ``respawn`` / ``close``.  Death is
reported as :class:`ShardDead`, which the supervisor treats as the
recovery trigger; the pools themselves never touch checkpoints or
journals.

Transports.  :class:`ProcessPool` moves messages over pickling
``multiprocessing.Queue``\\ s; with ``ipc="shm"`` it adds a data plane:
one inbound and one outbound :class:`~repro.service.shm.SlabRing` per
shard, over which :class:`~repro.storage.recordbatch.RecordBatch`
payloads travel as zero-copy slabs.  Every slab is paired with a tiny
*stub* message on the queue -- the queue keeps its total FIFO order
(control commands can never overtake in-flight batches) and both sides
are FIFO, so the k-th stub always describes the k-th ring frame.  The
control plane (checkpoint, crash, stop, acks) never touches the rings;
a slab too large for its ring falls back to the pickled queue path
(``RecordBatch`` is picklable precisely for this), so correctness is
transport-independent.  Waits are adaptive (sub-millisecond floor,
doubling to a bounded ceiling) instead of the old fixed 50 ms poll,
and all measured waiting is surfaced (``send_wait_seconds`` /
``recv_wait_seconds``) for the supervisor's stall accounting.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_module
import time
from collections import deque

from ..storage.recordbatch import RecordBatch
from ..storage.records import RecordSchema
from .shm import (
    DEFAULT_RING_BYTES,
    FLAG_WEIGHTED,
    HAVE_SHM,
    KIND_DATA,
    SlabRing,
    TornSlabError,
)
from .spec import ShardSpec
from .worker import ShardWorker, SimulatedCrash, worker_main

#: Adaptive wait bounds: first retry after half a millisecond, backing
#: off by doubling to the old poll granularity.  Small-batch latency
#: stops quantizing at 50 ms while idle waits stay as cheap as before.
_WAIT_FLOOR = 0.0005
_WAIT_CEIL = 0.05

_log = logging.getLogger(__name__)


class _AdaptiveWait:
    """Escalating timeout generator with measured total wait."""

    __slots__ = ("current", "waited")

    def __init__(self) -> None:
        self.current = _WAIT_FLOOR
        self.waited = 0.0

    def step(self) -> float:
        """The timeout to use for the next blocking attempt."""
        t = self.current
        self.current = min(t * 2.0, _WAIT_CEIL)
        return t

    def sleep(self) -> None:
        """Sleep one step (for ring waits, which have no timeout arg)."""
        t = self.step()
        time.sleep(t)
        self.waited += t


class ShardDead(RuntimeError):
    """A shard's worker is gone; carries the shard id for recovery."""

    def __init__(self, shard_id: int, why: str = "worker died") -> None:
        super().__init__(f"shard {shard_id}: {why}")
        self.shard_id = shard_id


class InlinePool:
    """Synchronous single-process pool (the fake used by tier-1 tests).

    ``send`` runs the worker's handler immediately; replies queue in a
    per-shard deque that ``recv``/``drain`` pop.  A ``crash`` command
    (or :meth:`kill`) discards the in-memory worker -- the only state
    that survives to :meth:`respawn` is the checkpoint file, so the
    recovery path under test is the real one.
    """

    is_process_backed = False
    #: Inline workers share the caller's heap: a ``RecordBatch`` batch
    #: payload needs no serialisation, so the columnar scatter is safe.
    supports_batches = True
    ipc = "inline"
    zero_copy_bytes = 0
    fallback_slabs = 0
    ring_stalls = 0
    dropped_replies = 0
    send_wait_seconds = 0.0
    recv_wait_seconds = 0.0

    def __init__(self, specs: list[ShardSpec]) -> None:
        self.specs = list(specs)
        self._workers: dict[int, ShardWorker | None] = {}
        self._outboxes: dict[int, deque] = {
            spec.shard_id: deque() for spec in self.specs
        }
        for spec in self.specs:
            self._start(spec)

    def _start(self, spec: ShardSpec) -> None:
        worker = ShardWorker(spec)
        self._workers[spec.shard_id] = worker
        self._outboxes[spec.shard_id].append(
            ("ready", spec.shard_id, worker.seq))

    def alive(self, shard_id: int) -> bool:
        return self._workers.get(shard_id) is not None

    def queue_depth(self, shard_id: int) -> int:
        """Pending commands (always 0: inline execution is immediate)."""
        return 0

    def ring_depth(self, shard_id: int) -> int:
        """Bytes in flight on the shard's rings (always 0 inline)."""
        return 0

    def send(self, shard_id: int, message: tuple) -> int:
        """Deliver one command; returns backpressure stalls (always 0)."""
        worker = self._workers.get(shard_id)
        if worker is None:
            raise ShardDead(shard_id)
        try:
            replies = worker.handle(message)
        except SimulatedCrash:
            self._workers[shard_id] = None
            raise ShardDead(shard_id, "crashed on command") from None
        self._outboxes[shard_id].extend(replies)
        if message[0] == "stop":
            self._workers[shard_id] = None
        return 0

    def recv(self, shard_id: int, timeout: float | None = None) -> tuple:
        outbox = self._outboxes[shard_id]
        if outbox:
            return outbox.popleft()
        if not self.alive(shard_id):
            raise ShardDead(shard_id, "no reply and worker gone")
        raise queue_module.Empty(
            f"shard {shard_id} has no pending replies")

    def try_recv(self, shard_id: int) -> tuple | None:
        """Non-blocking :meth:`recv`; ``None`` when nothing is ready."""
        outbox = self._outboxes[shard_id]
        if outbox:
            return outbox.popleft()
        if not self.alive(shard_id):
            raise ShardDead(shard_id, "no reply and worker gone")
        return None

    def drain(self, shard_id: int) -> list[tuple]:
        """Pop every buffered reply (late acks before a respawn)."""
        outbox = self._outboxes[shard_id]
        drained = list(outbox)
        outbox.clear()
        return drained

    def kill(self, shard_id: int) -> None:
        """Hard-kill: drop the worker, keep only its on-disk checkpoint."""
        self._workers[shard_id] = None

    def respawn(self, shard_id: int) -> None:
        spec = next(s for s in self.specs if s.shard_id == shard_id)
        self._outboxes[shard_id].clear()
        self._start(spec)

    def close(self) -> None:
        self._workers = {spec.shard_id: None for spec in self.specs}


class ProcessPool:
    """One daemon process per shard with bounded inboxes.

    Args:
        specs: one :class:`ShardSpec` per shard.
        queue_depth: inbox bound in *messages* (a batch is one
            message); a full inbox blocks ``send`` -- that blocking is
            the service's backpressure, propagated to the caller.
        start_method: multiprocessing start method; ``None`` uses the
            platform default (``fork`` on Linux, which inherits the
            parent's imports instead of re-importing them).
        ipc: ``"shm"`` adds the shared-memory slab data plane (one
            ring pair per shard); ``"queue"`` keeps every payload on
            the pickling queues.  ``"shm"`` degrades to ``"queue"``
            automatically where shared memory is unavailable.
        ring_bytes: per-direction ring capacity in bytes (shm only).
            A slab that can never fit rides the queue instead; ring
            occupancy is backpressure exactly like a full inbox.
    """

    is_process_backed = True

    def __init__(self, specs: list[ShardSpec], *, queue_depth: int = 8,
                 start_method: str | None = None, ipc: str = "queue",
                 ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if ipc not in ("queue", "shm"):
            raise ValueError(f"unknown ipc transport {ipc!r}")
        self.specs = list(specs)
        self.queue_bound = queue_depth
        self.ipc = ipc if (ipc == "queue" or HAVE_SHM) else "queue"
        self.supports_batches = self.ipc == "shm"
        self.ring_bytes = ring_bytes
        self.zero_copy_bytes = 0
        self.fallback_slabs = 0
        self.ring_stalls = 0
        self.dropped_replies = 0
        self.send_wait_seconds = 0.0
        self.recv_wait_seconds = 0.0
        #: Optional observer called once per slab moved over a ring,
        #: with ``direction``/``bytes``/``records`` keywords; the
        #: supervisor wires it to its ``ipc_slab`` trace event.
        self.trace_hook = None
        self._ctx = (multiprocessing.get_context(start_method)
                     if start_method else multiprocessing.get_context())
        self._schemas: dict[int, RecordSchema] = {
            spec.shard_id: spec.schema for spec in self.specs
        }
        self._inboxes: dict[int, object] = {}
        self._outboxes: dict[int, object] = {}
        self._processes: dict[int, object] = {}
        self._in_rings: dict[int, SlabRing] = {}
        self._out_rings: dict[int, SlabRing] = {}
        #: Per-shard local reply buffer in front of the outbox queue:
        #: each wakeup slurps *every* ready reply out of the queue in
        #: one pass (batched harvesting) instead of paying one queue
        #: round-trip per reply.
        self._buffers: dict[int, deque] = {
            spec.shard_id: deque() for spec in self.specs
        }
        for spec in self.specs:
            self._start(spec)

    def _start(self, spec: ShardSpec) -> None:
        shard_id = spec.shard_id
        inbox = self._ctx.Queue(maxsize=self.queue_bound)
        outbox = self._ctx.Queue()
        ring_names = None
        if self.ipc == "shm":
            self._in_rings[shard_id] = SlabRing(capacity=self.ring_bytes)
            self._out_rings[shard_id] = SlabRing(capacity=self.ring_bytes)
            ring_names = (self._in_rings[shard_id].name,
                          self._out_rings[shard_id].name)
        process = self._ctx.Process(
            target=worker_main, args=(spec, inbox, outbox, ring_names),
            name=f"repro-shard-{spec.shard_id}", daemon=True,
        )
        process.start()
        self._inboxes[shard_id] = inbox
        self._outboxes[shard_id] = outbox
        self._processes[shard_id] = process

    def alive(self, shard_id: int) -> bool:
        process = self._processes.get(shard_id)
        return process is not None and process.is_alive()

    def queue_depth(self, shard_id: int) -> int:
        """Approximate pending commands in the shard's inbox."""
        try:
            return self._inboxes[shard_id].qsize()
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return -1

    def ring_depth(self, shard_id: int) -> int:
        """Bytes currently in flight on the shard's rings (0 for queue
        transport); feeds the supervisor's ring-depth gauge."""
        depth = 0
        ring = self._in_rings.get(shard_id)
        if ring is not None:
            depth += ring.used_bytes
        ring = self._out_rings.get(shard_id)
        if ring is not None:
            depth += ring.used_bytes
        return depth

    # -- sending ------------------------------------------------------------

    def send(self, shard_id: int, message: tuple) -> int:
        """Deliver one command, blocking under backpressure.

        Returns the number of full-queue (or full-ring) stalls endured
        -- the supervisor surfaces the total as a backpressure metric.
        Raises :class:`ShardDead` if the worker dies while we wait.
        """
        if (self.ipc == "shm" and message[0] == "batch"
                and isinstance(message[2], RecordBatch)):
            if message[2].schema == self._schemas[shard_id]:
                return self._send_slab(shard_id, message)
            # A batch whose schema is not the shard's declared layout
            # (weighted rows, different record size) would be misdecoded
            # by the slab codec on the other side: it rides the pickled
            # queue instead, where the batch carries its own schema.
            self.fallback_slabs += 1
        return self._send_queue(shard_id, message)

    def _send_queue(self, shard_id: int, message: tuple) -> int:
        inbox = self._inboxes[shard_id]
        stalls = 0
        wait = _AdaptiveWait()
        while True:
            started = time.monotonic()
            try:
                inbox.put(message, timeout=wait.step())
                return stalls
            except queue_module.Full:
                self.send_wait_seconds += time.monotonic() - started
                stalls += 1
                if not self.alive(shard_id):
                    raise ShardDead(
                        shard_id, "died with a full inbox") from None

    def _send_slab(self, shard_id: int, message: tuple) -> int:
        """Ship one ``("batch", seq, RecordBatch)`` over the ring.

        Frame first, stub second: a stub on the queue therefore always
        implies a published frame.  Ring-full waits count as
        backpressure stalls exactly like a full inbox; a batch the ring
        can never hold falls back to the pickled queue path.
        """
        _, seq, batch = message
        ring = self._in_rings[shard_id]
        n_bytes = len(batch) * batch.schema.record_size
        if not ring.fits(n_bytes):
            self.fallback_slabs += 1
            return self._send_queue(shard_id, message)
        stalls = 0
        wait = _AdaptiveWait()
        while True:
            view = ring.try_reserve(n_bytes)
            if view is not None:
                break
            stalls += 1
            self.ring_stalls += 1
            if not self.alive(shard_id):
                raise ShardDead(
                    shard_id, "died with a full slab ring") from None
            wait.sleep()
        self.send_wait_seconds += wait.waited
        batch.into_shared(view)
        flags = FLAG_WEIGHTED if batch.schema.weighted else 0
        ring.commit(KIND_DATA, seq, flags=flags, n_records=len(batch),
                    n_bytes=n_bytes)
        self.zero_copy_bytes += n_bytes
        if self.trace_hook is not None:
            self.trace_hook(direction="ingest", shard=shard_id,
                            bytes=n_bytes, records=len(batch))
        return stalls + self._send_queue(
            shard_id, ("batch_slab", seq, len(batch)))

    # -- receiving ----------------------------------------------------------

    def _translate(self, shard_id: int, reply: tuple) -> tuple:
        """Resolve a slab stub into the full reply it stands for.

        Must run at queue-dequeue time, in dequeue order: stubs and
        frames advance in lockstep, so the frame for this stub is by
        construction the oldest unconsumed frame on the outbound ring.
        """
        if reply[0] != "sample_slab":
            return reply
        _, _, token, meta = reply
        ring = self._out_rings[shard_id]
        wait = _AdaptiveWait()
        while True:
            try:
                slab = ring.try_pop()
            except TornSlabError as exc:
                raise ShardDead(shard_id, f"torn reply slab: {exc}")
            if slab is not None:
                break
            # The worker publishes the frame before the stub, so this
            # spin only covers cross-process store visibility.
            if not self.alive(shard_id):
                raise ShardDead(shard_id, "reply slab never arrived")
            wait.sleep()
        self.recv_wait_seconds += wait.waited
        schema = self._schemas[shard_id]
        if slab.weighted is not schema.weighted:  # pragma: no cover
            ring.pop_done(slab)
            raise ShardDead(shard_id, "reply slab schema mismatch")
        batch = RecordBatch.from_shared(schema, slab.view,
                                        slab.n_records).copy()
        n_bytes = slab.n_bytes
        ring.pop_done(slab)
        self.zero_copy_bytes += n_bytes
        if self.trace_hook is not None:
            self.trace_hook(direction="reply", shard=shard_id,
                            bytes=n_bytes, records=len(batch))
        payload = dict(meta)
        payload["records"] = batch
        return ("sample", shard_id, token, payload)

    def _slurp(self, shard_id: int) -> None:
        """Move every ready outbox reply into the local buffer."""
        outbox = self._outboxes[shard_id]
        buffer = self._buffers[shard_id]
        while True:
            try:
                reply = outbox.get_nowait()
            except queue_module.Empty:
                return
            buffer.append(self._translate(shard_id, reply))

    def recv(self, shard_id: int, timeout: float | None = None) -> tuple:
        """Next reply from the shard.

        Raises :class:`ShardDead` when the worker is gone and its
        outbox is exhausted, or ``TimeoutError`` when the worker is
        alive but silent past ``timeout`` seconds.
        """
        buffer = self._buffers[shard_id]
        if buffer:
            return buffer.popleft()
        outbox = self._outboxes[shard_id]
        deadline = None if timeout is None else time.monotonic() + timeout
        wait = _AdaptiveWait()
        while True:
            started = time.monotonic()
            try:
                reply = outbox.get(timeout=wait.step())
            except queue_module.Empty:
                self.recv_wait_seconds += time.monotonic() - started
                if not self.alive(shard_id):
                    # The pipe may still hold replies written before
                    # death; one final non-blocking sweep.
                    try:
                        reply = outbox.get_nowait()
                    except queue_module.Empty:
                        raise ShardDead(
                            shard_id, "no reply and worker gone"
                        ) from None
                elif deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {shard_id} sent no reply within "
                        f"{timeout} seconds") from None
                else:
                    continue
            reply = self._translate(shard_id, reply)
            self._slurp(shard_id)  # batch-harvest whatever else is ready
            return reply

    def try_recv(self, shard_id: int) -> tuple | None:
        """Non-blocking :meth:`recv`; ``None`` when nothing is ready.

        The scatter-gather query fan-out polls shards round-robin with
        this, consuming whichever shard answers first.
        """
        buffer = self._buffers[shard_id]
        if not buffer:
            self._slurp(shard_id)
        if buffer:
            return buffer.popleft()
        if not self.alive(shard_id):
            raise ShardDead(shard_id, "no reply and worker gone")
        return None

    def drain(self, shard_id: int) -> list[tuple]:
        """Harvest every buffered reply (e.g. late checkpoint acks
        written just before a crash).

        A slab stub whose frame never arrived, or arrived torn
        (worker died mid-write), cannot be translated: that one reply
        is dropped -- logged and counted in ``dropped_replies`` so the
        loss is observable -- while later queue-only replies (late
        checkpoint acks) still come through.  A dropped batch ack is
        recovered by journal replay; a dropped query answer is gone,
        which the caller sees as a shorter drain list.
        """
        buffer = self._buffers[shard_id]
        outbox = self._outboxes[shard_id]
        while True:
            try:
                reply = outbox.get_nowait()
            except queue_module.Empty:
                break
            try:
                buffer.append(self._translate(shard_id, reply))
            except ShardDead as exc:
                self.dropped_replies += 1
                _log.warning(
                    "shard %d: dropping %r reply during drain "
                    "(slab translation failed: %s)",
                    shard_id, reply[0], exc)
        drained = list(buffer)
        buffer.clear()
        return drained

    # -- lifecycle ----------------------------------------------------------

    def kill(self, shard_id: int) -> None:
        """SIGKILL the worker (chaos hook; no checkpoint, no goodbye)."""
        process = self._processes[shard_id]
        process.kill()
        process.join(timeout=10)

    def _discard_rings(self, shard_id: int) -> None:
        for registry in (self._in_rings, self._out_rings):
            ring = registry.pop(shard_id, None)
            if ring is not None:
                ring.unlink()

    def respawn(self, shard_id: int) -> None:
        """Replace a dead worker with a fresh process, fresh queues,
        and fresh rings.

        Commands stranded in the old inbox or rings are discarded
        deliberately: the supervisor's journal is the durable copy and
        will replay them with their original sequence numbers.
        """
        old = self._processes.get(shard_id)
        if old is not None:
            if old.is_alive():
                old.terminate()
            old.join(timeout=10)
        for registry in (self._inboxes, self._outboxes):
            stale = registry.pop(shard_id, None)
            if stale is not None:
                stale.close()
                stale.cancel_join_thread()
        self._discard_rings(shard_id)
        self._buffers[shard_id].clear()
        spec = next(s for s in self.specs if s.shard_id == shard_id)
        self._start(spec)

    def close(self) -> None:
        for shard_id, process in self._processes.items():
            if process.is_alive():
                process.terminate()
            process.join(timeout=10)
        for registry in (self._inboxes, self._outboxes):
            for q in registry.values():
                q.close()
                q.cancel_join_thread()
            registry.clear()
        for shard_id in list(self._in_rings) + list(self._out_rings):
            self._discard_rings(shard_id)
        self._processes.clear()
