"""Worker pools: real processes and an in-process stand-in.

:class:`ProcessPool` is the production harness -- one daemon process
per shard, a *bounded* inbox queue (the bound IS the backpressure: a
producer outrunning a shard blocks in ``send`` until the shard drains),
and an outbox for replies.  :class:`InlinePool` runs the identical
:class:`~repro.service.worker.ShardWorker` state machine synchronously
in the calling process: deterministic, dependency-free, and fast --
the variant tier-1 tests exercise, with crashes simulated by dropping
the worker object (its checkpoint file on disk is all that survives,
exactly as for a killed process).

Both pools expose the same surface: ``send`` / ``recv`` / ``drain`` /
``alive`` / ``kill`` / ``respawn`` / ``close``.  Death is reported as
:class:`ShardDead`, which the supervisor treats as the recovery
trigger; the pools themselves never touch checkpoints or journals.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from collections import deque

from .spec import ShardSpec
from .worker import ShardWorker, SimulatedCrash, worker_main

#: Granularity of the liveness checks inside blocking queue operations.
_POLL_SECONDS = 0.05


class ShardDead(RuntimeError):
    """A shard's worker is gone; carries the shard id for recovery."""

    def __init__(self, shard_id: int, why: str = "worker died") -> None:
        super().__init__(f"shard {shard_id}: {why}")
        self.shard_id = shard_id


class InlinePool:
    """Synchronous single-process pool (the fake used by tier-1 tests).

    ``send`` runs the worker's handler immediately; replies queue in a
    per-shard deque that ``recv``/``drain`` pop.  A ``crash`` command
    (or :meth:`kill`) discards the in-memory worker -- the only state
    that survives to :meth:`respawn` is the checkpoint file, so the
    recovery path under test is the real one.
    """

    is_process_backed = False

    def __init__(self, specs: list[ShardSpec]) -> None:
        self.specs = list(specs)
        self._workers: dict[int, ShardWorker | None] = {}
        self._outboxes: dict[int, deque] = {
            spec.shard_id: deque() for spec in self.specs
        }
        for spec in self.specs:
            self._start(spec)

    def _start(self, spec: ShardSpec) -> None:
        worker = ShardWorker(spec)
        self._workers[spec.shard_id] = worker
        self._outboxes[spec.shard_id].append(
            ("ready", spec.shard_id, worker.seq))

    def alive(self, shard_id: int) -> bool:
        return self._workers.get(shard_id) is not None

    def queue_depth(self, shard_id: int) -> int:
        """Pending commands (always 0: inline execution is immediate)."""
        return 0

    def send(self, shard_id: int, message: tuple) -> int:
        """Deliver one command; returns backpressure stalls (always 0)."""
        worker = self._workers.get(shard_id)
        if worker is None:
            raise ShardDead(shard_id)
        try:
            replies = worker.handle(message)
        except SimulatedCrash:
            self._workers[shard_id] = None
            raise ShardDead(shard_id, "crashed on command") from None
        self._outboxes[shard_id].extend(replies)
        if message[0] == "stop":
            self._workers[shard_id] = None
        return 0

    def recv(self, shard_id: int, timeout: float | None = None) -> tuple:
        outbox = self._outboxes[shard_id]
        if outbox:
            return outbox.popleft()
        if not self.alive(shard_id):
            raise ShardDead(shard_id, "no reply and worker gone")
        raise queue_module.Empty(
            f"shard {shard_id} has no pending replies")

    def drain(self, shard_id: int) -> list[tuple]:
        """Pop every buffered reply (late acks before a respawn)."""
        outbox = self._outboxes[shard_id]
        drained = list(outbox)
        outbox.clear()
        return drained

    def kill(self, shard_id: int) -> None:
        """Hard-kill: drop the worker, keep only its on-disk checkpoint."""
        self._workers[shard_id] = None

    def respawn(self, shard_id: int) -> None:
        spec = next(s for s in self.specs if s.shard_id == shard_id)
        self._outboxes[shard_id].clear()
        self._start(spec)

    def close(self) -> None:
        self._workers = {spec.shard_id: None for spec in self.specs}


class ProcessPool:
    """One daemon process per shard with bounded inboxes.

    Args:
        specs: one :class:`ShardSpec` per shard.
        queue_depth: inbox bound in *messages* (a batch is one
            message); a full inbox blocks ``send`` -- that blocking is
            the service's backpressure, propagated to the caller.
        start_method: multiprocessing start method; ``None`` uses the
            platform default (``fork`` on Linux, which inherits the
            parent's imports instead of re-importing them).
    """

    is_process_backed = True

    def __init__(self, specs: list[ShardSpec], *, queue_depth: int = 8,
                 start_method: str | None = None) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.specs = list(specs)
        self.queue_bound = queue_depth
        self._ctx = (multiprocessing.get_context(start_method)
                     if start_method else multiprocessing.get_context())
        self._inboxes: dict[int, object] = {}
        self._outboxes: dict[int, object] = {}
        self._processes: dict[int, object] = {}
        for spec in self.specs:
            self._start(spec)

    def _start(self, spec: ShardSpec) -> None:
        inbox = self._ctx.Queue(maxsize=self.queue_bound)
        outbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main, args=(spec, inbox, outbox),
            name=f"repro-shard-{spec.shard_id}", daemon=True,
        )
        process.start()
        self._inboxes[spec.shard_id] = inbox
        self._outboxes[spec.shard_id] = outbox
        self._processes[spec.shard_id] = process

    def alive(self, shard_id: int) -> bool:
        process = self._processes.get(shard_id)
        return process is not None and process.is_alive()

    def queue_depth(self, shard_id: int) -> int:
        """Approximate pending commands in the shard's inbox."""
        try:
            return self._inboxes[shard_id].qsize()
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return -1

    def send(self, shard_id: int, message: tuple) -> int:
        """Deliver one command, blocking under backpressure.

        Returns the number of full-queue stalls endured -- the
        supervisor surfaces the total as a backpressure metric.  Raises
        :class:`ShardDead` if the worker dies while we wait.
        """
        inbox = self._inboxes[shard_id]
        stalls = 0
        while True:
            try:
                inbox.put(message, timeout=_POLL_SECONDS)
                return stalls
            except queue_module.Full:
                stalls += 1
                if not self.alive(shard_id):
                    raise ShardDead(
                        shard_id, "died with a full inbox") from None

    def recv(self, shard_id: int, timeout: float | None = None) -> tuple:
        """Next reply from the shard.

        Raises :class:`ShardDead` when the worker is gone and its
        outbox is exhausted, or ``TimeoutError`` when the worker is
        alive but silent past ``timeout`` seconds.
        """
        outbox = self._outboxes[shard_id]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                if not self.alive(shard_id):
                    # The pipe may still hold replies written before
                    # death; one final non-blocking sweep.
                    try:
                        return outbox.get_nowait()
                    except queue_module.Empty:
                        raise ShardDead(
                            shard_id, "no reply and worker gone"
                        ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {shard_id} sent no reply within "
                        f"{timeout} seconds") from None

    def drain(self, shard_id: int) -> list[tuple]:
        """Harvest every buffered reply (e.g. late checkpoint acks
        written just before a crash)."""
        outbox = self._outboxes[shard_id]
        drained = []
        while True:
            try:
                drained.append(outbox.get_nowait())
            except queue_module.Empty:
                return drained

    def kill(self, shard_id: int) -> None:
        """SIGKILL the worker (chaos hook; no checkpoint, no goodbye)."""
        process = self._processes[shard_id]
        process.kill()
        process.join(timeout=10)

    def respawn(self, shard_id: int) -> None:
        """Replace a dead worker with a fresh process and fresh queues.

        Commands stranded in the old inbox are discarded deliberately:
        the supervisor's journal is the durable copy and will replay
        them with their original sequence numbers.
        """
        old = self._processes.get(shard_id)
        if old is not None:
            if old.is_alive():
                old.terminate()
            old.join(timeout=10)
        for registry in (self._inboxes, self._outboxes):
            stale = registry.pop(shard_id, None)
            if stale is not None:
                stale.close()
                stale.cancel_join_thread()
        spec = next(s for s in self.specs if s.shard_id == shard_id)
        self._start(spec)

    def close(self) -> None:
        for shard_id, process in self._processes.items():
            if process.is_alive():
                process.terminate()
            process.join(timeout=10)
        for registry in (self._inboxes, self._outboxes):
            for q in registry.values():
                q.close()
                q.cancel_join_thread()
            registry.clear()
        self._processes.clear()
