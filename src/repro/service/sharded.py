"""The sharded sampling service: :class:`ShardedReservoir`.

One supervisor object partitions incoming batches across ``S`` shard
workers (each a checkpointed geometric file on its own device
directory), serves merged queries that are provably uniform over the
union stream, and recovers crashed shards from their checkpoints with
journal replay.  See docs/SERVICE.md for the architecture, the
uniformity proof sketch, the failure model, and backpressure
semantics.

Durability / exactly-once contract, in one paragraph: every batch is
appended to an in-memory per-shard journal *before* it is enqueued to
the worker; workers checkpoint every ``checkpoint_batches`` applied
batches, stamping the covered sequence number into the checkpoint file
itself (one atomic rename); checkpoint acks prune the journal.  When a
worker dies -- detected by liveness checks, a full inbox, or a silent
outbox -- the supervisor harvests any late acks, respawns the worker,
reads the restored sequence from its ``ready`` handshake, prunes the
journal to it, and replays the rest in order.  The worker rejects
non-monotonic sequences, so a record is applied exactly once no matter
where the crash landed; the restored RNG state continues bit-exactly
(a tested property of :mod:`repro.core.checkpoint`), so the recovered
shard is byte-for-byte the reservoir the crash interrupted.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.geometric_file import GeometricFile, GeometricFileConfig
from ..core.multi import MultiFileConfig, MultipleGeometricFiles
from ..estimate import BatchQuery, Estimate, SnapshotEstimator
from ..obs import ReservoirStats, aggregate_stats, stats_from_dict
from ..obs.deprecation import warn_deprecated
from ..storage.device import DeviceSpec
from ..storage.disk_model import DiskParameters
from ..storage.recordbatch import RecordBatch
from ..storage.records import Record, RecordSchema
from .merge import (
    merge_shard_batches,
    merge_shard_samples,
    merge_weighted_samples,
)
from .partition import make_partitioner
from .pool import InlinePool, ProcessPool, ShardDead, _AdaptiveWait
from .shm import DEFAULT_RING_BYTES
from .spec import ShardSpec, shard_directory

#: Default patience for a worker reply before the shard is presumed hung.
DEFAULT_TIMEOUT = 60.0


def default_device_spec(kind: str,
                        config: GeometricFileConfig | MultiFileConfig,
                        ) -> DeviceSpec:
    """A simulated per-shard device sized for ``config``.

    Each shard gets its own simulated spindle (the paper's measured
    disk), which is what makes ``S`` shards genuinely parallel in
    simulated time.
    """
    params = DiskParameters()
    cls = MultipleGeometricFiles if kind == "multi" else GeometricFile
    blocks = cls.required_blocks(config, params.block_size)
    return DeviceSpec("simulated", blocks, params.block_size, params)


class ShardedReservoir:
    """A multi-process reservoir service with uniform merged queries.

    Args:
        root: directory owning per-shard state
            (``root/shard-00/checkpoint.json``, ...); created if
            missing.  Reopening an existing root recovers every shard
            from its checkpoint.
        config: *per-shard* structure sizing; total service capacity is
            ``shards * config.capacity``.  ``admission`` must be
            ``"uniform"``; ``retain_records=True`` is required for
            ``sample()``/AQP (count-only shards still ingest and
            answer ``stats()``).
        shards: number of shard workers ``S``.
        kind: ``"geometric"`` or ``"multi"`` (per shard).
        device: per-shard device blueprint; defaults to a simulated
            spindle sized for ``config``.
        pool: ``"process"`` (one worker process per shard, the
            production path) or ``"inline"`` (same state machine run
            synchronously in-process -- deterministic, used by tier-1
            tests and available for debugging).
        partition: ``"hash"`` (by record key) or ``"round-robin"``.
        queue_depth: bounded inbox size per shard, in messages;
            ingestion blocks when a shard falls this far behind
            (backpressure).
        checkpoint_batches: worker checkpoint cadence in batches; also
            bounds journal memory and crash replay length.
        seed: base seed; shard ``i`` uses ``seed + i`` for its
            reservoir and an independent stream for queries/merges.
        timeout: seconds to wait for a worker reply before declaring
            it hung.
        start_method: forwarded to :class:`ProcessPool`.
        ipc: process-pool data-plane transport -- ``"shm"`` (default)
            moves :class:`RecordBatch` payloads over zero-copy
            shared-memory slab rings, ``"queue"`` pickles everything
            through the queues.  Bit-exact either way (samples,
            DiskStats, clock); ``"shm"`` degrades to ``"queue"``
            where shared memory is unavailable.  Ignored inline.
        ring_bytes: per-direction slab ring capacity (shm only);
            oversized slabs fall back to the queue path.
    """

    name = "sharded service"

    def __init__(
        self,
        root: str | os.PathLike[str],
        config: GeometricFileConfig | MultiFileConfig,
        *,
        shards: int = 4,
        kind: str = "geometric",
        device: DeviceSpec | None = None,
        pool: str = "process",
        partition: str = "hash",
        queue_depth: int = 8,
        checkpoint_batches: int = 8,
        seed: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
        start_method: str | None = None,
        ipc: str = "shm",
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if pool not in ("process", "inline"):
            raise ValueError(f"unknown pool kind {pool!r}")
        self.root = os.fspath(root)
        self.shards = shards
        self.kind = kind
        self.config = config
        self.timeout = timeout
        device = device or default_device_spec(kind, config)
        self.specs = [
            ShardSpec(
                shard_id=i,
                directory=shard_directory(self.root, i),
                kind=kind,
                config=config,
                device=device,
                seed=(seed if seed is None else seed + i),
                checkpoint_batches=checkpoint_batches,
            )
            for i in range(shards)
        ]
        self._partitioner = make_partitioner(partition, shards)
        # Non-uniform shard laws reply with key-ranked samples; the
        # merge is then a global top-k by key, not the hypergeometric
        # allocation (ShardSpec has already vetted the law).
        self._keyed_merge = getattr(config, "law", "uniform") != "uniform"
        self._merge_rng = np.random.default_rng(
            np.random.SeedSequence([(seed or 0) & 0xFFFFFFFF, 0x4D]))
        # Per-shard: journal of unacknowledged journaled messages,
        # next sequence number, and last checkpoint-acked sequence.
        self._journal: dict[int, list[tuple]] = {i: [] for i in range(shards)}
        self._next_seq = {i: 1 for i in range(shards)}
        self._acked = {i: 0 for i in range(shards)}
        self._offered = 0
        self._seed = seed
        self._hot = None
        self._token = 0
        self.recoveries = 0
        self.backpressure_stalls = 0
        self.last_recovery_seconds = 0.0
        self._closed = False
        # Observability hooks (service-level).
        self._registry = None
        self._trace = None
        self._obs_name = self.name
        self._event_counters: dict = {}
        self._ipc_gauges = None
        if pool == "inline":
            self._pool: InlinePool | ProcessPool = InlinePool(self.specs)
        else:
            self._pool = ProcessPool(self.specs, queue_depth=queue_depth,
                                     start_method=start_method, ipc=ipc,
                                     ring_bytes=ring_bytes)
        for shard_id in range(shards):
            self._await_ready(shard_id)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ShardedReservoir":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker gracefully (final checkpoint each), then
        tear the pool down.  Dead shards are recovered first so their
        journaled batches reach disk."""
        if self._closed:
            return
        for shard_id in range(self.shards):
            try:
                if not self._pool.alive(shard_id):
                    self._recover(shard_id)
                self._pool.send(shard_id, ("stop",))
                self._collect(shard_id, "stopped")
            except (ShardDead, TimeoutError):
                # Died during shutdown: its checkpoint plus journal
                # replay on the next open still bound the loss to the
                # final unjournaled nothing -- the journal only drops
                # on ack, and we are abandoning the respawn on purpose.
                pass
        self._pool.close()
        self._closed = True

    # -- ingestion ----------------------------------------------------------

    def offer(self, record: Record | None) -> None:
        """Present one stream record (prefer :meth:`offer_batch`)."""
        self.offer_batch([record])

    def offer_batch(self, records) -> int:
        """Partition one batch across the shards and enqueue it.

        The canonical batch verb of the unified
        :class:`~repro.core.protocols.Reservoir` protocol.  Accepts a
        :class:`~repro.storage.recordbatch.RecordBatch` or any
        sequence of records; returns the number of records enqueued.
        Blocks while any target shard's inbox is full (backpressure):
        the stream producer slows to the speed of the slowest shard
        rather than buffering unboundedly.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if isinstance(records, RecordBatch):
            if records.schema != RecordSchema(self.config.record_size):
                # Rejected up front, before the journal sees it: a
                # journaled batch the shards cannot apply would be
                # replayed forever by crash recovery.  (Weighted input
                # is unsupported service-wide -- weighted shard laws
                # derive weights from record fields via law_params.)
                raise ValueError(
                    f"batch schema {records.schema.record_size} B"
                    f"{' weighted' if records.schema.weighted else ''} "
                    f"does not match the service's record layout "
                    f"({self.config.record_size} B, unweighted)")
            if self._hot is not None:
                self._hot.observe_batch(records)
            if self._pool.supports_batches:
                # Columnar scatter: vectorised routing, sub-batches stay
                # slabs end to end (zero-copy on shm pools, no pickling
                # inline).  Routing and ingestion are bit-exact with the
                # decoded list path below.
                parts = self._partitioner.split_batch(records)
                for shard_id, part in enumerate(parts):
                    if len(part):
                        self._post(shard_id, ("batch", None, part))
                self._offered += len(records)
                return len(records)
            records = list(records)
        else:
            if not isinstance(records, (list, tuple)):
                records = list(records)
            if self._hot is not None:
                # Fed *before* partitioning: the supervisor-side cache
                # over the union stream is exactly the hypergeometric
                # merge of per-shard caches, with the merge pre-paid.
                self._hot.observe_many(records)
        parts = self._partitioner.split(records)
        for shard_id, part in enumerate(parts):
            if part:
                self._post(shard_id, ("batch", None, part))
        self._offered += len(records)
        return len(records)

    def offer_many(self, records: Sequence[Record | None]) -> int:
        """Deprecated alias for :meth:`offer_batch`."""
        warn_deprecated("ShardedReservoir.offer_many", "offer_batch")
        return self.offer_batch(records)

    def ingest(self, n: int) -> None:
        """Count-only ingestion, split evenly across shards."""
        if self._closed:
            raise RuntimeError("service is closed")
        if n < 0:
            raise ValueError("cannot ingest a negative count")
        if self._keyed_merge:
            raise TypeError(
                "count-only ingest() is uniform-law only; a weighted "
                "shard law needs every record's weight")
        if self._hot is not None:
            self._hot.observe_count(n)
        for shard_id, count in enumerate(self._partitioner.split_count(n)):
            if count:
                self._post(shard_id, ("ingest", None, count))
        self._offered += n

    # -- queries ------------------------------------------------------------

    def _resolve_k(self, k: int | None) -> int:
        """Protocol default: ``k=None`` means one shard's capacity --
        the largest merged draw that is always answerable (the
        hypergeometric allocation can land the whole draw on one
        shard, so no larger ``k`` is safe under every partition)."""
        return self.config.capacity if k is None else k

    def _merge_samples(self, payloads: list[dict], k: int) -> list[Record]:
        """Law-appropriate merge of shard ``sample`` replies: the
        hypergeometric allocation for uniform shards, the global
        top-``k``-by-key rank for keyed (A-ExpJ) shards."""
        if self._keyed_merge:
            return merge_weighted_samples(self._merge_rng, payloads, k)
        return merge_shard_samples(self._merge_rng, payloads, k)

    def sample(self, k: int | None = None) -> list[Record]:
        """A uniform random ``k``-subset of the whole union stream.

        Snapshot semantics: the sample marker is enqueued behind every
        batch offered so far, so the draw covers exactly the records
        presented before this call -- a consistent cut at the
        service's current flush frontier, regardless of how far
        individual shards have physically flushed.

        ``k`` must not exceed any single shard's current reservoir
        size (the hypergeometric allocation can land up to ``k`` on
        one shard); with balanced partitions that means roughly
        ``k <= capacity_per_shard`` -- which is also the ``k=None``
        default.
        """
        k = self._resolve_k(k)
        payloads = self._broadcast_query("sample", k)
        merged = self._merge_samples(payloads, k)
        self._emit("merged_query", k=k,
                   seen=sum(p["seen"] for p in payloads))
        return merged

    def snapshot(self, k: int | None = None) -> tuple[list[Record], int]:
        """Like :meth:`sample`, also returning the union ``seen`` total
        (the population size AQP estimators scale by)."""
        k = self._resolve_k(k)
        payloads = self._broadcast_query("sample", k)
        merged = self._merge_samples(payloads, k)
        seen = sum(p["seen"] for p in payloads)
        self._emit("merged_query", k=k, seen=seen)
        return merged, seen

    def sample_batch(self, k: int | None = None) -> RecordBatch:
        """:meth:`sample` as one :class:`RecordBatch` (columnar merge).

        Same snapshot semantics and the same merge-RNG consumption as
        :meth:`sample`; shard replies are encoded once into the shared
        record dtype and merged without per-record Python work.
        """
        k = self._resolve_k(k)
        payloads = self._broadcast_query("sample", k)
        merged = self._merge_batches(payloads, k)
        self._emit("merged_query", k=k,
                   seen=sum(p["seen"] for p in payloads))
        return merged

    def _merge_batches(self, payloads: list[dict], k: int) -> RecordBatch:
        if self._keyed_merge:
            merged = merge_weighted_samples(self._merge_rng, payloads, k)
            return RecordBatch.from_records(self._schema, merged)
        return merge_shard_batches(self._merge_rng, payloads, k,
                                   self._schema)

    def snapshot_batch(self, k: int | None = None) -> tuple[RecordBatch, int]:
        """Like :meth:`sample_batch`, also returning the union ``seen``."""
        k = self._resolve_k(k)
        payloads = self._broadcast_query("sample", k)
        merged = self._merge_batches(payloads, k)
        seen = sum(p["seen"] for p in payloads)
        self._emit("merged_query", k=k, seen=seen)
        return merged, seen

    def query_batch(self, k: int | None = None) -> BatchQuery:
        """A :class:`~repro.estimate.BatchQuery` over a fresh merged
        ``k``-sample, scaled by the union ``seen`` count -- columnar
        AQP (filter / avg / sum / count) in a handful of array
        reductions."""
        batch, seen = self.snapshot_batch(k)
        return BatchQuery(batch, seen)

    @property
    def _schema(self) -> RecordSchema:
        return RecordSchema(self.config.record_size)

    def stats(self) -> ReservoirStats:
        """Aggregated service snapshot; see
        :func:`repro.obs.aggregate_stats` for counter semantics
        (sums over shards, ``clock`` = slowest shard)."""
        payloads = self._broadcast_query("stats")
        shard_stats = [stats_from_dict(p["stats"]) for p in payloads]
        self._update_ipc_gauges()
        return aggregate_stats(
            shard_stats, name=self._obs_name,
            extra={
                "recoveries": self.recoveries,
                "backpressure_stalls": self.backpressure_stalls,
                "journal_depth": sum(len(j) for j in
                                     self._journal.values()),
                "ipc": self.ipc_stats(),
            },
        )

    def ipc_stats(self) -> dict:
        """Transport counters: zero-copy volume, fallbacks, measured
        waits.  All zero for inline pools (no transport)."""
        pool = self._pool
        return {
            "transport": pool.ipc,
            "zero_copy_bytes": pool.zero_copy_bytes,
            "fallback_slabs": pool.fallback_slabs,
            "ring_stalls": pool.ring_stalls,
            "dropped_replies": pool.dropped_replies,
            "send_wait_seconds": round(pool.send_wait_seconds, 6),
            "recv_wait_seconds": round(pool.recv_wait_seconds, 6),
            "ring_depth_bytes": sum(
                pool.ring_depth(shard_id)
                for shard_id in range(self.shards)),
        }

    def shard_stats(self) -> list[ReservoirStats]:
        """Per-shard snapshots, in shard order."""
        return [stats_from_dict(p["stats"])
                for p in self._broadcast_query("stats")]

    # -- AQP over the merged sample -----------------------------------------
    #
    # Thin shims over the shared repro.estimate.SnapshotEstimator (the
    # three near-identical per-front-end loops were deduplicated there);
    # signatures are preserved exactly.

    def estimate_sum(self, k: int, *,
                     value: Callable[[Record], float] | None = None,
                     predicate: Callable[[Record], bool] | None = None,
                     ) -> Estimate:
        """Estimate SUM(value) over the *entire stream* with CLT error.

        Draws a fresh uniform ``k``-sample and scales by the union
        ``seen`` count; records failing ``predicate`` contribute 0.
        """
        return SnapshotEstimator(*self.snapshot(k)).sum(
            value=value, predicate=predicate)

    def estimate_count(self, k: int,
                       predicate: Callable[[Record], bool]) -> Estimate:
        """Estimate COUNT of stream records satisfying ``predicate``."""
        return SnapshotEstimator(*self.snapshot(k)).count(predicate)

    def estimate_avg(self, k: int, *,
                     value: Callable[[Record], float] | None = None,
                     predicate: Callable[[Record], bool] | None = None,
                     ) -> Estimate:
        """Estimate AVG(value) over stream records matching ``predicate``."""
        records, _ = self.snapshot(k)
        return SnapshotEstimator(records).avg(value=value,
                                              predicate=predicate)

    # -- hot AQP subsample ---------------------------------------------------

    def enable_aqp_cache(self, budget: int = 4096, *,
                         seed: int | None = None):
        """Attach (or return) the supervisor-side AQP hot subsample.

        Fed in :meth:`offer_batch` *before* partitioning, so the cache
        is a uniform sub-reservoir of the union stream -- equivalent to
        maintaining per-shard hot caches and merging them through the
        hypergeometric allocation, with the merge pre-paid at ingest.
        Count-only :meth:`ingest` marks it incoherent; the planner's
        next escalation (a merged :meth:`snapshot_batch` draw)
        re-seeds it.
        """
        if self._keyed_merge:
            raise TypeError(
                "the hot AQP subsample is a uniform sub-reservoir of "
                "the union stream; a service running law="
                f"{self.config.law!r} cannot keep it coherent")
        if self._hot is None:
            from ..estimate.planner import HotSubsample
            base = self._seed if seed is None else seed
            self._hot = HotSubsample(self._schema, budget,
                                     seed=0 if base is None else base,
                                     stream_seen=self._offered)
        return self._hot

    @property
    def aqp_cache(self):
        """The attached hot subsample, or ``None``."""
        return self._hot

    # -- durability and chaos ------------------------------------------------

    def checkpoint(self) -> None:
        """Force every shard to checkpoint now; prunes the journals.

        Waits until each shard has acknowledged a checkpoint covering
        every batch posted before this call, so on return the journals
        are empty and the on-disk state is current.
        """
        for shard_id in range(self.shards):
            target = self._next_seq[shard_id] - 1
            while True:
                try:
                    if not self._pool.alive(shard_id):
                        raise ShardDead(shard_id)
                    self._pool.send(shard_id, ("checkpoint",))
                    while self._acked[shard_id] < target:
                        self._collect(shard_id, "checkpointed")
                    break
                except ShardDead:
                    self._recover(shard_id)

    def kill_shard(self, shard_id: int, *, hard: bool = False) -> None:
        """Chaos hook: crash one worker without checkpointing.

        ``hard=True`` kills from outside (SIGKILL for processes);
        otherwise the worker is told to die mid-protocol.  Either way
        no goodbye checkpoint is written -- recovery happens lazily on
        the next operation that touches the shard, or immediately via
        :meth:`recover`.
        """
        self._check_shard(shard_id)
        if hard:
            self._pool.kill(shard_id)
            return
        try:
            self._pool.send(shard_id, ("crash",))
        except ShardDead:
            pass  # inline pools die synchronously on the command

    def recover(self) -> int:
        """Respawn every dead shard now; returns how many were revived."""
        revived = 0
        for shard_id in range(self.shards):
            if not self._pool.alive(shard_id):
                self._recover(shard_id)
                revived += 1
        return revived

    @property
    def capacity(self) -> int:
        """Total service capacity (sum of shard reservoir sizes)."""
        return self.config.capacity * self.shards

    @property
    def journal_depth(self) -> int:
        """Unacknowledged journaled messages across all shards."""
        return sum(len(j) for j in self._journal.values())

    # -- observability ------------------------------------------------------

    def instrument(self, registry, trace=None, *, name: str | None = None
                   ) -> None:
        """Attach service-level observers (recoveries, merged queries,
        backpressure); workers keep their own in-process accounting,
        surfaced through :meth:`stats`."""
        self._obs_name = name if name is not None else self.name
        self._registry = registry
        self._trace = trace
        self._event_counters = {}
        if registry is not None:
            self._ipc_gauges = (
                registry.gauge("ipc.ring_depth", structure=self._obs_name),
                registry.gauge("ipc.zero_copy_bytes",
                               structure=self._obs_name),
            )
        # Per-slab trace events are emitted by the pool itself (it is
        # the only layer that sees individual slabs move).
        if trace is not None and getattr(self._pool, "ipc", None) == "shm":
            self._pool.trace_hook = (
                lambda **fields: self._emit("ipc_slab", **fields))

    def _update_ipc_gauges(self) -> None:
        if self._ipc_gauges is None:
            return
        depth_gauge, bytes_gauge = self._ipc_gauges
        depth_gauge.set(sum(self._pool.ring_depth(shard_id)
                            for shard_id in range(self.shards)))
        bytes_gauge.set(self._pool.zero_copy_bytes)

    def _emit(self, kind: str, **fields) -> None:
        if self._registry is not None:
            counter = self._event_counters.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    f"events.{kind}", structure=self._obs_name)
                self._event_counters[kind] = counter
            counter.inc()
        if self._trace is not None:
            self._trace.emit(kind, self._obs_name, 0.0, **fields)

    # -- internals ----------------------------------------------------------

    def _check_shard(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.shards:
            raise ValueError(f"no shard {shard_id} in a "
                             f"{self.shards}-shard service")

    def _next_token(self) -> int:
        self._token += 1
        return self._token

    def _post(self, shard_id: int, message: tuple) -> None:
        """Journal one batch/ingest message, then deliver it.

        The journal append happens first: once a message carries a
        sequence number it exists durably enough to survive any worker
        crash (the journal is only dropped on checkpoint ack).
        """
        seq = self._next_seq[shard_id]
        self._next_seq[shard_id] = seq + 1
        message = (message[0], seq, message[2])
        self._journal[shard_id].append(message)
        while True:
            try:
                if not self._pool.alive(shard_id):
                    raise ShardDead(shard_id)
                stalls = self._pool.send(shard_id, message)
                if stalls:
                    self.backpressure_stalls += stalls
                    self._emit("backpressure", shard=shard_id,
                               stalls=stalls)
                self._absorb_acks(shard_id)
                return
            except ShardDead:
                # _recover replays the journal -- including this
                # message -- so recovery IS the delivery.
                self._recover(shard_id)
                return

    def _absorb_acks(self, shard_id: int) -> None:
        """Non-blocking harvest of checkpoint acks to prune the journal."""
        for reply in self._pool.drain(shard_id):
            self._handle_ack(shard_id, reply)

    def _handle_ack(self, shard_id: int, reply: tuple) -> bool:
        """Process one out-of-band reply; True if it was consumed."""
        if reply[0] == "checkpointed":
            self._prune(shard_id, reply[2])
            return True
        if reply[0] == "error":
            raise RuntimeError(
                f"shard {shard_id} reported: {reply[2]}")
        return False

    def _prune(self, shard_id: int, acked_seq: int) -> None:
        if acked_seq <= self._acked[shard_id]:
            return
        self._acked[shard_id] = acked_seq
        journal = self._journal[shard_id]
        keep = 0
        while keep < len(journal) and journal[keep][1] <= acked_seq:
            keep += 1
        del journal[:keep]

    def _await_ready(self, shard_id: int) -> int:
        reply = self._collect(shard_id, "ready")
        restored_seq = reply[2]
        # Anything the restored checkpoint already covers must never be
        # replayed; anything after it must be.  On a fresh service both
        # sides are empty and this is a no-op.  A service *reopened* on
        # an existing root continues numbering after the restored
        # sequence (the worker rejects non-monotonic sequences).
        if restored_seq >= self._next_seq[shard_id]:
            self._next_seq[shard_id] = restored_seq + 1
        self._prune(shard_id, restored_seq)
        return restored_seq

    def _collect(self, shard_id: int, want: str,
                 token: int | None = None) -> tuple:
        """Receive until a reply of kind ``want`` (matching ``token`` if
        given) arrives; out-of-band acks are absorbed along the way."""
        while True:
            reply = self._pool.recv(shard_id, timeout=self.timeout)
            if reply[0] == want and (token is None or reply[2] == token):
                if reply[0] == "checkpointed":
                    self._prune(shard_id, reply[2])
                return reply
            if self._handle_ack(shard_id, reply):
                continue
            if reply[0] in ("sample", "stats"):
                continue  # stale query reply from an abandoned attempt
            raise RuntimeError(
                f"shard {shard_id}: unexpected reply {reply[0]!r} "
                f"while waiting for {want!r}")

    def _recover(self, shard_id: int) -> None:
        """Respawn a dead shard from its checkpoint and replay the gap."""
        started = time.perf_counter()
        self.recoveries += 1
        # Late acks may sit in the dead worker's outbox (a checkpoint
        # it finished just before dying): harvest them first so the
        # replay below starts from the newest covered sequence.
        for reply in self._pool.drain(shard_id):
            if reply[0] in ("checkpointed", "ready"):
                self._prune(shard_id, reply[2])
        while True:
            self._pool.respawn(shard_id)
            try:
                restored_seq = self._await_ready(shard_id)
                for message in list(self._journal[shard_id]):
                    if message[1] > restored_seq:
                        self._pool.send(shard_id, message)
                self._absorb_acks(shard_id)
                break
            except ShardDead:  # pragma: no cover - crash during replay
                continue
        self.last_recovery_seconds = time.perf_counter() - started
        self._emit("shard_recovery", shard=shard_id,
                   replayed=len(self._journal[shard_id]),
                   seconds=self.last_recovery_seconds)

    def _broadcast_query(self, kind: str, *args) -> list[dict]:
        """Parallel scatter-gather: ask every shard, take answers as
        they land, return payloads in shard order.

        Markers are enqueued behind all previously offered batches
        (FIFO per shard), which is what makes the merged answer a
        consistent snapshot.  All shards draw *concurrently*; the
        gather loop polls round-robin with the pool's non-blocking
        ``try_recv`` and consumes whichever shard finishes first, so
        the fan-out's wall time is the slowest shard, not the sum.
        Payloads are ordered by shard id before the merge, keeping the
        merge RNG consumption identical to a sequential gather.  A
        shard dying mid-query is recovered and re-asked with a fresh
        token.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        tokens: dict[int, int] = {}
        for shard_id in range(self.shards):
            tokens[shard_id] = self._send_query(shard_id, kind, args)
        payloads: dict[int, dict] = {}
        pending = set(range(self.shards))
        deadline = {shard_id: time.monotonic() + self.timeout
                    for shard_id in pending}
        wait = _AdaptiveWait()
        while pending:
            progressed = False
            for shard_id in sorted(pending):
                try:
                    reply = self._pool.try_recv(shard_id)
                except ShardDead:
                    self._recover(shard_id)
                    tokens[shard_id] = self._send_query(shard_id, kind,
                                                        args)
                    deadline[shard_id] = time.monotonic() + self.timeout
                    progressed = True
                    continue
                if reply is None:
                    if time.monotonic() > deadline[shard_id]:
                        raise TimeoutError(
                            f"shard {shard_id} sent no {kind!r} reply "
                            f"within {self.timeout} seconds")
                    continue
                progressed = True
                deadline[shard_id] = time.monotonic() + self.timeout
                if reply[0] == kind and reply[2] == tokens[shard_id]:
                    payloads[shard_id] = reply[3]
                    pending.discard(shard_id)
                elif self._handle_ack(shard_id, reply):
                    pass
                elif reply[0] in ("sample", "stats"):
                    pass  # stale reply from an abandoned attempt
                else:
                    raise RuntimeError(
                        f"shard {shard_id}: unexpected reply "
                        f"{reply[0]!r} while waiting for {kind!r}")
            if progressed:
                wait = _AdaptiveWait()
            elif pending:
                wait.sleep()
        return [payloads[shard_id] for shard_id in range(self.shards)]

    def _send_query(self, shard_id: int, kind: str, args: tuple) -> int:
        while True:
            token = self._next_token()
            try:
                if not self._pool.alive(shard_id):
                    raise ShardDead(shard_id)
                self._pool.send(shard_id, (kind, token, *args))
                return token
            except ShardDead:
                self._recover(shard_id)
