"""Shared-memory slab transport: the sharded service's data plane.

The queue transport pickles every record batch and every query reply --
at 4 shards that serialization is the dominant cross-process cost (see
docs/SERVICE.md "The IPC plane").  This module provides the zero-copy
alternative: a :class:`SlabRing` is a fixed-capacity single-producer /
single-consumer byte ring living in one
:mod:`multiprocessing.shared_memory` segment, over which columnar
:class:`~repro.storage.recordbatch.RecordBatch` slabs travel as
structured-array views -- one vectorised copy into the ring on send,
one view (plus one defensive copy) out on receive, and no pickling in
between.

Framing.  Each slab is one contiguous frame::

    +--------- 32 B header ---------+----- payload -----+- trailer -+
    | magic kind flags seq          | n_bytes raw bytes | seq^STAMP |
    | n_records n_bytes checksum    |                   |  (8 B)    |
    +-------------------------------+-------------------+-----------+

rounded up to a 64-byte boundary.  A frame that would straddle the end
of the ring is preceded by a ``PAD`` frame so payloads stay contiguous
(that is what makes the receive side a single ``np.frombuffer`` view).
The header carries its own checksum and the trailer repeats the
sequence word, so a frame written by a worker that died mid-copy is
*detected* (:class:`TornSlabError`) rather than decoded as garbage --
the supervisor's journal replay, not the ring, is the durability story.

Publication.  ``head`` (bytes consumed) and ``tail`` (bytes produced)
are monotonically increasing 64-bit counters in the segment's control
area.  The producer bumps ``tail`` only after the full frame is
written; the consumer bumps ``head`` only after it has copied the
payload out.  Each side writes one counter and reads the other --
aligned 8-byte stores, the classic SPSC contract -- and in the sharded
service every data frame is paired with a tiny stub message on the
existing (locking, therefore fencing) queue, so a received stub always
implies a published frame.

The ring is a *transport*, not a store: on worker death the supervisor
discards both rings along with the queues and replays its journal, so
nothing in shared memory is ever authoritative.
"""

from __future__ import annotations

import struct
import zlib

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    HAVE_SHM = False

#: First header word of every frame; anything else is a torn write.
SLAB_MAGIC = 0x51AB_C0DE

#: Trailer stamp mixed with the frame's sequence word.
SLAB_STAMP = 0xA5A5_5A5A_C0FF_EE00

#: Frame kinds.
KIND_DATA = 1
KIND_PAD = 2

#: Frame flags.
FLAG_WEIGHTED = 1  # payload rows follow the weighted record dtype

#: ``<`` magic(u32) kind(u16) flags(u16) seq(u64) n_records(u32)
#: n_bytes(u32) checksum(u32) reserved(u32) -- exactly 32 bytes.
_HEADER = struct.Struct("<IHHQIIII")
HEADER_BYTES = _HEADER.size
TRAILER_BYTES = 8
_TRAILER = struct.Struct("<Q")

#: Frame sizes are rounded up to this alignment.  It must exceed
#: ``HEADER_BYTES + TRAILER_BYTES`` (40): frame starts then land on
#: multiples of the alignment, so the residue at the wrap point is
#: itself a multiple -- always big enough to hold a valid PAD frame
#: (with 32 the residue could be exactly 32, too small to frame).
FRAME_ALIGN = 64

#: Control area: head(u64) tail(u64) capacity(u64) reserved(u64).
_CONTROL = struct.Struct("<QQQQ")
CONTROL_BYTES = 64  # padded to its own cache line

DEFAULT_RING_BYTES = 8 << 20


class TornSlabError(RuntimeError):
    """A frame failed validation: torn write or corrupted ring."""


def _header_checksum(kind: int, flags: int, seq: int, n_records: int,
                     n_bytes: int) -> int:
    packed = struct.pack("<IHHQII", SLAB_MAGIC, kind, flags, seq,
                         n_records, n_bytes)
    return zlib.crc32(packed) & 0xFFFFFFFF


def encode_header(kind: int, flags: int, seq: int, n_records: int,
                  n_bytes: int) -> bytes:
    """Pack one validated 32-byte frame header."""
    if not 0 <= kind <= 0xFFFF:
        raise ValueError(f"kind {kind} out of range")
    if not 0 <= flags <= 0xFFFF:
        raise ValueError(f"flags {flags} out of range")
    if not 0 <= seq < 2 ** 64:
        raise ValueError(f"seq {seq} out of range")
    if not 0 <= n_records <= 0xFFFFFFFF:
        raise ValueError(f"n_records {n_records} out of range")
    if not 0 <= n_bytes <= 0xFFFFFFFF:
        raise ValueError(f"n_bytes {n_bytes} out of range")
    checksum = _header_checksum(kind, flags, seq, n_records, n_bytes)
    return _HEADER.pack(SLAB_MAGIC, kind, flags, seq, n_records, n_bytes,
                        checksum, 0)


def decode_header(buf) -> tuple[int, int, int, int, int]:
    """Unpack and validate a frame header.

    Returns ``(kind, flags, seq, n_records, n_bytes)``; raises
    :class:`TornSlabError` on a bad magic word or checksum mismatch
    (the two signatures of a torn or misaligned write).
    """
    if len(buf) < HEADER_BYTES:
        raise TornSlabError(
            f"frame header truncated: {len(buf)} of {HEADER_BYTES} bytes")
    magic, kind, flags, seq, n_records, n_bytes, checksum, _ = (
        _HEADER.unpack_from(buf))
    if magic != SLAB_MAGIC:
        raise TornSlabError(f"bad slab magic 0x{magic:08X}")
    if checksum != _header_checksum(kind, flags, seq, n_records, n_bytes):
        raise TornSlabError(
            f"slab header checksum mismatch at seq {seq}")
    return kind, flags, seq, n_records, n_bytes


def encode_trailer(seq: int) -> bytes:
    """The 8-byte commit stamp written after the payload."""
    return _TRAILER.pack((seq ^ SLAB_STAMP) & 0xFFFFFFFFFFFFFFFF)


def check_trailer(buf, seq: int) -> None:
    """Validate the commit stamp; raises :class:`TornSlabError`."""
    (stamp,) = _TRAILER.unpack_from(buf)
    if stamp != (seq ^ SLAB_STAMP) & 0xFFFFFFFFFFFFFFFF:
        raise TornSlabError(
            f"slab trailer stamp mismatch at seq {seq}: the frame's "
            "payload was not fully written (torn write)")


def frame_bytes(n_bytes: int) -> int:
    """Total ring bytes one frame of ``n_bytes`` payload occupies."""
    raw = HEADER_BYTES + n_bytes + TRAILER_BYTES
    return (raw + FRAME_ALIGN - 1) // FRAME_ALIGN * FRAME_ALIGN


class Slab:
    """One received frame: metadata plus a zero-copy payload view.

    The view aliases ring memory; it is valid only until
    :meth:`SlabRing.pop_done` releases the slot.  Copy (or absorb) the
    payload before releasing.
    """

    __slots__ = ("kind", "flags", "seq", "n_records", "view", "_frame")

    def __init__(self, kind: int, flags: int, seq: int, n_records: int,
                 view, frame: int) -> None:
        self.kind = kind
        self.flags = flags
        self.seq = seq
        self.n_records = n_records
        self.view = view
        self._frame = frame

    @property
    def n_bytes(self) -> int:
        return len(self.view)

    @property
    def weighted(self) -> bool:
        return bool(self.flags & FLAG_WEIGHTED)


class SlabRing:
    """A fixed-capacity SPSC slab ring in one shared-memory segment.

    Exactly one producer process calls :meth:`try_push`; exactly one
    consumer process calls :meth:`try_pop` / :meth:`pop_done`.  The
    creating side owns the segment's lifetime (:meth:`unlink`);
    attached sides only :meth:`close`.

    Args:
        name: attach to an existing ring by segment name; ``None``
            creates a fresh one.
        capacity: data-area bytes for a fresh ring (rounded up to the
            frame alignment); ignored when attaching (the control area
            records it).
        untrack: attach without letting *this* process's
            :mod:`multiprocessing.resource_tracker` own the segment --
            the right setting for every attacher that does not own the
            ring's lifetime (shard workers; the creator unlinks).  On
            CPython 3.13+ this skips tracker registration entirely
            (``track=False``); older interpreters fall back to a
            conservative unregister that only fires when the process
            runs a tracker of its own (see :func:`_attach_untracked`).
    """

    def __init__(self, name: str | None = None, *,
                 capacity: int = DEFAULT_RING_BYTES,
                 untrack: bool = False) -> None:
        if not HAVE_SHM:  # pragma: no cover - platform guard
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if name is None:
            capacity = max(FRAME_ALIGN,
                           (capacity + FRAME_ALIGN - 1)
                           // FRAME_ALIGN * FRAME_ALIGN)
            self._shm = _shared_memory.SharedMemory(
                create=True, size=CONTROL_BYTES + capacity)
            self.owner = True
            self.capacity = capacity
            _CONTROL.pack_into(self._shm.buf, 0, 0, 0, capacity, 0)
        else:
            self._shm = (_attach_untracked(name) if untrack
                         else _shared_memory.SharedMemory(name=name))
            self.owner = False
            _, _, capacity, _ = _CONTROL.unpack_from(self._shm.buf, 0)
            self.capacity = int(capacity)
        self._buf = self._shm.buf
        self._data = self._shm.buf[CONTROL_BYTES:CONTROL_BYTES
                                   + self.capacity]
        self._closed = False
        self._pending = None

    # -- control words ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    def _load(self, offset: int) -> int:
        (value,) = struct.unpack_from("<Q", self._buf, offset)
        return value

    def _store(self, offset: int, value: int) -> None:
        struct.pack_into("<Q", self._buf, offset, value)

    @property
    def head(self) -> int:
        return self._load(0)

    @property
    def tail(self) -> int:
        return self._load(8)

    @property
    def used_bytes(self) -> int:
        return self.tail - self.head

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def fits(self, n_bytes: int) -> bool:
        """Whether a payload of ``n_bytes`` can *ever* ride this ring
        (a frame needs contiguous room, so the worst case -- landing
        just before the wrap point -- must still fit after a pad)."""
        return 2 * frame_bytes(n_bytes) <= self.capacity

    # -- producer side ------------------------------------------------------

    def try_reserve(self, n_bytes: int):
        """Reserve a frame's payload region; ``None`` when full now.

        Two-phase producer API: the caller writes the payload directly
        into the returned writable view (e.g. via
        :meth:`~repro.storage.recordbatch.RecordBatch.into_shared`),
        then :meth:`commit`\\ s the frame.  Raises :class:`ValueError`
        for payloads the ring can never hold.
        """
        if self._pending is not None:
            raise RuntimeError("a reserved frame is awaiting commit")
        need = frame_bytes(n_bytes)
        if 2 * need > self.capacity:
            raise ValueError(
                f"slab of {n_bytes} B can never fit a "
                f"{self.capacity} B ring")
        head, tail = self.head, self.tail
        free = self.capacity - (tail - head)
        pos = tail % self.capacity
        rem = self.capacity - pos
        pad = rem if rem < need else 0
        if pad + need > free:
            return None
        if pad:
            pos = 0
        view = self._data[pos + HEADER_BYTES:pos + HEADER_BYTES + n_bytes]
        self._pending = (pos, pad, need, view)
        return view

    def commit(self, kind: int, seq: int, *, flags: int = 0,
               n_records: int = 0, n_bytes: int = 0) -> None:
        """Publish the frame reserved by :meth:`try_reserve`."""
        if self._pending is None:
            raise RuntimeError("commit without a reserved frame")
        pos, pad, need, view = self._pending
        self._pending = None
        # The reservation's view has served its purpose; releasing it
        # here keeps the segment unmappable-free even if the caller
        # holds on to the (now invalid) reference.
        view.release()
        if frame_bytes(n_bytes) != need:
            raise ValueError("committed size differs from reservation")
        tail = self.tail
        if pad:
            pad_payload = pad - HEADER_BYTES - TRAILER_BYTES
            self._write_frame(tail % self.capacity, KIND_PAD, 0, seq, 0,
                              pad_payload, None, pad)
        data = self._data
        data[pos:pos + HEADER_BYTES] = encode_header(
            kind, flags, seq, n_records, n_bytes)
        end = pos + HEADER_BYTES + n_bytes
        data[end:end + TRAILER_BYTES] = encode_trailer(seq)
        self._store(8, tail + pad + need)

    def abort(self) -> None:
        """Drop an uncommitted reservation (nothing was published)."""
        if self._pending is not None:
            self._pending[3].release()
            self._pending = None

    def try_push(self, kind: int, seq: int, payload, *, flags: int = 0,
                 n_records: int = 0) -> bool:
        """Write one frame; ``False`` when the ring lacks space now.

        ``payload`` is anything with the buffer protocol (bytes, a
        contiguous structured-array ``memoryview``); the copy into the
        ring is the send path's only data movement.  Raises
        :class:`ValueError` for a payload the ring can never hold --
        the caller's cue to fall back to the queue transport.
        """
        payload = memoryview(payload).cast("B")
        n_bytes = len(payload)
        need = frame_bytes(n_bytes)
        if 2 * need > self.capacity:
            raise ValueError(
                f"slab of {n_bytes} B can never fit a "
                f"{self.capacity} B ring")
        head, tail = self.head, self.tail
        free = self.capacity - (tail - head)
        pos = tail % self.capacity
        rem = self.capacity - pos
        pad = rem if rem < need else 0
        if pad + need > free:
            return False
        if pad:
            # A PAD frame fills the tail of the ring so the data frame
            # starts at offset 0 and stays contiguous.
            pad_payload = pad - HEADER_BYTES - TRAILER_BYTES
            self._write_frame(pos, KIND_PAD, 0, seq, 0, pad_payload,
                              None, pad)
            tail += pad
            pos = 0
        self._write_frame(pos, kind, flags, seq, n_records, n_bytes,
                          payload, need)
        self._store(8, tail + need)
        return True

    def _write_frame(self, pos: int, kind: int, flags: int, seq: int,
                     n_records: int, n_bytes: int, payload,
                     total: int) -> None:
        data = self._data
        data[pos:pos + HEADER_BYTES] = encode_header(
            kind, flags, seq, n_records, n_bytes)
        if payload is not None and n_bytes:
            data[pos + HEADER_BYTES:pos + HEADER_BYTES + n_bytes] = payload
        end = pos + HEADER_BYTES + n_bytes
        data[end:end + TRAILER_BYTES] = encode_trailer(seq)

    # -- consumer side ------------------------------------------------------

    def try_pop(self) -> Slab | None:
        """The next data frame, or ``None`` when the ring is empty.

        PAD frames are consumed transparently.  The returned
        :class:`Slab` holds a zero-copy view into the ring; call
        :meth:`pop_done` with it once the payload has been copied or
        absorbed.
        """
        while True:
            head, tail = self.head, self.tail
            if tail == head:
                return None
            pos = head % self.capacity
            header = bytes(self._data[pos:pos + HEADER_BYTES])
            kind, flags, seq, n_records, n_bytes = decode_header(header)
            total = frame_bytes(n_bytes)
            if pos + total > self.capacity:
                raise TornSlabError(
                    f"frame at offset {pos} overruns the ring "
                    f"({total} B frame, {self.capacity - pos} B left)")
            check_trailer(
                bytes(self._data[pos + HEADER_BYTES + n_bytes:
                                 pos + HEADER_BYTES + n_bytes
                                 + TRAILER_BYTES]),
                seq)
            if kind == KIND_PAD:
                self._store(0, head + total)
                continue
            view = self._data[pos + HEADER_BYTES:
                              pos + HEADER_BYTES + n_bytes]
            return Slab(kind, flags, seq, n_records, view, total)

    def pop_done(self, slab: Slab) -> None:
        """Release ``slab``'s ring slot (its view becomes invalid)."""
        slab.view.release()
        slab.view = None
        self._store(0, self.head + slab._frame)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the segment may live on)."""
        if self._closed:
            return
        self._closed = True
        self.abort()
        self._data.release()
        self._buf = None
        self._data = None
        try:
            self._shm.close()
        except BufferError:  # a Slab view is still alive somewhere;
            pass             # the segment unmaps at process exit instead

    def unlink(self) -> None:
        """Destroy the segment (creator side only; idempotent)."""
        self.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC ordering
        # Release the buffer views before SharedMemory.__del__ tries to
        # close the mapping (it raises BufferError otherwise).
        try:
            self.close()
        except Exception:
            pass


def _attach_untracked(name: str):
    """Attach to a segment without this process's tracker owning it.

    CPython 3.13+ supports ``track=False``: no registration happens at
    all, which is correct whether the process shares the creator's
    resource tracker or runs its own.  Older interpreters always
    register on attach; there the only lever is
    ``resource_tracker.unregister``, which is safe *only* when this
    process started a tracker of its own -- with a tracker inherited
    from the creator (fork children, and spawn children too: CPython
    hands the parent's tracker fd to ``spawn_main``), the registry
    entry is shared and deduplicated by name, so unregistering would
    strip the creator's leak-safety registration.  The pre-attach
    ``_fd`` probe below detects the never-started-here case; it reads
    a private CPython attribute, but only on the legacy fallback path.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - CPython < 3.13 fallback
        pass
    from multiprocessing import resource_tracker

    fresh_tracker = getattr(
        resource_tracker._resource_tracker, "_fd", None) is None
    shm = _shared_memory.SharedMemory(name=name)
    if fresh_tracker:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm
