"""Picklable per-shard construction: :class:`ShardSpec`.

A shard worker may live in another process (``multiprocessing``) or be
respawned after a crash, so everything needed to (re)build its
reservoir must be plain data: no live devices, no factory closures.
``ShardSpec`` is that data -- structure kind and config, a
:class:`~repro.storage.device.DeviceSpec`, the shard's private
directory, and its seed.  The worker calls :meth:`build` (fresh or
restore-or-create) or :meth:`restore` (checkpoint required) *inside its
own process*.

Directory layout, per shard::

    <root>/shard-00/checkpoint.json   the durable state (atomic rename)
    <root>/shard-00/device.bin        only for file-backed devices

The checkpoint is the single source of truth on recovery; devices carry
no authoritative state (see :mod:`repro.core.managed`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from ..core.geometric_file import GeometricFileConfig
from ..core.managed import ManagedSample
from ..core.multi import MultiFileConfig
from ..storage.device import DeviceSpec
from ..storage.records import RecordSchema

#: Structure kinds a shard may run.  Biased kinds are excluded: the
#: merged-query uniformity argument (docs/SERVICE.md) needs each shard
#: to hold a *uniform* sample of its partition.
SHARD_KINDS = ("geometric", "multi")

#: Non-uniform laws a shard may run.  A law qualifies when its samples
#: merge exactly across independent reservoirs by ranking a shared
#: per-record key (``SamplingLaw.mergeable_by_key``); A-ExpJ's
#: ``log(u)/w`` keys are such a ranking, ``wr``/``window`` have none.
MERGEABLE_LAWS = ("aexpj",)

CHECKPOINT_FILENAME = "checkpoint.json"


def shard_directory(root: str | os.PathLike[str], shard_id: int) -> str:
    """The private directory of shard ``shard_id`` under ``root``."""
    return os.path.join(os.fspath(root), f"shard-{shard_id:02d}")


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard worker needs to build (or rebuild) itself.

    Attributes:
        shard_id: 0-based shard index.
        directory: the shard's private directory (checkpoint + any
            file-backed device live here).
        kind: ``"geometric"`` or ``"multi"``.
        config: per-shard structure sizing.  With the uniform law,
            ``admission`` must be ``"uniform"`` -- the service's
            merged queries are only uniform over the union stream if
            each shard's reservoir is uniform over its partition.
            Non-uniform laws supersede admission and must come from
            :data:`MERGEABLE_LAWS` so merged queries stay exact.
        device: how to build the shard's block device (per-shard, so
            ``S`` shards model ``S`` independent spindles).
        seed: RNG seed for a freshly created structure; shards must use
            distinct seeds or they would evict in lockstep.
        checkpoint_batches: worker-side checkpoint cadence, counted in
            applied batch messages.  Smaller means less replay after a
            crash, at more checkpoint I/O.
    """

    shard_id: int
    directory: str
    kind: str
    config: GeometricFileConfig | MultiFileConfig
    device: DeviceSpec
    seed: int
    checkpoint_batches: int = 8

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if self.kind not in SHARD_KINDS:
            raise ValueError(
                f"shard kind {self.kind!r} not in {SHARD_KINDS}"
            )
        law = getattr(self.config, "law", "uniform")
        if law == "uniform":
            if self.config.admission != "uniform":
                raise ValueError(
                    "shards must run uniform admission; the merged "
                    "sample is only uniform over the union stream if "
                    "every shard holds a uniform sample of its partition"
                )
        elif law not in MERGEABLE_LAWS:
            raise ValueError(
                f"shards cannot run law {law!r}: merged queries need "
                "either the uniform hypergeometric merge or a "
                "key-rankable law (A-ExpJ); 'wr' and 'window' samples "
                "have no exact distributed merge"
            )
        if self.checkpoint_batches < 1:
            raise ValueError("checkpoint_batches must be at least 1")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, CHECKPOINT_FILENAME)

    @property
    def schema(self) -> RecordSchema:
        """The shard's record layout; slab transport en/decodes with it."""
        return RecordSchema(self.config.record_size)

    def _device_factory(self):
        directory = self.directory
        device = self.device
        return lambda: device.build(directory)

    def build(self) -> ManagedSample:
        """Restore-or-create the shard's managed reservoir.

        Automatic flush-cadence checkpointing is disabled
        (``checkpoint_every=0``): the worker checkpoints explicitly so
        every checkpoint carries the batch sequence number it covers
        (recovery correctness depends on that stamp).
        """
        os.makedirs(self.directory, exist_ok=True)
        return ManagedSample(
            self.checkpoint_path, self._device_factory(), self.config,
            kind=self.kind, checkpoint_every=0, seed=self.seed,
        )

    def restore(self) -> ManagedSample:
        """Reopen the shard strictly from its checkpoint (must exist)."""
        return ManagedSample.restore(
            self.checkpoint_path, self._device_factory(),
            kind=self.kind, checkpoint_every=0,
        )

    def with_directory(self, directory: str) -> "ShardSpec":
        """A copy rooted elsewhere (used by benchmarks and tests)."""
        return replace(self, directory=directory)
