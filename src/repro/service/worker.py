"""The per-shard worker: one :class:`~repro.core.managed.ManagedSample`
driven by a sequenced message protocol.

The same :class:`ShardWorker` runs in two harnesses: a child process
(:func:`worker_main`, the production path) and in-process inside
:class:`~repro.service.pool.InlinePool` (the deterministic tier-1 test
path).  All shard logic lives here so the two variants cannot drift.

Protocol (plain tuples -- picklable, versionless):

Commands, in order, on the shard's inbox:

* ``("batch", seq, records)`` -- apply one partitioned sub-batch via
  the ``offer_many`` hot path.
* ``("ingest", seq, count)`` -- count-only sub-batch (benchmarks).
* ``("sample", token, k)`` -- reply with up to ``k`` reservoir records,
  uniformly chosen *and uniformly ordered* (so any prefix is itself a
  uniform subset -- the merge layer relies on this).
* ``("stats", token)`` -- reply with the structure's ``stats()`` as a
  dict plus the applied sequence number.
* ``("checkpoint",)`` -- checkpoint now, regardless of cadence.
* ``("crash",)`` -- test/chaos hook: die instantly, no checkpoint.
* ``("stop",)`` -- final checkpoint, acknowledge, exit.

Replies on the outbox: ``("ready", shard_id, seq)`` once at start
(``seq`` is the sequence the restored checkpoint covers, 0 for fresh),
``("checkpointed", shard_id, seq)`` after every checkpoint,
``("sample", shard_id, token, payload)``, ``("stats", shard_id, token,
payload)``, ``("stopped", shard_id, seq)``, and ``("error", shard_id,
text)`` before an abnormal exit.

Two RNG streams per worker, deliberately separated: the reservoir's own
RNGs are consumed by ingestion *only*, so replaying journaled batches
after a crash continues the checkpointed RNG state bit-exactly;
queries draw from a dedicated query RNG that recovery never needs to
reproduce.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np

from ..storage.recordbatch import RecordBatch
from ..storage.records import Record
from .spec import ShardSpec

#: Sequence number meaning "nothing applied yet".
SEQ_NONE = 0

#: Key under which the covered batch sequence is stored in checkpoint
#: metadata (rides the checkpoint's atomic rename; see
#: :meth:`repro.core.managed.ManagedSample.checkpoint`).
SEQ_META_KEY = "seq"


class SimulatedCrash(Exception):
    """Raised by the ``crash`` command; harnesses turn it into death."""


class ShardWorker:
    """One shard's state machine; see the module docstring for protocol."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.managed = spec.build()
        self.seq = SEQ_NONE
        if self.managed.restored:
            meta = self.managed.checkpoint_meta or {}
            self.seq = int(meta.get(SEQ_META_KEY, SEQ_NONE))
        self._batches_since_checkpoint = 0
        # Query-only RNGs; never touched by ingestion or recovery.
        seed_seq = np.random.SeedSequence(
            [spec.seed & 0xFFFFFFFF, spec.shard_id, 0x51])
        self._query_rng = np.random.default_rng(seed_seq)
        self._query_py_rng = random.Random(
            ((spec.seed & 0xFFFFFFFF) << 24) ^ (spec.shard_id << 8) ^ 0x51)

    # -- message handling ---------------------------------------------------

    def handle(self, message: tuple) -> list[tuple]:
        """Apply one command; returns the replies to send."""
        kind = message[0]
        if kind == "batch":
            _, seq, records = message
            if isinstance(records, RecordBatch):
                # Columnar sub-batch (slab or pickled-batch transport);
                # bit-exact with offer_many over the same records, a
                # tested twin property of the reservoir.
                self.managed.offer_batch(records)
            else:
                self.managed.offer_many(records)
            return self._applied(seq)
        if kind == "ingest":
            _, seq, count = message
            self.managed.ingest(count)
            return self._applied(seq)
        if kind == "sample":
            _, token, k = message
            return [("sample", self.spec.shard_id, token,
                     self._draw_sample(k))]
        if kind == "stats":
            _, token = message
            payload = {"stats": self.managed.stats().as_dict(),
                       "seq": self.seq,
                       "disk_size": self.managed.structure.disk_size}
            return [("stats", self.spec.shard_id, token, payload)]
        if kind == "checkpoint":
            return self._checkpoint()
        if kind == "crash":
            raise SimulatedCrash(f"shard {self.spec.shard_id} told to crash")
        if kind == "stop":
            replies = self._checkpoint()
            # Joins the pipelined flush engine's writer thread (no-op
            # for synchronous shards) so the process exits clean.
            self.managed.structure.close()
            replies.append(("stopped", self.spec.shard_id, self.seq))
            return replies
        raise ValueError(f"unknown shard command {kind!r}")

    # -- internals ----------------------------------------------------------

    def _applied(self, seq: int) -> list[tuple]:
        if seq <= self.seq:
            raise AssertionError(
                f"shard {self.spec.shard_id} saw sequence {seq} after "
                f"{self.seq}; the supervisor must never replay an "
                f"already-applied batch"
            )
        self.seq = seq
        self._batches_since_checkpoint += 1
        if self._batches_since_checkpoint >= self.spec.checkpoint_batches:
            return self._checkpoint()
        return []

    def _checkpoint(self) -> list[tuple]:
        self.managed.checkpoint(meta={SEQ_META_KEY: self.seq})
        self._batches_since_checkpoint = 0
        return [("checkpointed", self.spec.shard_id, self.seq)]

    def _draw_sample(self, k: int) -> dict:
        """Up to ``k`` reservoir records, uniform and uniformly ordered.

        The deferred-eviction materialisation inside ``sample()`` and
        the subset draw both use the worker's query RNGs, so the
        reservoir's own (checkpointed, replay-critical) RNG streams
        stay untouched by reads.
        """
        if k < 0:
            raise ValueError("sample size must be non-negative")
        law = getattr(self.managed.structure, "_law", None)
        if law is not None and law.mergeable_by_key:
            return self._draw_keyed_sample(k, law)
        records = self.managed.sample(rng=self._query_py_rng)
        size = len(records)
        stats = self.managed.stats()
        take = min(k, size)
        order = self._query_rng.permutation(size)[:take]
        return {
            "seen": stats.seen,
            "size": size,
            "seq": self.seq,
            "records": [records[i] for i in order],
        }

    def _draw_keyed_sample(self, k: int, law) -> dict:
        """Key-ranked reply for mergeable laws (A-ExpJ).

        The records come back best key first with the keys alongside,
        so any prefix is the shard's top-``j`` and the supervisor's
        global top-``k`` over the concatenation is the union's exact
        weighted sample.  No query RNG is consumed: the keyed sample
        is a deterministic function of reservoir state.
        """
        records, keys = law.sample_keyed(self.managed.structure)
        stats = self.managed.stats()
        size = len(records)
        take = min(k, size)
        return {
            "seen": stats.seen,
            "size": size,
            "seq": self.seq,
            "records": records[:take],
            "keys": [float(key) for key in keys[:take]],
        }


def _pop_batch_slab(ring, schema, seq: int, n_records: int) -> RecordBatch:
    """Receive the ring frame a ``batch_slab`` stub announced.

    The supervisor publishes the frame before the stub, so the frame
    is already the oldest on the ring; the brief spin below only
    covers cross-process store visibility.  The returned batch is a
    private copy -- the ring slot is released before ingestion runs.
    """
    from .shm import TornSlabError

    deadline = time.monotonic() + 10.0
    while True:
        slab = ring.try_pop()
        if slab is not None:
            break
        if time.monotonic() > deadline:  # pragma: no cover - defensive
            raise TornSlabError(
                f"batch slab for seq {seq} never appeared")
        time.sleep(0.0002)
    if slab.seq != seq or slab.n_records != n_records:
        ring.pop_done(slab)
        raise TornSlabError(
            f"slab stream out of step: stub ({seq}, {n_records}) vs "
            f"frame ({slab.seq}, {slab.n_records})")
    weighted, n_bytes = slab.weighted, slab.n_bytes
    if (weighted != schema.weighted
            or n_bytes != n_records * schema.record_size):
        # Mirror of the supervisor's reply-side guard: a frame whose
        # flags or size disagree with the shard's declared schema must
        # never be decoded (every field would shift), only rejected.
        ring.pop_done(slab)
        raise TornSlabError(
            f"batch slab at seq {seq} does not match the shard schema "
            f"(weighted={weighted}, {n_bytes} B for "
            f"{n_records} x {schema.record_size} B records)")
    batch = RecordBatch.from_shared(schema, slab.view, n_records).copy()
    ring.pop_done(slab)
    return batch


def _slab_reply(ring, schema, reply: tuple) -> tuple:
    """Route a sample reply's records over the outbound ring if possible.

    Plain-``Record`` payloads are encoded once into the shared record
    dtype (in *this* process, so encoding parallelises across shards)
    and replaced by a ``sample_slab`` stub; keyed (A-ExpJ), weighted,
    or empty payloads -- and slabs the ring cannot take in reasonable
    time -- stay on the pickled queue path unchanged.
    """
    if ring is None or reply[0] != "sample":
        return reply
    payload = reply[3]
    records = payload.get("records")
    if (not isinstance(records, list) or not records
            or "keys" in payload or not isinstance(records[0], Record)):
        return reply
    batch = RecordBatch.from_records(schema, records)
    n_bytes = len(batch) * schema.record_size
    if not ring.fits(n_bytes):
        return reply
    deadline = time.monotonic() + 0.25
    while True:
        view = ring.try_reserve(n_bytes)
        if view is not None:
            break
        if time.monotonic() > deadline:
            # A slow supervisor must never deadlock against a blocked
            # worker: give up on the ring, pickle the reply instead.
            return reply
        time.sleep(0.0002)
    from .shm import KIND_DATA

    batch.into_shared(view)
    token = reply[2]
    ring.commit(KIND_DATA, token, n_records=len(batch), n_bytes=n_bytes)
    meta = {key: value for key, value in payload.items()
            if key != "records"}
    return ("sample_slab", reply[1], token, meta)


def worker_main(spec: ShardSpec, inbox, outbox, ring_names=None) -> None:
    """Process entry point: build the shard, then serve the inbox.

    ``ring_names`` (inbound, outbound) attaches the shared-memory data
    plane; ``None`` keeps every payload on the queues.  ``crash``
    exits via ``os._exit`` -- no cleanup, no final checkpoint -- which
    is the closest a cooperative process gets to a SIGKILL; the
    supervisor's recovery path cannot tell the difference.
    """
    in_ring = out_ring = None
    try:
        if ring_names is not None:
            from .shm import SlabRing

            # The supervisor owns the rings' lifetime (it unlinks them
            # on respawn/close); the worker must not let its own
            # resource tracker reap them, so it attaches untracked --
            # ``track=False`` on 3.13+, a conservative no-op/unregister
            # fallback on older interpreters (see shm._attach_untracked).
            in_ring = SlabRing(name=ring_names[0], untrack=True)
            out_ring = SlabRing(name=ring_names[1], untrack=True)
        schema = spec.schema
        worker = ShardWorker(spec)
        outbox.put(("ready", spec.shard_id, worker.seq))
        while True:
            message = inbox.get()
            if message[0] == "batch_slab":
                message = ("batch", message[1],
                           _pop_batch_slab(in_ring, schema,
                                           message[1], message[2]))
            try:
                replies = worker.handle(message)
            except SimulatedCrash:
                os._exit(2)
            for reply in replies:
                outbox.put(_slab_reply(out_ring, schema, reply))
            if message[0] == "stop":
                break
        for ring in (in_ring, out_ring):
            if ring is not None:
                ring.close()
    except Exception as exc:  # pragma: no cover - defensive reporting
        try:
            outbox.put(("error", spec.shard_id, repr(exc)))
        finally:
            os._exit(1)
