"""Storage substrate: simulated and real block devices, buffer pool,
record codecs, and extent allocation.

This package is the stand-in for the paper's physical disks (see
DESIGN.md section 2 for the substitution rationale).
"""

from .buffer_pool import BufferPoolStats, LRUBufferPool
from .device import (
    BlockDevice,
    DeviceSpec,
    FileBlockDevice,
    MemoryBlockDevice,
    SimulatedBlockDevice,
)
from .disk_model import DiskModel, DiskParameters, DiskStats
from .extents import Extent, ExtentAllocator
from .recordbatch import RecordBatch
from .records import (
    MIN_RECORD_SIZE,
    Record,
    RecordSchema,
    WeightedRecord,
)

__all__ = [
    "BlockDevice",
    "BufferPoolStats",
    "DeviceSpec",
    "DiskModel",
    "DiskParameters",
    "DiskStats",
    "Extent",
    "ExtentAllocator",
    "FileBlockDevice",
    "LRUBufferPool",
    "MIN_RECORD_SIZE",
    "MemoryBlockDevice",
    "Record",
    "RecordBatch",
    "RecordSchema",
    "SimulatedBlockDevice",
    "WeightedRecord",
]

from .striping import StripedBlockDevice  # noqa: E402
from .varrecords import VariableRecordCodec  # noqa: E402

__all__ = sorted(__all__ + ["StripedBlockDevice", "VariableRecordCodec"])
