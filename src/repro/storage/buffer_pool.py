"""LRU buffer pool.

Section 8 of the paper gives every disk-based alternative a fixed LRU
buffer for disk reads/writes (100 MB in Experiments 1-3) on top of the
memory reserved for buffering newly sampled records.  The virtual-memory
baseline in particular lives or dies by this pool: each admitted record
touches one random block, so once the reservoir exceeds the pool every
admission pays a read *and* a write-back.

The pool caches whole blocks, supports pin/unpin so callers can mutate a
page in place, uses write-back (dirty pages are flushed on eviction or
:meth:`flush_all`), and records hit statistics for the benchmark report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .device import BlockDevice


@dataclass
class BufferPoolStats:
    """Cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_backs: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class _Frame:
    """One cached block."""

    __slots__ = ("data", "dirty", "pins")

    def __init__(self, data: bytearray) -> None:
        self.data = data
        self.dirty = False
        self.pins = 0


class LRUBufferPool:
    """Write-back LRU cache of device blocks.

    Args:
        device: the underlying block device.
        capacity_blocks: number of blocks the pool may hold (>= 1).

    The pool evicts the least recently used *unpinned* frame.  Pinned
    frames are never evicted; attempting to exceed capacity with every
    frame pinned raises ``RuntimeError`` (it indicates a caller bug).
    """

    def __init__(self, device: BlockDevice, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("pool needs at least one frame")
        self.device = device
        self.capacity = capacity_blocks
        self.stats = BufferPoolStats()
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    def __len__(self) -> int:
        return len(self._frames)

    def contains(self, block: int) -> bool:
        """True if ``block`` is currently cached (no LRU side effects)."""
        return block in self._frames

    def get(self, block: int) -> bytearray:
        """Return the (mutable) contents of ``block``, fetching on miss.

        The returned buffer aliases the cached frame: callers that mutate
        it must call :meth:`mark_dirty`.  For mutation across other pool
        operations, :meth:`pin` the block first.
        """
        frame = self._frames.get(block)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(block)
            return frame.data
        self.stats.misses += 1
        self._ensure_room()
        data = bytearray(self.device.read_blocks(block, 1))
        frame = _Frame(data)
        self._frames[block] = frame
        return frame.data

    def get_many(self, blocks: list[int], *, dirty: bool = False) -> None:
        """Touch ``blocks`` in order through the LRU, discarding contents.

        Batched form of a ``get`` (plus optional ``mark_dirty``) per
        block for callers that only need the cache traffic -- the
        virtual-memory baseline's vectorised admit path.  Hit/miss/
        eviction accounting is identical to the equivalent scalar loop:
        the LRU walk is inherently sequential, so this saves only the
        per-call overhead, never a stat.
        """
        frames = self._frames
        for block in blocks:
            frame = frames.get(block)
            if frame is not None:
                self.stats.hits += 1
                frames.move_to_end(block)
            else:
                self.stats.misses += 1
                self._ensure_room()
                data = bytearray(self.device.read_blocks(block, 1))
                frame = _Frame(data)
                frames[block] = frame
            if dirty:
                frame.dirty = True

    def put(self, block: int, data: bytes) -> None:
        """Replace the contents of ``block`` entirely (no read on miss)."""
        if len(data) != self.device.block_size:
            raise ValueError("put requires exactly one block of data")
        frame = self._frames.get(block)
        if frame is None:
            self.stats.misses += 1
            self._ensure_room()
            frame = _Frame(bytearray(data))
            self._frames[block] = frame
        else:
            self.stats.hits += 1
            frame.data[:] = data
            self._frames.move_to_end(block)
        frame.dirty = True

    def mark_dirty(self, block: int) -> None:
        """Record that a cached block was mutated in place."""
        frame = self._frames.get(block)
        if frame is None:
            raise KeyError(f"block {block} is not cached")
        frame.dirty = True

    def pin(self, block: int) -> bytearray:
        """Fetch-and-pin ``block``; pinned frames are never evicted."""
        data = self.get(block)
        self._frames[block].pins += 1
        return data

    def unpin(self, block: int, *, dirty: bool = False) -> None:
        """Release one pin; optionally mark the frame dirty."""
        frame = self._frames.get(block)
        if frame is None or frame.pins == 0:
            raise KeyError(f"block {block} is not pinned")
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    def flush_block(self, block: int) -> None:
        """Write one dirty cached block back to the device."""
        frame = self._frames.get(block)
        if frame is not None and frame.dirty:
            self.device.write_blocks(block, bytes(frame.data))
            self.stats.write_backs += 1
            frame.dirty = False

    def flush_all(self) -> None:
        """Write back every dirty frame (frames stay cached).

        Dirty frames go out in address order with exactly-adjacent
        pages coalesced into single multi-block writes (the elevator
        scheduler with a zero bridge limit), so a run of neighbouring
        dirty pages costs one head movement instead of one per page.
        ``write_backs`` still counts frames, not bursts.
        """
        dirty = [(block, frame) for block, frame in self._frames.items()
                 if frame.dirty]
        if not dirty:
            return
        # Lazy import: repro.pipeline sits above the storage layer.
        from ..pipeline import ElevatorScheduler, FlushPlan, execute_ops

        plan = FlushPlan()
        for block, frame in sorted(dirty):
            plan.write(block, 1, bytes(frame.data))
        ops, _ = ElevatorScheduler(bridge_blocks=0).schedule(plan,
                                                             self.device)
        execute_ops(ops, self.device)
        for _, frame in dirty:
            frame.dirty = False
        self.stats.write_backs += len(dirty)

    def drop_all(self) -> None:
        """Flush then empty the pool."""
        self.flush_all()
        if any(f.pins for f in self._frames.values()):
            raise RuntimeError("cannot drop pool with pinned frames")
        self._frames.clear()

    def _ensure_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = None
            for block, frame in self._frames.items():  # LRU order
                if frame.pins == 0:
                    victim = block
                    break
            if victim is None:
                raise RuntimeError("all frames pinned; cannot evict")
            frame = self._frames.pop(victim)
            self.stats.evictions += 1
            if frame.dirty:
                self.device.write_blocks(victim, bytes(frame.data))
                self.stats.write_backs += 1
