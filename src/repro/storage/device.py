"""Block devices.

Everything the library stores on "disk" goes through a
:class:`BlockDevice`.  Three implementations are provided:

* :class:`SimulatedBlockDevice` -- charges each operation to a
  :class:`~repro.storage.disk_model.DiskModel` and (optionally) retains
  the payload bytes in memory.  This is the backend used by the
  benchmark harness: it provides the paper's terabyte-scale cost
  behaviour at laptop scale.
* :class:`FileBlockDevice` -- a real file on the local filesystem, used
  by integration tests to demonstrate that the storage structures are
  genuinely byte-addressable and recoverable.
* :class:`MemoryBlockDevice` -- a plain ``bytearray``-backed device for
  fast unit tests.

A device is a flat array of fixed-size blocks.  Partial-block writes are
expressed as read-modify-write by the caller (the geometric file does
this for unaligned segment boundaries, mirroring the paper's "only the
first and last block in each over-written segment must be read").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from .disk_model import DiskModel, DiskParameters, DiskStats, _MirroredCounters


@runtime_checkable
class BlockDevice(Protocol):
    """Protocol for a flat array of fixed-size blocks."""

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        ...

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        ...

    def read_blocks(self, block: int, n_blocks: int) -> bytes:
        """Read ``n_blocks`` contiguous blocks starting at ``block``."""
        ...

    def write_blocks(self, block: int, data: bytes) -> None:
        """Write ``data`` (a whole number of blocks) starting at ``block``."""
        ...

    def sync(self) -> None:
        """Flush any caching to the underlying medium."""
        ...


def write_zeros(device: "BlockDevice", block: int, n_blocks: int) -> None:
    """Write ``n_blocks`` of zeros, without materialising them if possible.

    Cost-charging call sites (segment writes, fill appends, scan
    rewrites) have no payload to store; a
    :class:`SimulatedBlockDevice` without data retention charges the
    transfer directly, while byte-backed devices write real zeros in
    bounded chunks.
    """
    fast = getattr(device, "charge_write", None)
    if fast is not None and fast(block, n_blocks):
        return
    chunk = 256
    while n_blocks > 0:
        burst = min(chunk, n_blocks)
        device.write_blocks(block, b"\x00" * (burst * device.block_size))
        block += burst
        n_blocks -= burst


def read_discard(device: "BlockDevice", block: int, n_blocks: int) -> None:
    """Read ``n_blocks`` and drop the data (cost charging only)."""
    fast = getattr(device, "charge_read", None)
    if fast is not None and fast(block, n_blocks):
        return
    chunk = 256
    while n_blocks > 0:
        burst = min(chunk, n_blocks)
        device.read_blocks(block, burst)
        block += burst
        n_blocks -= burst


def device_stores_bytes(device: "BlockDevice") -> bool:
    """True when reads return what was written (payloads worth encoding).

    The columnar flush path encodes segments only for byte-storing
    devices; cost-model-only backends keep the :func:`write_zeros`
    charge.  Devices advertise via a ``stores_data`` attribute; absent
    that, a device with no ``charge_write`` fast path performs real
    writes anyway, so it counts as byte-storing.
    """
    probe = getattr(device, "stores_data", None)
    if probe is not None:
        return bool(probe)
    return getattr(device, "charge_write", None) is None


def write_payload(device: "BlockDevice", block: int, n_blocks: int,
                  data: bytes) -> None:
    """Write real payload bytes with :func:`write_zeros`-identical cost.

    ``data`` is zero-padded (or truncated) to ``n_blocks`` whole blocks
    and written in the same bounded bursts as :func:`write_zeros`'s
    fallback loop -- the same number of ``write_blocks`` calls over the
    same block ranges -- so every :class:`DiskStats` counter reconciles
    bit-exactly whichever helper ran.  Callers gate on
    :func:`device_stores_bytes`; for cost-only devices they keep
    calling :func:`write_zeros`, whose fast path the model charges
    identically.
    """
    block_size = device.block_size
    need = n_blocks * block_size
    if len(data) != need:
        data = bytes(data[:need]) + b"\x00" * max(0, need - len(data))
    chunk = 256
    offset = 0
    while n_blocks > 0:
        burst = min(chunk, n_blocks)
        device.write_blocks(block,
                            bytes(data[offset:offset + burst * block_size]))
        block += burst
        n_blocks -= burst
        offset += burst * block_size


def _check_range(device: "BlockDevice", block: int, n_blocks: int) -> None:
    if block < 0 or n_blocks < 1:
        raise ValueError("invalid block range")
    if block + n_blocks > device.n_blocks:
        raise ValueError(
            f"access [{block}, {block + n_blocks}) beyond device "
            f"of {device.n_blocks} blocks"
        )


@dataclass(frozen=True)
class DeviceSpec:
    """A picklable description of a block device, built on demand.

    Multi-process deployments (:mod:`repro.service`) cannot ship live
    devices or factory closures across a ``fork``/``spawn`` boundary --
    neither pickles.  A spec is plain data; each shard worker calls
    :meth:`build` *inside its own process*, rooted at its private shard
    directory, so every shard gets an independent device (its own
    simulated spindle, or its own backing file under ``directory``).

    Attributes:
        kind: ``"simulated"`` (cost-modelled, the benchmark backend),
            ``"memory"`` (byte-backed, no cost model), or ``"file"``
            (a real file named ``device.bin`` under ``directory``).
        n_blocks: device capacity in blocks.
        block_size: bytes per block (``"simulated"`` takes it from
            ``params`` instead).
        params: disk parameters for the simulated kind; ``None`` uses
            the paper's measured disk.
        retain_data: for the simulated kind, keep payload bytes in
            memory so reads return what was written.
    """

    kind: str
    n_blocks: int
    block_size: int = 4096
    params: DiskParameters | None = None
    retain_data: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("simulated", "memory", "file"):
            raise ValueError(f"unknown device kind {self.kind!r}")
        if self.n_blocks < 1:
            raise ValueError("device must have at least one block")

    def build(self, directory: str | os.PathLike[str] | None = None
              ) -> "BlockDevice":
        """Construct the described device.

        Args:
            directory: required for the ``"file"`` kind -- created if
                missing, and the backing file lives inside it.
        """
        if self.kind == "simulated":
            return SimulatedBlockDevice(self.n_blocks, self.params,
                                        retain_data=self.retain_data)
        if self.kind == "memory":
            return MemoryBlockDevice(self.n_blocks, self.block_size)
        if directory is None:
            raise ValueError("a file device needs a directory")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(os.fspath(directory), "device.bin")
        return FileBlockDevice(path, self.n_blocks, self.block_size)


class MemoryBlockDevice:
    """An in-memory block device with no cost model.

    Useful for unit tests that care about byte-level correctness but not
    timing.
    """

    def __init__(self, n_blocks: int, block_size: int = 4096) -> None:
        if n_blocks < 1 or block_size < 1:
            raise ValueError("device must have at least one block")
        self._block_size = block_size
        self._n_blocks = n_blocks
        self._data = bytearray(n_blocks * block_size)
        self._ops = DiskStats()
        self._metrics: _MirroredCounters | None = None

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    #: Reads return real bytes; the columnar flush encodes payloads.
    stores_data = True

    def stats(self) -> DiskStats:
        """Operation counts so far (the time fields stay zero)."""
        return self._ops.snapshot()

    def instrument(self, registry, *, name: str = "memory") -> None:
        """Mirror operation counts into ``registry`` as ``disk.*`` metrics.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            name: value of the ``structure`` label.
        """
        self._metrics = _MirroredCounters(registry, name)

    def read_blocks(self, block: int, n_blocks: int) -> bytes:
        """Read ``n_blocks`` contiguous blocks starting at ``block``."""
        _check_range(self, block, n_blocks)
        self._ops.reads += 1
        self._ops.blocks_read += n_blocks
        if self._metrics is not None:
            self._metrics.reads.inc()
            self._metrics.blocks_read.inc(n_blocks)
        start = block * self._block_size
        return bytes(self._data[start:start + n_blocks * self._block_size])

    def write_blocks(self, block: int, data: bytes) -> None:
        """Write whole blocks starting at ``block``."""
        if len(data) % self._block_size != 0:
            raise ValueError("data must be a whole number of blocks")
        n_blocks = len(data) // self._block_size
        _check_range(self, block, n_blocks)
        self._ops.writes += 1
        self._ops.blocks_written += n_blocks
        if self._metrics is not None:
            self._metrics.writes.inc()
            self._metrics.blocks_written.inc(n_blocks)
        start = block * self._block_size
        self._data[start:start + len(data)] = data

    def sync(self) -> None:
        """No-op: memory devices have nothing to flush."""


class SimulatedBlockDevice:
    """A block device whose operations are charged to a :class:`DiskModel`.

    Args:
        n_blocks: capacity in blocks.
        params: disk parameters; defaults to the paper's measured disk.
        retain_data: when True the payload bytes are kept in memory so
            reads return what was written (needed when the caller
            verifies record-level contents).  When False -- the default
            for large benchmark runs -- only costs are tracked and reads
            return zero bytes.
        model: share an existing :class:`DiskModel` (several devices on
            one simulated spindle); a fresh model is created otherwise.
    """

    def __init__(
        self,
        n_blocks: int,
        params: DiskParameters | None = None,
        *,
        retain_data: bool = False,
        model: DiskModel | None = None,
    ) -> None:
        if n_blocks < 1:
            raise ValueError("device must have at least one block")
        self.model = model or DiskModel(params)
        if params is not None and model is not None:
            raise ValueError("pass either params or a shared model, not both")
        self._n_blocks = n_blocks
        self._retain = retain_data
        self._data = bytearray(n_blocks * self.block_size) if retain_data else None

    @property
    def block_size(self) -> int:
        return self.model.params.block_size

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def clock(self) -> float:
        """Simulated seconds of disk time consumed so far."""
        return self.model.clock

    @property
    def stores_data(self) -> bool:
        """True when payload bytes are retained (reads are faithful)."""
        return self._data is not None

    def stats(self) -> DiskStats:
        """Snapshot of the cost model's cumulative counters."""
        return self.model.stats.snapshot()

    def instrument(self, registry, *, name: str = "disk") -> None:
        """Mirror the cost model's counters into ``registry``.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            name: value of the ``structure`` label.
        """
        self.model.instrument(registry, name=name)

    def read_blocks(self, block: int, n_blocks: int) -> bytes:
        """Read (and charge) ``n_blocks``; zeros unless data is retained."""
        _check_range(self, block, n_blocks)
        self.model.read(block, n_blocks)
        if self._data is None:
            return bytes(n_blocks * self.block_size)
        start = block * self.block_size
        return bytes(self._data[start:start + n_blocks * self.block_size])

    def write_blocks(self, block: int, data: bytes) -> None:
        """Write (and charge) whole blocks starting at ``block``."""
        if len(data) % self.block_size != 0:
            raise ValueError("data must be a whole number of blocks")
        n_blocks = len(data) // self.block_size
        _check_range(self, block, n_blocks)
        self.model.write(block, n_blocks)
        if self._data is not None:
            start = block * self.block_size
            self._data[start:start + len(data)] = data

    def charge_write(self, block: int, n_blocks: int) -> bool:
        """Fast path for :func:`write_zeros`: charge without a payload.

        Returns False when payload bytes are retained, in which case the
        caller must fall back to real zero writes.
        """
        if self._data is not None:
            return False
        _check_range(self, block, n_blocks)
        self.model.write(block, n_blocks)
        return True

    def charge_read(self, block: int, n_blocks: int) -> bool:
        """Fast path for :func:`read_discard`; see :meth:`charge_write`."""
        _check_range(self, block, n_blocks)
        self.model.read(block, n_blocks)
        return True

    def charge_stream(self, n_blocks: int) -> None:
        """Stream the head past ``n_blocks`` without transferring them.

        Issued by the elevator I/O scheduler when two write bursts sit
        close enough that staying on-track beats a random seek; see
        :meth:`~repro.storage.disk_model.DiskModel.stream_past`.
        Devices without a cost model simply lack this method and the
        plan executor skips the charge.
        """
        self.model.stream_past(n_blocks)

    def sync(self) -> None:
        """No-op: the simulated device is always durable."""


class FileBlockDevice:
    """A block device backed by a real file.

    Integration tests use this backend to show the storage structures
    survive a round trip through the operating system.  The file is
    created (or truncated up) to the requested size on open.
    """

    def __init__(self, path: str | os.PathLike[str], n_blocks: int,
                 block_size: int = 4096) -> None:
        if n_blocks < 1 or block_size < 1:
            raise ValueError("device must have at least one block")
        self._block_size = block_size
        self._n_blocks = n_blocks
        self._path = os.fspath(path)
        size = n_blocks * block_size
        # Open for update, creating if absent, without truncating existing
        # contents (reopening an existing device must preserve them).
        mode = "r+b" if os.path.exists(self._path) else "w+b"
        self._file = open(self._path, mode)
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() < size:
            self._file.truncate(size)
        self._ops = DiskStats()
        self._metrics: _MirroredCounters | None = None

    @property
    def path(self) -> str:
        return self._path

    #: Reads return real bytes; the columnar flush encodes payloads.
    stores_data = True

    def stats(self) -> DiskStats:
        """Operation counts so far (the time fields stay zero)."""
        return self._ops.snapshot()

    def instrument(self, registry, *, name: str = "file") -> None:
        """Mirror operation counts into ``registry`` as ``disk.*`` metrics.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            name: value of the ``structure`` label.
        """
        self._metrics = _MirroredCounters(registry, name)

    @property
    def block_size(self) -> int:
        return self._block_size

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    def read_blocks(self, block: int, n_blocks: int) -> bytes:
        """Read ``n_blocks`` contiguous blocks from the backing file."""
        _check_range(self, block, n_blocks)
        self._ops.reads += 1
        self._ops.blocks_read += n_blocks
        if self._metrics is not None:
            self._metrics.reads.inc()
            self._metrics.blocks_read.inc(n_blocks)
        self._file.seek(block * self._block_size)
        want = n_blocks * self._block_size
        data = self._file.read(want)
        if len(data) < want:
            data += b"\x00" * (want - len(data))
        return data

    def write_blocks(self, block: int, data: bytes) -> None:
        """Write whole blocks to the backing file."""
        if len(data) % self._block_size != 0:
            raise ValueError("data must be a whole number of blocks")
        n_blocks = len(data) // self._block_size
        _check_range(self, block, n_blocks)
        self._ops.writes += 1
        self._ops.blocks_written += n_blocks
        if self._metrics is not None:
            self._metrics.writes.inc()
            self._metrics.blocks_written.inc(n_blocks)
        self._file.seek(block * self._block_size)
        self._file.write(data)

    def sync(self) -> None:
        """Flush and fsync the backing file."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Close the backing file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "FileBlockDevice":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
