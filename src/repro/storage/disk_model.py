"""Analytical disk cost model.

The paper's evaluation (Section 8) ran on 15,000 RPM 80 GB Seagate SCSI
disks with "a sustained read/write rate of 40-60 MB/second, and an across
the disk random data access time of around 10 ms".  Re-running terabyte-
scale experiments on real hardware is neither possible nor necessary for
reproducing the paper's findings: what separates the five alternatives is
*how many random head movements versus sequential bytes* each one issues.

:class:`DiskModel` therefore charges every block operation analytically.
It tracks the head position; an access that does not continue from the
current head position pays a seek (plus rotational settle), after which
bytes stream at the sequential transfer rate.  The accumulated *simulated
clock* is what the benchmark figures report as "time elapsed", exactly as
the paper's wall clock did for its physical disks.

All parameters are explicit so that ablations can model faster or slower
devices (e.g. the "terabyte of commodity hard disk storage" of the
introduction).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskParameters:
    """Physical characteristics of the modelled disk.

    The defaults correspond to the disk measured in Section 8 of the
    paper: roughly 10 ms per random access and 40 MB/s of sustained
    sequential bandwidth (the paper reports 40-60 MB/s; we use the
    conservative end, which the multi-file option saturates in
    Figure 7 (a)).

    Attributes:
        seek_time: average cost, in seconds, of a random head movement
            (includes rotational latency; the paper folds both into its
            10 ms "random data access time").
        transfer_rate: sustained sequential throughput in bytes/second.
        block_size: device block size in bytes.  The paper discusses
            32 KB blocks in Section 5.1.
        settle_time: extra per-I/O fixed overhead charged even for
            sequential continuation (controller/command overhead).
            Zero by default: the paper's sustained rate already
            amortises it.
    """

    seek_time: float = 0.010
    transfer_rate: float = 40 * 1024 * 1024
    block_size: int = 32 * 1024
    settle_time: float = 0.0

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise ValueError("seek_time must be non-negative")
        if self.transfer_rate <= 0:
            raise ValueError("transfer_rate must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.settle_time < 0:
            raise ValueError("settle_time must be non-negative")

    @property
    def block_transfer_time(self) -> float:
        """Seconds needed to stream one block past the head."""
        return self.block_size / self.transfer_rate


@dataclass
class DiskStats:
    """Cumulative I/O accounting for one simulated disk.

    ``seeks`` counts random head movements -- the quantity the paper's
    design goals (2) and (3) try to drive to zero.  ``sequential_blocks``
    counts block transfers that continued from the previous head
    position and therefore paid only transfer time.
    """

    seeks: int = 0
    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    sequential_blocks: int = 0
    seek_seconds: float = 0.0
    transfer_seconds: float = 0.0

    @property
    def total_blocks(self) -> int:
        return self.blocks_read + self.blocks_written

    @property
    def sequential_ratio(self) -> float:
        """Fraction of block transfers that did not require a seek."""
        total = self.total_blocks
        if total == 0:
            return 1.0
        return self.sequential_blocks / total

    @property
    def random_io_fraction(self) -> float:
        """Fraction of simulated time spent in random head movements."""
        total = self.seek_seconds + self.transfer_seconds
        if total == 0:
            return 0.0
        return self.seek_seconds / total

    def snapshot(self) -> "DiskStats":
        """Return an independent copy of the current counters."""
        return DiskStats(
            seeks=self.seeks,
            reads=self.reads,
            writes=self.writes,
            blocks_read=self.blocks_read,
            blocks_written=self.blocks_written,
            sequential_blocks=self.sequential_blocks,
            seek_seconds=self.seek_seconds,
            transfer_seconds=self.transfer_seconds,
        )


class _MirroredCounters:
    """Registry counters that shadow one :class:`DiskStats` instance.

    Every field of :class:`DiskStats` gets a ``disk.*`` counter labelled
    ``structure=<name>``.  :class:`DiskModel` bumps these with exactly
    the amounts (and in exactly the order) it applies to its own stats,
    which keeps the registry bit-identical to the model's accounting --
    the reconciliation property ``tests/test_obs.py`` asserts.
    """

    __slots__ = ("seeks", "reads", "writes", "blocks_read",
                 "blocks_written", "sequential_blocks", "seek_seconds",
                 "transfer_seconds")

    def __init__(self, registry, name: str) -> None:
        labels = {"structure": name}
        self.seeks = registry.counter("disk.seeks", **labels)
        self.reads = registry.counter("disk.reads", **labels)
        self.writes = registry.counter("disk.writes", **labels)
        self.blocks_read = registry.counter("disk.blocks_read", **labels)
        self.blocks_written = registry.counter(
            "disk.blocks_written", **labels)
        self.sequential_blocks = registry.counter(
            "disk.sequential_blocks", **labels)
        self.seek_seconds = registry.counter("disk.seek_seconds", **labels)
        self.transfer_seconds = registry.counter(
            "disk.transfer_seconds", **labels)

    def reset(self) -> None:
        for slot in self.__slots__:
            getattr(self, slot).reset()


class DiskModel:
    """Simulated disk head with an accumulated clock.

    The model is deliberately simple -- a single head, a linear block
    address space, constant seek cost -- because that is the cost
    structure the paper reasons with ("each segment requires around four
    disk seeks to write", Section 5.1).  It exposes:

    * :meth:`access` -- charge a read or write of ``n`` contiguous
      blocks starting at ``block``;
    * :attr:`clock` -- total simulated seconds elapsed;
    * :attr:`stats` -- cumulative :class:`DiskStats`.

    A transfer is *sequential* when it starts exactly where the previous
    transfer ended; anything else pays one ``seek_time``.
    """

    def __init__(self, params: DiskParameters | None = None) -> None:
        self.params = params or DiskParameters()
        self.stats = DiskStats()
        self._head: int | None = None  # block address after last access
        self._metrics: _MirroredCounters | None = None

    def instrument(self, registry, *, name: str = "disk") -> None:
        """Mirror every counter into ``registry`` as ``disk.*`` metrics.

        Each increment to :attr:`stats` is repeated, with the same
        amount and in the same order, on a registry counter labelled
        ``structure=name`` -- so the registry totals are *equal* (not
        approximately equal) to the model's own accounting, and the
        mirroring itself charges no simulated time.  Several models may
        share one name (a striped volume's spindles); the registry
        hands them the same counter objects, which sums them.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            name: value of the ``structure`` label.
        """
        self._metrics = _MirroredCounters(registry, name)

    @property
    def clock(self) -> float:
        """Simulated seconds of disk activity so far."""
        return self.stats.seek_seconds + self.stats.transfer_seconds

    @property
    def head_position(self) -> int | None:
        """Block address the head currently rests at (None = unused)."""
        return self._head

    def access(self, block: int, n_blocks: int, *, write: bool) -> float:
        """Charge an access of ``n_blocks`` contiguous blocks.

        Args:
            block: starting block address (non-negative).
            n_blocks: number of contiguous blocks transferred (>= 1).
            write: True for a write, False for a read.

        Returns:
            Simulated seconds this access took.
        """
        if block < 0:
            raise ValueError("block address must be non-negative")
        if n_blocks < 1:
            raise ValueError("must transfer at least one block")

        p = self.params
        m = self._metrics
        elapsed = 0.0
        if self._head != block:
            self.stats.seeks += 1
            elapsed += p.seek_time
            self.stats.seek_seconds += p.seek_time
            if m is not None:
                m.seeks.inc()
                m.seek_seconds.inc(p.seek_time)
        else:
            self.stats.sequential_blocks += n_blocks
            if m is not None:
                m.sequential_blocks.inc(n_blocks)

        transfer = n_blocks * p.block_transfer_time + p.settle_time
        elapsed += transfer
        self.stats.transfer_seconds += transfer
        if m is not None:
            m.transfer_seconds.inc(transfer)

        if write:
            self.stats.writes += 1
            self.stats.blocks_written += n_blocks
            if m is not None:
                m.writes.inc()
                m.blocks_written.inc(n_blocks)
        else:
            self.stats.reads += 1
            self.stats.blocks_read += n_blocks
            if m is not None:
                m.reads.inc()
                m.blocks_read.inc(n_blocks)

        self._head = block + n_blocks
        return elapsed

    def read(self, block: int, n_blocks: int = 1) -> float:
        """Charge a read; see :meth:`access`."""
        return self.access(block, n_blocks, write=False)

    def write(self, block: int, n_blocks: int = 1) -> float:
        """Charge a write; see :meth:`access`."""
        return self.access(block, n_blocks, write=True)

    def charge_seek(self) -> None:
        """Charge one bare random head movement with no data transfer.

        Used for modelled per-operation overheads (e.g. the geometric
        file's ``extra_seeks_per_segment``).  The head position is
        forgotten so the next transfer cannot ride sequentially for
        free.
        """
        self.stats.seeks += 1
        self.stats.seek_seconds += self.params.seek_time
        if self._metrics is not None:
            self._metrics.seeks.inc()
            self._metrics.seek_seconds.inc(self.params.seek_time)
        self._head = None

    def stream_past(self, n_blocks: int) -> float:
        """Let ``n_blocks`` pass under the head without transferring them.

        The elevator scheduler uses this to bridge small gaps between
        merged write bursts: for gaps shorter than
        ``seek_time / block_transfer_time`` blocks it is cheaper to keep
        streaming at the sustained rate than to lift the head.  Only
        transfer time is charged -- no seek, no read/write counts, no
        ``sequential_blocks`` credit (nothing was transferred) -- and
        the head advances past the gap so the next burst continues
        sequentially.

        Returns:
            Simulated seconds spent streaming.
        """
        if n_blocks < 1:
            raise ValueError("must stream past at least one block")
        elapsed = n_blocks * self.params.block_transfer_time
        self.stats.transfer_seconds += elapsed
        if self._metrics is not None:
            self._metrics.transfer_seconds.inc(elapsed)
        if self._head is not None:
            self._head += n_blocks
        return elapsed

    def idle(self, seconds: float) -> None:
        """Advance the clock without disk activity (e.g. CPU time).

        The paper's figures chart throughput against elapsed time; when a
        workload is disk-bound the CPU share is negligible, but callers
        may still account for it explicitly.
        """
        if seconds < 0:
            raise ValueError("cannot idle for negative time")
        self.stats.transfer_seconds += seconds
        if self._metrics is not None:
            self._metrics.transfer_seconds.inc(seconds)

    def reset(self) -> None:
        """Zero the clock and statistics; forget the head position."""
        self.stats = DiskStats()
        self._head = None
        if self._metrics is not None:
            self._metrics.reset()
