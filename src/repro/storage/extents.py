"""Contiguous extent allocation.

The geometric file pre-computes its entire layout: one region per
segment ladder rung ("all segment 0's", "all segment 1's", ... --
paper Figure 2), one pre-allocated LIFO stack region of 3 * sqrt(B)
records per subsample (Section 4.5.1), and, for the multi-file variant,
one dummy subsample's worth of space per file (Section 6).

:class:`ExtentAllocator` hands out those contiguous regions in block
units and remembers what each one is for, which the checkpoint module
serialises and the benchmark report prints.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks.

    Attributes:
        start: first block address.
        n_blocks: length in blocks.
        label: human-readable purpose ("segment 3 of file 0", "stack 12").
    """

    start: int
    n_blocks: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.n_blocks < 0:
            raise ValueError("extent must lie at non-negative addresses")

    @property
    def end(self) -> int:
        """One past the last block."""
        return self.start + self.n_blocks

    def overlaps(self, other: "Extent") -> bool:
        """True when the two extents share any block.

        Zero-length extents occupy no blocks and overlap nothing.
        """
        if self.n_blocks == 0 or other.n_blocks == 0:
            return False
        return self.start < other.end and other.start < self.end


class ExtentAllocator:
    """Bump allocator over a fixed block range.

    The geometric file's layout is computed once, so a simple
    non-freeing bump allocator suffices; :meth:`allocate` raises when
    the device is too small for the requested layout, which surfaces
    sizing bugs immediately instead of as silent overlap corruption.
    """

    def __init__(self, n_blocks: int, *, first_block: int = 0) -> None:
        if n_blocks < 0 or first_block < 0:
            raise ValueError("allocator range must be non-negative")
        self._limit = first_block + n_blocks
        self._next = first_block
        self.extents: list[Extent] = []

    @property
    def allocated_blocks(self) -> int:
        """Total blocks handed out so far."""
        return sum(e.n_blocks for e in self.extents)

    @property
    def remaining_blocks(self) -> int:
        return self._limit - self._next

    def allocate(self, n_blocks: int, label: str = "") -> Extent:
        """Hand out the next ``n_blocks`` contiguous blocks."""
        if n_blocks < 0:
            raise ValueError("cannot allocate a negative extent")
        if self._next + n_blocks > self._limit:
            raise ValueError(
                f"out of space: need {n_blocks} blocks, "
                f"only {self.remaining_blocks} remain (label={label!r})"
            )
        extent = Extent(self._next, n_blocks, label)
        self._next += n_blocks
        self.extents.append(extent)
        return extent

    def verify_disjoint(self) -> None:
        """Assert no two allocated extents overlap (sanity check)."""
        ordered = sorted(self.extents, key=lambda e: e.start)
        for a, b in zip(ordered, ordered[1:]):
            if a.overlaps(b):
                raise AssertionError(f"extents overlap: {a} and {b}")
