"""Columnar record batches: the zero-copy unit of the record engine.

A :class:`RecordBatch` wraps a 1-D numpy structured array whose packed
dtype (:attr:`~repro.storage.records.RecordSchema.dtype`) matches the
scalar codec's byte layout exactly.  That single fact buys the whole
columnar pipeline:

* ``RecordBatch.from_bytes`` is one ``np.frombuffer`` -- a zero-copy
  decode of any segment the scalar codec ever wrote;
* ``to_bytes`` is one ``tobytes`` -- a whole-segment encode with no
  per-record ``struct`` calls;
* column accessors (``keys`` / ``values`` / ``timestamps``) hand
  estimators and the zone map contiguous float/int vectors to reduce
  over, with no :class:`~repro.storage.records.Record` objects in
  sight.

The batch also keeps just enough of the ``list[Record]`` surface --
``len``, iteration, indexing, tail deletion, truthiness -- that the
:class:`~repro.core.subsample.SubsampleLedger` and the object-returning
query shims work on either representation unchanged.  Iterating or
integer-indexing decodes (that is the *shim*, deliberately scalar);
every hot path stays on the array.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .records import Record, RecordSchema, WeightedRecord


class RecordBatch:
    """A column-slab of records over one :class:`RecordSchema`.

    Args:
        schema: the fixed-size record schema; supplies the dtype.
        array: 1-D structured array of ``schema.dtype`` rows.  Views
            are fine (and common: ``from_bytes`` wraps the caller's
            buffer read-only); mutating methods require a writable
            array.
    """

    __slots__ = ("schema", "_array")

    def __init__(self, schema: RecordSchema, array: np.ndarray) -> None:
        if array.dtype != schema.dtype:
            raise ValueError(
                f"array dtype {array.dtype} does not match schema "
                f"dtype {schema.dtype}"
            )
        if array.ndim != 1:
            raise ValueError("a RecordBatch wraps a 1-D array")
        self.schema = schema
        self._array = array

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls, schema: RecordSchema, n: int = 0) -> "RecordBatch":
        """A writable batch of ``n`` zeroed rows."""
        return cls(schema, np.zeros(n, dtype=schema.dtype))

    @classmethod
    def from_bytes(cls, schema: RecordSchema, data: bytes,
                   n_records: int | None = None) -> "RecordBatch":
        """Zero-copy view over packed record bytes (read-only)."""
        if n_records is None:
            if len(data) % schema.record_size:
                raise ValueError(
                    f"{len(data)} bytes is not a whole number of "
                    f"{schema.record_size} B records"
                )
            n_records = len(data) // schema.record_size
        need = n_records * schema.record_size
        if len(data) < need:
            raise ValueError("not enough bytes for requested records")
        array = np.frombuffer(data, dtype=schema.dtype, count=n_records)
        return cls(schema, array)

    @classmethod
    def from_records(cls, schema: RecordSchema,
                     records: Sequence[Record],
                     weights: Sequence[float] | None = None
                     ) -> "RecordBatch":
        """Build a writable batch through the scalar codec.

        Round-tripping through :meth:`RecordSchema.encode_batch` makes
        byte-identity with the scalar path true by construction.
        """
        data = schema.encode_batch(list(records),
                                   list(weights) if weights is not None
                                   else None)
        array = np.frombuffer(data, dtype=schema.dtype).copy()
        return cls(schema, array)

    @classmethod
    def from_columns(cls, schema: RecordSchema, keys,
                     values=None, timestamps=None,
                     weights=None) -> "RecordBatch":
        """Assemble a batch from per-column vectors (payloads zeroed)."""
        keys = np.asarray(keys, dtype=np.int64)
        n = len(keys)
        array = np.zeros(n, dtype=schema.dtype)
        array["key"] = keys
        if values is not None:
            array["value"] = np.asarray(values, dtype=np.float64)
        if timestamps is not None:
            array["timestamp"] = np.asarray(timestamps, dtype=np.float64)
        if schema.weighted:
            array["weight"] = (np.asarray(weights, dtype=np.float64)
                               if weights is not None else 1.0)
        elif weights is not None:
            raise ValueError("schema is unweighted; cannot store weights")
        return cls(schema, array)

    @classmethod
    def concat(cls, schema: RecordSchema,
               batches: Iterable["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches into one newly-allocated batch."""
        arrays = [b._array for b in batches]
        if not arrays:
            return cls.empty(schema)
        return cls(schema, np.concatenate(arrays))

    @classmethod
    def from_shared(cls, schema: RecordSchema, buffer,
                    n_records: int) -> "RecordBatch":
        """Zero-copy view over a shared-memory buffer (IPC receive).

        ``buffer`` is typically a :class:`~repro.service.shm.Slab`
        payload view; the batch aliases it, so callers must
        :meth:`copy` (or fully absorb) the batch before the ring slot
        is released.
        """
        need = n_records * schema.record_size
        if len(buffer) < need:
            raise ValueError(
                f"shared buffer holds {len(buffer)} B, need {need} B "
                f"for {n_records} records")
        array = np.frombuffer(buffer, dtype=schema.dtype, count=n_records)
        return cls(schema, array)

    def into_shared(self, buffer) -> int:
        """Copy this batch's rows into a shared-memory buffer (IPC send).

        One vectorised structured-array assignment -- no ``tobytes``
        intermediate.  Returns the number of bytes written.
        """
        n = len(self._array)
        need = n * self.schema.record_size
        if len(buffer) < need:
            raise ValueError(
                f"shared buffer holds {len(buffer)} B, need {need} B")
        dest = np.frombuffer(buffer, dtype=self.schema.dtype, count=n)
        dest[:] = self._array
        return need

    def __reduce__(self):
        # Queue-fallback path: pickle as (schema, raw bytes).  The
        # contiguous copy keeps views (from_bytes / slices) picklable.
        return (_rebuild_batch,
                (self.schema, np.ascontiguousarray(self._array).tobytes(),
                 len(self._array)))

    # -- array access -----------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The underlying structured array (may be a read-only view)."""
        return self._array

    def column(self, name: str) -> np.ndarray:
        """One field as a vector; a view, not a copy."""
        return self._array[name]

    @property
    def keys(self) -> np.ndarray:
        return self._array["key"]

    @property
    def values(self) -> np.ndarray:
        return self._array["value"]

    @property
    def timestamps(self) -> np.ndarray:
        return self._array["timestamp"]

    @property
    def weights(self) -> np.ndarray:
        if not self.schema.weighted:
            raise TypeError("schema is unweighted; batch holds no weights")
        return self._array["weight"]

    # -- whole-batch codec ------------------------------------------------

    def to_bytes(self) -> bytes:
        """One-call encode; byte-identical to the scalar codec."""
        return self.schema.encode_many(self._array)

    def to_records(self) -> list[Record] | list[WeightedRecord]:
        """Decode every row into record objects (the slow shim)."""
        return list(self)

    # -- copies and rearrangements ---------------------------------------

    def copy(self) -> "RecordBatch":
        """A writable deep copy (views from ``from_bytes`` are read-only)."""
        return RecordBatch(self.schema, self._array.copy())

    def take(self, indices) -> "RecordBatch":
        """Rows at ``indices`` as a new batch (fancy-index copy)."""
        return RecordBatch(self.schema, self._array[np.asarray(indices)])

    def shuffled(self, np_rng: np.random.Generator) -> "RecordBatch":
        """A uniformly permuted copy (the flush step's randomization)."""
        return RecordBatch(self.schema,
                           self._array[np_rng.permutation(len(self._array))])

    # -- list-compatible surface ------------------------------------------

    def __len__(self) -> int:
        return len(self._array)

    def __bool__(self) -> bool:
        return len(self._array) > 0

    def _decode_row(self, row) -> Record | WeightedRecord:
        payload = b""
        if "payload" in (self._array.dtype.names or ()):
            payload = bytes(row["payload"]).rstrip(b"\x00")
        record = Record(key=int(row["key"]), value=float(row["value"]),
                        timestamp=float(row["timestamp"]), payload=payload)
        if self.schema.weighted:
            return WeightedRecord(record=record, weight=float(row["weight"]))
        return record

    def __iter__(self) -> Iterator[Record | WeightedRecord]:
        decode = self._decode_row
        for row in self._array:
            yield decode(row)

    def _encode_row(self, record: Record, weight: float | None = None):
        # One scalar-codec pack; numpy unpacks the slot bytes into the
        # row, so row writes share the codec's pad/truncate contract.
        return np.frombuffer(self.schema.encode(record, weight),
                             dtype=self.schema.dtype)[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RecordBatch(self.schema, self._array[index])
        return self._decode_row(self._array[int(index)])

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            source = value._array if isinstance(value, RecordBatch) else value
            self._array[index] = source
            return
        if isinstance(value, WeightedRecord):
            self._array[int(index)] = self._encode_row(value.record,
                                                       value.weight)
            return
        self._array[int(index)] = self._encode_row(value)

    def __delitem__(self, index) -> None:
        """Tail deletion only: ``del batch[n - k:]`` truncates.

        That is the one deletion the ledger's pop-from-the-end eviction
        rule performs; anything else would need an O(n) compaction and
        is deliberately unsupported.
        """
        n = len(self._array)
        if not isinstance(index, slice):
            raise TypeError("RecordBatch only supports deleting a "
                            "tail slice")
        start, stop, step = index.indices(n)
        if step != 1 or stop != n:
            raise ValueError("RecordBatch only supports deleting a "
                             "tail slice (del batch[k:])")
        self._array = self._array[:start]

    def __repr__(self) -> str:
        return (f"RecordBatch({len(self._array)} x "
                f"{self.schema.record_size} B"
                f"{', weighted' if self.schema.weighted else ''})")


def _rebuild_batch(schema: RecordSchema, data: bytes,
                   n_records: int) -> RecordBatch:
    """Pickle target for :class:`RecordBatch` (writable on arrival)."""
    array = np.frombuffer(data, dtype=schema.dtype, count=n_records).copy()
    return RecordBatch(schema, array)
