"""Fixed-size record schema and codec.

The paper's experiments stream fixed-size records (50 B in Experiments 1
and 3, 1 KB in Experiment 2, 100 B in the motivating calculations).  A
:class:`Record` carries the fields the rest of the library needs --
a unique key, a numeric attribute for approximate query processing, and
a timestamp for time-biased sampling -- plus opaque padding up to the
configured record size.

Handling variable-size records is listed as future work in Section 10 of
the paper; this codec keeps the paper's fixed-size assumption, and the
record size is the knob benchmarks turn between Experiments 1 and 2.

Two encodings of the same byte layout coexist:

* the scalar codec (:meth:`RecordSchema.encode` / ``decode``), one
  compiled :class:`struct.Struct` call per record, cached per
  ``(record_size, weighted)`` pair;
* the columnar codec (:meth:`RecordSchema.encode_many` /
  ``decode_many``), one ``tobytes`` / ``np.frombuffer`` per *segment*
  over the packed structured :attr:`RecordSchema.dtype`.

The two are byte-identical by construction (property-tested), so disk
images and :class:`~repro.storage.device.DiskStats` accounting never
depend on which path produced them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np


# key (int64), value (float64), timestamp (float64)
_HEADER = struct.Struct("<qdd")
#: Smallest representable record: just the three header fields.
MIN_RECORD_SIZE = _HEADER.size

# weight (float64) prepended for weighted records
_WEIGHT = struct.Struct("<d")


@lru_cache(maxsize=None)
def _full_struct(record_size: int, weighted: bool) -> struct.Struct:
    """One compiled codec for a whole record slot.

    The ``{pad}s`` tail both zero-pads short payloads and truncates
    long ones -- exactly the scalar ``encode`` contract -- so one
    ``pack`` call replaces the head/body/padding concatenation.
    """
    head = ("<d" if weighted else "<") + "qdd"
    pad = record_size - MIN_RECORD_SIZE - (_WEIGHT.size if weighted else 0)
    return struct.Struct(head + (f"{pad}s" if pad else ""))


@lru_cache(maxsize=None)
def _batch_dtype(record_size: int, weighted: bool) -> np.dtype:
    """Packed structured dtype matching the scalar codec byte-for-byte."""
    fields: list[tuple[str, str]] = []
    if weighted:
        fields.append(("weight", "<f8"))
    fields += [("key", "<i8"), ("value", "<f8"), ("timestamp", "<f8")]
    pad = record_size - MIN_RECORD_SIZE - (_WEIGHT.size if weighted else 0)
    if pad:
        fields.append(("payload", f"V{pad}"))
    dtype = np.dtype(fields)
    if dtype.itemsize != record_size:
        raise AssertionError(
            f"dtype itemsize {dtype.itemsize} != record_size {record_size}"
        )
    return dtype


@dataclass(frozen=True)
class Record:
    """One stream record.

    Attributes:
        key: unique identifier (the stream assigns sequence numbers).
        value: numeric attribute used by estimators and example queries.
        timestamp: production time; drives time-biased weighting.
        payload: opaque filler bytes; the codec pads/truncates to the
            schema's record size, so this usually stays empty.
    """

    key: int
    value: float = 0.0
    timestamp: float = 0.0
    payload: bytes = b""


@dataclass(frozen=True)
class WeightedRecord:
    """A record plus its *effective weight* (paper Section 7.3.1).

    The geometric file stores ``record.weight`` on disk next to the
    record; the per-subsample multiplier lives in memory.  The true
    weight of the record is ``multiplier * weight`` (Definition 2).
    """

    record: Record
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weights must be non-negative")


class RecordSchema:
    """A fixed record size plus derived layout numbers.

    Args:
        record_size: bytes per record on disk (>= MIN_RECORD_SIZE).
        weighted: reserve 8 extra header bytes for the effective weight.
    """

    def __init__(self, record_size: int, *, weighted: bool = False) -> None:
        minimum = MIN_RECORD_SIZE + (_WEIGHT.size if weighted else 0)
        if record_size < minimum:
            raise ValueError(
                f"record_size {record_size} below minimum {minimum}"
            )
        self.record_size = record_size
        self.weighted = weighted
        self._codec = _full_struct(record_size, weighted)
        self._padded = record_size > minimum

    def __reduce__(self):
        # The cached struct.Struct codec is unpicklable; rebuild from
        # the two defining parameters instead (cache makes it cheap).
        return _rebuild_schema, (self.record_size, self.weighted)

    def __eq__(self, other) -> bool:
        return (isinstance(other, RecordSchema)
                and self.record_size == other.record_size
                and self.weighted == other.weighted)

    def __hash__(self) -> int:
        return hash((self.record_size, self.weighted))

    @property
    def dtype(self) -> np.dtype:
        """Packed numpy structured dtype of one record slot.

        Field order and widths mirror the scalar codec exactly
        (``weight?``, ``key``, ``value``, ``timestamp``, ``payload``
        padding), so ``np.frombuffer(encoded, schema.dtype)`` is a
        zero-copy decode of anything :meth:`encode` produced.
        """
        return _batch_dtype(self.record_size, self.weighted)

    def records_per_block(self, block_size: int) -> int:
        """How many whole records fit in one device block."""
        n = block_size // self.record_size
        if n < 1:
            raise ValueError(
                f"record of {self.record_size} B does not fit in a "
                f"{block_size} B block"
            )
        return n

    def blocks_for_records(self, n_records: int, block_size: int) -> int:
        """Blocks needed to hold ``n_records`` (packed, last block padded)."""
        if n_records < 0:
            raise ValueError("record count must be non-negative")
        per_block = self.records_per_block(block_size)
        return -(-n_records // per_block)  # ceiling division

    # -- encoding ---------------------------------------------------------

    def encode(self, record: Record, weight: float | None = None) -> bytes:
        """Pack one record into exactly ``record_size`` bytes."""
        if self.weighted:
            w = 1.0 if weight is None else weight
            if self._padded:
                return self._codec.pack(w, record.key, record.value,
                                        record.timestamp, record.payload)
            return self._codec.pack(w, record.key, record.value,
                                    record.timestamp)
        if weight is not None:
            raise ValueError("schema is unweighted; cannot store a weight")
        if self._padded:
            return self._codec.pack(record.key, record.value,
                                    record.timestamp, record.payload)
        return self._codec.pack(record.key, record.value, record.timestamp)

    def decode(self, data: bytes) -> Record | WeightedRecord:
        """Unpack one record slot.

        Returns a :class:`WeightedRecord` for weighted schemas, a plain
        :class:`Record` otherwise.  Padding bytes are dropped.
        """
        if len(data) != self.record_size:
            raise ValueError(
                f"expected {self.record_size} bytes, got {len(data)}"
            )
        offset = 0
        weight = None
        if self.weighted:
            (weight,) = _WEIGHT.unpack_from(data, 0)
            offset = _WEIGHT.size
        key, value, timestamp = _HEADER.unpack_from(data, offset)
        payload = data[offset + _HEADER.size:].rstrip(b"\x00")
        record = Record(key=key, value=value, timestamp=timestamp,
                        payload=payload)
        if self.weighted:
            return WeightedRecord(record=record, weight=weight)
        return record

    def encode_batch(self, records: list[Record],
                     weights: list[float] | None = None) -> bytes:
        """Pack a list of records back-to-back.

        One preallocated output buffer and one compiled ``pack_into``
        per record -- no per-record bytes objects or generator join.
        """
        if weights is not None:
            if not self.weighted:
                raise ValueError(
                    "schema is unweighted; cannot store a weight")
            if len(weights) != len(records):
                raise ValueError("weights must match records one-to-one")
        size = self.record_size
        out = bytearray(len(records) * size)
        pack_into = self._codec.pack_into
        if self.weighted:
            if weights is None:
                weights = (1.0,) * len(records)
            if self._padded:
                for i, (r, w) in enumerate(zip(records, weights)):
                    pack_into(out, i * size, w, r.key, r.value,
                              r.timestamp, r.payload)
            else:
                for i, (r, w) in enumerate(zip(records, weights)):
                    pack_into(out, i * size, w, r.key, r.value, r.timestamp)
        elif self._padded:
            for i, r in enumerate(records):
                pack_into(out, i * size, r.key, r.value, r.timestamp,
                          r.payload)
        else:
            for i, r in enumerate(records):
                pack_into(out, i * size, r.key, r.value, r.timestamp)
        return bytes(out)

    def decode_batch(self, data: bytes, n_records: int):
        """Unpack ``n_records`` packed records from ``data``."""
        need = n_records * self.record_size
        if len(data) < need:
            raise ValueError("not enough bytes for requested records")
        return [
            self.decode(data[i * self.record_size:(i + 1) * self.record_size])
            for i in range(n_records)
        ]

    # -- columnar (zero-copy) encoding ------------------------------------

    def encode_many(self, batch) -> bytes:
        """Serialize a :class:`~repro.storage.recordbatch.RecordBatch`
        (or a matching structured ndarray) in one ``tobytes`` call.

        Byte-identical to :meth:`encode_batch` over the same records.
        """
        array = getattr(batch, "array", batch)
        if array.dtype != self.dtype:
            raise ValueError(
                f"batch dtype {array.dtype} does not match schema "
                f"dtype {self.dtype}"
            )
        return np.ascontiguousarray(array).tobytes()

    def decode_many(self, data: bytes, n_records: int | None = None):
        """Zero-copy columnar decode: one ``np.frombuffer`` per call.

        Returns a read-only :class:`~repro.storage.recordbatch.\
RecordBatch` viewing ``data`` directly (copy it before mutating).
        """
        from .recordbatch import RecordBatch

        return RecordBatch.from_bytes(self, data, n_records)


def _rebuild_schema(record_size: int, weighted: bool) -> RecordSchema:
    """Pickle target for :class:`RecordSchema` (weighted is kw-only)."""
    return RecordSchema(record_size, weighted=weighted)
