"""Striping a block address space over several simulated spindles.

The paper's introduction does its virtual-memory arithmetic on a
multi-disk volume: "a terabyte of storage requires as few as five
disks, giving us a random I/O capacity of only around 500 disk head
movements per second.  This means we can sample only 250 records per
second."  :class:`StripedBlockDevice` models that volume: a flat block
space striped round-robin (in ``stripe_blocks`` chunks) over ``m``
independent :class:`~repro.storage.disk_model.DiskModel` spindles.

Timing model: the spindles operate in parallel, so the volume's clock
is the *maximum* of the member clocks -- an idealised array in which
independent requests overlap perfectly.  A large sequential transfer
therefore streams at up to ``m`` times a single spindle's rate, while a
random single-block access still costs one full seek on whichever
spindle owns the block.  Both effects are exactly the intuition behind
the paper's arithmetic, and the striping ablation benchmark
(``benchmarks/test_striping.py``) reproduces the 250-records-per-second
figure.

The device is cost-only (reads return zeros); the structures never read
their own data on the write path anyway, and payload-retaining runs use
a single simulated or real device.
"""

from __future__ import annotations

from ..obs.deprecation import warn_deprecated
from .disk_model import DiskModel, DiskParameters, DiskStats


class StripedBlockDevice:
    """A cost-only block device striped over ``n_disks`` spindles.

    Args:
        n_blocks: total volume capacity in blocks.
        n_disks: number of spindles (the paper's terabyte volume: 5).
        params: per-spindle parameters (the paper's measured disk).
        stripe_blocks: consecutive blocks placed on one spindle before
            rotating to the next.  One 32 KB block per stripe unit by
            default, which maximises sequential parallelism.
    """

    def __init__(self, n_blocks: int, n_disks: int = 5,
                 params: DiskParameters | None = None,
                 *, stripe_blocks: int = 1) -> None:
        if n_blocks < 1:
            raise ValueError("device must have at least one block")
        if n_disks < 1:
            raise ValueError("need at least one spindle")
        if stripe_blocks < 1:
            raise ValueError("stripe unit must be at least one block")
        self.params = params or DiskParameters()
        self._n_blocks = n_blocks
        self.n_disks = n_disks
        self.stripe_blocks = stripe_blocks
        self.disks = [DiskModel(self.params) for _ in range(n_disks)]

    # -- BlockDevice protocol ------------------------------------------------

    @property
    def block_size(self) -> int:
        return self.params.block_size

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    def read_blocks(self, block: int, n_blocks: int) -> bytes:
        self._access(block, n_blocks, write=False)
        return bytes(n_blocks * self.block_size)

    def write_blocks(self, block: int, data: bytes) -> None:
        if len(data) % self.block_size != 0:
            raise ValueError("data must be a whole number of blocks")
        self._access(block, len(data) // self.block_size, write=True)

    def charge_write(self, block: int, n_blocks: int) -> bool:
        """Fast path for :func:`repro.storage.device.write_zeros`."""
        self._access(block, n_blocks, write=True)
        return True

    def charge_read(self, block: int, n_blocks: int) -> bool:
        """Fast path for :func:`repro.storage.device.read_discard`."""
        self._access(block, n_blocks, write=False)
        return True

    def sync(self) -> None:  # noqa: D102 - simulated device is durable
        pass

    def charge_seek(self) -> None:
        """Charge one bare head movement, rotating over spindles.

        Modelled overheads (boundary read-modify-writes, stack-pointer
        nudges) have no fixed address, so spreading them round-robin
        matches how the addressed operations themselves stripe.
        """
        self._seek_cursor = (getattr(self, "_seek_cursor", -1) + 1) \
            % self.n_disks
        self.disks[self._seek_cursor].charge_seek()

    # -- observers -------------------------------------------------------------

    @property
    def clock(self) -> float:
        """Volume time: the busiest spindle's clock (parallel array)."""
        return max(disk.clock for disk in self.disks)

    @property
    def model(self) -> DiskModel:
        """The busiest spindle (duck-type compatibility for harnesses
        that read ``device.model.stats``; use :meth:`stats` for
        volume-wide counters)."""
        return max(self.disks, key=lambda d: d.clock)

    def stats(self) -> DiskStats:
        """Sum of all spindles' counters."""
        total = DiskStats()
        for disk in self.disks:
            s = disk.stats
            total.seeks += s.seeks
            total.reads += s.reads
            total.writes += s.writes
            total.blocks_read += s.blocks_read
            total.blocks_written += s.blocks_written
            total.sequential_blocks += s.sequential_blocks
            total.seek_seconds += s.seek_seconds
            total.transfer_seconds += s.transfer_seconds
        return total

    def combined_stats(self) -> DiskStats:
        """Deprecated alias for :meth:`stats`."""
        warn_deprecated("StripedBlockDevice.combined_stats()", "stats()")
        return self.stats()

    def instrument(self, registry, *, name: str = "disk") -> None:
        """Mirror every spindle's counters into ``registry``.

        All spindles share the ``structure=name`` label, so the
        registry hands them the same counter objects and the metrics
        are automatically the volume-wide sums -- equal to
        :meth:`stats`.

        Args:
            registry: a :class:`repro.obs.MetricsRegistry`.
            name: value of the ``structure`` label.
        """
        for disk in self.disks:
            disk.instrument(registry, name=name)

    # -- internals ----------------------------------------------------------------

    def _disk_of(self, block: int) -> int:
        return (block // self.stripe_blocks) % self.n_disks

    def _access(self, block: int, n_blocks: int, *, write: bool) -> None:
        if block < 0 or n_blocks < 1:
            raise ValueError("invalid block range")
        if block + n_blocks > self._n_blocks:
            raise ValueError(
                f"access [{block}, {block + n_blocks}) beyond volume "
                f"of {self._n_blocks} blocks"
            )
        # Walk the range stripe unit by stripe unit, charging each
        # spindle one access per contiguous run it owns.  Runs on the
        # same spindle separated only by other spindles' stripes are
        # physically contiguous there, so the per-spindle head tracking
        # keeps them sequential automatically.
        position = block
        remaining = n_blocks
        while remaining > 0:
            unit_end = ((position // self.stripe_blocks) + 1) \
                * self.stripe_blocks
            run = min(remaining, unit_end - position)
            disk_index = self._disk_of(position)
            # The spindle-local address: which of its own stripe units
            # this is, preserving intra-disk contiguity.
            stripe_number = position // (self.stripe_blocks * self.n_disks)
            local = (stripe_number * self.stripe_blocks
                     + position % self.stripe_blocks)
            self.disks[disk_index].access(local, run, write=write)
            position += run
            remaining -= run
