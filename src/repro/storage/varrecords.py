"""Variable-size record encoding (paper Section 10).

"One obvious direction for future work is handling the case where
record size is variable."  The storage-level prerequisite is a codec
that packs records of different lengths into block runs and gets them
back; this module provides it, with the framing a disk structure
needs:

* each record is length-prefixed (u32) so runs are self-describing;
* :meth:`VariableRecordCodec.pack` fills a byte budget greedily and
  reports what did not fit, which is exactly the primitive a
  bytes-denominated segment ladder needs (size a segment in bytes,
  pack records until full, spill the remainder to the stack);
* a packed run round-trips through any block device.

How the geometric file would consume this (design sketch, documented
rather than implemented, since the paper leaves the algorithmics open):
Lemma 1 and the segment ladders are denominated in *records* because
eviction probability is per record.  With variable sizes the physical
ladder must be denominated in bytes while the sampling ledger stays in
records; the LIFO stacks then absorb not only count variance
(Section 4.5) but byte-packing variance, so the 3*sqrt(B) sizing rule
would need an extra term for the record-size distribution's coefficient
of variation.  The codec below, plus the ledgers' existing
surplus/debt machinery, are the load-bearing pieces either way.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from .records import Record

_LENGTH = struct.Struct("<I")
_HEADER = struct.Struct("<qdd")  # key, value, timestamp


class VariableRecordCodec:
    """Length-prefixed encoding of records with arbitrary payloads.

    Args:
        max_record_bytes: upper bound on one encoded record (a sanity
            limit; a record bigger than any segment could never be
            placed).
    """

    def __init__(self, max_record_bytes: int = 1 << 20) -> None:
        if max_record_bytes < self.overhead:
            raise ValueError("max_record_bytes below fixed overhead")
        self.max_record_bytes = max_record_bytes

    #: Fixed bytes per record: length prefix + key/value/timestamp.
    overhead = _LENGTH.size + _HEADER.size

    def encoded_size(self, record: Record) -> int:
        """Bytes :meth:`encode` will produce for this record."""
        return self.overhead + len(record.payload)

    def encode(self, record: Record) -> bytes:
        size = self.encoded_size(record)
        if size > self.max_record_bytes:
            raise ValueError(
                f"record of {size} B exceeds the {self.max_record_bytes} B "
                f"limit"
            )
        body = _HEADER.pack(record.key, record.value, record.timestamp) \
            + record.payload
        return _LENGTH.pack(len(body)) + body

    def decode_run(self, data: bytes) -> list[Record]:
        """Decode a packed run produced by :meth:`pack`.

        Trailing zero padding (an all-zero length prefix) terminates
        the run, so runs may be block-padded freely.
        """
        records: list[Record] = []
        offset = 0
        while offset + _LENGTH.size <= len(data):
            (length,) = _LENGTH.unpack_from(data, offset)
            if length == 0:
                break
            offset += _LENGTH.size
            if offset + length > len(data):
                raise ValueError("truncated record run")
            if length < _HEADER.size:
                raise ValueError("corrupt record header")
            key, value, timestamp = _HEADER.unpack_from(data, offset)
            payload = bytes(data[offset + _HEADER.size:offset + length])
            records.append(Record(key=key, value=value,
                                  timestamp=timestamp, payload=payload))
            offset += length
        return records

    def pack(self, records: Iterable[Record], budget_bytes: int
             ) -> tuple[bytes, list[Record]]:
        """Pack records into at most ``budget_bytes``, preserving order.

        Returns ``(run, overflow)``: the encoded run (unpadded) and the
        records that did not fit.  Packing is first-fit in order --
        reordering would break the exchangeability argument the
        sampling structures rely on (a prefix of a shuffled list must
        stay a uniform subset).

        Raises:
            ValueError: if the budget cannot hold even an empty run
                terminator.
        """
        if budget_bytes < _LENGTH.size:
            raise ValueError("budget smaller than a run terminator")
        records = list(records)
        # Pass 1: sizes only, finding the first record that does not
        # fit (keeping room for the zero terminator).
        sizes: list[int] = []
        used = 0
        cut = len(records)
        for i, record in enumerate(records):
            size = self.encoded_size(record)
            if size > self.max_record_bytes:
                raise ValueError(
                    f"record of {size} B exceeds the "
                    f"{self.max_record_bytes} B limit"
                )
            if used + size + _LENGTH.size > budget_bytes:
                cut = i
                break
            sizes.append(size)
            used += size
        overflow = records[cut:]
        # Pass 2: one exact-size allocation, framed in place -- no
        # per-record bytes objects, no join.  The fresh bytearray is
        # already zeroed, which doubles as the run terminator.
        out = bytearray(used + _LENGTH.size)
        offset = 0
        pack_length = _LENGTH.pack_into
        pack_header = _HEADER.pack_into
        header_end = self.overhead
        for record, size in zip(records, sizes):
            pack_length(out, offset, size - _LENGTH.size)
            pack_header(out, offset + _LENGTH.size,
                        record.key, record.value, record.timestamp)
            payload = record.payload
            if payload:
                start = offset + header_end
                out[start:start + len(payload)] = payload
            offset += size
        return bytes(out), overflow

    def pad_to_blocks(self, run: bytes, block_size: int) -> bytes:
        """Zero-pad a run to a whole number of blocks."""
        if block_size < 1:
            raise ValueError("block size must be positive")
        remainder = len(run) % block_size
        if remainder == 0:
            return run
        return run + b"\x00" * (block_size - remainder)

    def total_encoded_size(self, records: Sequence[Record]) -> int:
        """Bytes needed for all records plus the run terminator."""
        return sum(self.encoded_size(r) for r in records) + _LENGTH.size
