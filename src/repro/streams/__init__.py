"""Synthetic data streams used by examples, tests and benchmarks."""

from .base import CountingStream, DataStream, TransformedStream, take
from .generators import (
    LogNormalStream,
    MixtureStream,
    NormalStream,
    UniformStream,
    ZipfStream,
)
from .sensor import SensorStream

__all__ = [
    "CountingStream",
    "DataStream",
    "LogNormalStream",
    "MixtureStream",
    "NormalStream",
    "SensorStream",
    "TransformedStream",
    "UniformStream",
    "ZipfStream",
    "take",
]
