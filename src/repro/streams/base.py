"""Data stream abstractions.

The paper's setting is a single pass over an unbounded stream: records
arrive one at a time, each is seen once, and the reservoir must be a
valid snapshot at all times.  A stream here is simply an iterator of
:class:`~repro.storage.records.Record` objects with a couple of
conveniences (peeking at how many records have been produced, slicing a
finite prefix for tests).

All generators are seeded and deterministic: the same seed yields the
same stream, which the tests rely on.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from ..storage.records import Record


@runtime_checkable
class DataStream(Protocol):
    """Anything that yields records and counts them."""

    def __iter__(self) -> Iterator[Record]:
        ...

    @property
    def produced(self) -> int:
        """Records handed out so far."""
        ...


class CountingStream:
    """Wrap any record iterable with a ``produced`` counter.

    This adapter lets plain lists or generator expressions be used
    wherever a :class:`DataStream` is expected.
    """

    def __init__(self, records: Iterable[Record]) -> None:
        self._source = iter(records)
        self._produced = 0

    @property
    def produced(self) -> int:
        return self._produced

    def __iter__(self) -> Iterator[Record]:
        return self

    def __next__(self) -> Record:
        record = next(self._source)
        self._produced += 1
        return record


def take(stream: Iterable[Record], n: int) -> list[Record]:
    """Materialise exactly the first ``n`` records of a stream.

    Consumes exactly ``n`` records (no look-ahead), so interleaved use
    with the stream's own ``produced`` counter stays consistent.
    """
    if n < 0:
        raise ValueError("cannot take a negative number of records")
    iterator = iter(stream)
    out: list[Record] = []
    while len(out) < n:
        try:
            out.append(next(iterator))
        except StopIteration:
            raise ValueError(
                f"stream exhausted after {len(out)} records, wanted {n}"
            ) from None
    return out


class TransformedStream:
    """Apply a function to every record of an underlying stream.

    Used, e.g., to stamp arrival timestamps or rewrite values for
    ablation workloads without touching the generator itself.
    """

    def __init__(self, stream: Iterable[Record],
                 fn: Callable[[Record], Record]) -> None:
        self._inner = CountingStream(stream)
        self._fn = fn

    @property
    def produced(self) -> int:
        return self._inner.produced

    def __iter__(self) -> Iterator[Record]:
        return self

    def __next__(self) -> Record:
        return self._fn(next(self._inner))
