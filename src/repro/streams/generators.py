"""Synthetic stream generators.

The paper benchmarks against "a synthetic data stream" (Section 8) and
motivates the need for very large samples with heavy-tailed attributes
(the household-net-worth example of Section 2, standard deviation
$5,000,000 around a mean of $140,000).  These generators cover both:
well-behaved streams for correctness tests and skewed streams whose
estimation error genuinely needs large samples.

Every generator is an infinite, seeded iterator of
:class:`~repro.storage.records.Record`; keys are consecutive sequence
numbers starting at 0, timestamps advance by a configurable tick.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from ..storage.records import Record


class _SeededStream:
    """Shared plumbing: RNG, sequence keys, timestamps, counters."""

    def __init__(self, seed: int | None, tick: float) -> None:
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self._rng = random.Random(seed)
        self._tick = tick
        self._produced = 0

    @property
    def produced(self) -> int:
        return self._produced

    def __iter__(self) -> Iterator[Record]:
        return self

    def __next__(self) -> Record:
        key = self._produced
        record = Record(
            key=key,
            value=self._draw(),
            timestamp=key * self._tick,
        )
        self._produced += 1
        return record

    def _draw(self) -> float:
        raise NotImplementedError


class UniformStream(_SeededStream):
    """Values uniform on ``[low, high)``."""

    def __init__(self, low: float = 0.0, high: float = 1.0,
                 seed: int | None = 0, tick: float = 1.0) -> None:
        if high <= low:
            raise ValueError("need high > low")
        super().__init__(seed, tick)
        self._low = low
        self._high = high

    def _draw(self) -> float:
        return self._rng.uniform(self._low, self._high)


class NormalStream(_SeededStream):
    """Gaussian values -- the student-age example of Section 2."""

    def __init__(self, mean: float = 20.0, std: float = 2.0,
                 seed: int | None = 0, tick: float = 1.0) -> None:
        if std < 0:
            raise ValueError("standard deviation must be non-negative")
        super().__init__(seed, tick)
        self._mean = mean
        self._std = std

    def _draw(self) -> float:
        return self._rng.gauss(self._mean, self._std)


class LogNormalStream(_SeededStream):
    """Heavy-tailed values -- the net-worth example of Section 2.

    Parameterised by the *target* mean and standard deviation of the
    resulting lognormal; the underlying normal parameters are solved
    analytically.  The Section 2 defaults (mean 140,000, std 5,000,000)
    make mean estimation need millions of samples, which is exactly the
    paper's point.
    """

    def __init__(self, mean: float = 140_000.0, std: float = 5_000_000.0,
                 seed: int | None = 0, tick: float = 1.0) -> None:
        if mean <= 0 or std <= 0:
            raise ValueError("lognormal mean and std must be positive")
        super().__init__(seed, tick)
        variance_ratio = 1.0 + (std / mean) ** 2
        self._sigma = math.sqrt(math.log(variance_ratio))
        self._mu = math.log(mean) - 0.5 * self._sigma ** 2

    def _draw(self) -> float:
        return self._rng.lognormvariate(self._mu, self._sigma)


class ZipfStream(_SeededStream):
    """Zipf-distributed integer values over ``{1..n_values}``.

    Uses inverse-CDF sampling over a precomputed table, so draws are
    O(log n).  Skewed categorical values exercise the group-by AQP
    example where rare groups are the accuracy bottleneck.
    """

    def __init__(self, n_values: int = 1000, exponent: float = 1.1,
                 seed: int | None = 0, tick: float = 1.0) -> None:
        if n_values < 1:
            raise ValueError("need at least one value")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        super().__init__(seed, tick)
        weights = [1.0 / (k ** exponent) for k in range(1, n_values + 1)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float round-off

    def _draw(self) -> float:
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return float(lo + 1)


class MixtureStream(_SeededStream):
    """A finite mixture of component streams' value distributions.

    Args:
        components: list of (weight, stream) pairs; weights need not be
            normalised.  Each draw picks a component by weight and takes
            that component's next value.
    """

    def __init__(self, components: list[tuple[float, _SeededStream]],
                 seed: int | None = 0, tick: float = 1.0) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        if any(w <= 0 for w, _ in components):
            raise ValueError("component weights must be positive")
        super().__init__(seed, tick)
        total = sum(w for w, _ in components)
        self._weights = [w / total for w, _ in components]
        self._streams = [s for _, s in components]

    def _draw(self) -> float:
        component = self._rng.choices(self._streams,
                                      weights=self._weights)[0]
        return component._draw()
