"""Sensor-network stream.

The paper motivates both very large samples ("futuristic smart dust
environments where billions of tiny sensors produce billions of
observations per second", Section 1) and biased sampling ("most queries
will be over recent sensor readings", Section 7).  This generator
produces timestamped readings from a field of sensors so that the
biased-sampling example and benchmarks have a realistic workload:

* each record's ``key`` is a global sequence number;
* ``value`` is the reading: a per-sensor baseline plus a slow regional
  drift plus noise, so both per-region aggregates and global aggregates
  are meaningful;
* ``timestamp`` advances by an exponential inter-arrival time, so
  "recent" is a real notion;
* ``payload`` carries ``sensor_id,region`` so AQP examples can group.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from ..storage.records import Record


class SensorStream:
    """Readings from ``n_sensors`` spread over ``n_regions`` regions.

    Args:
        n_sensors: size of the sensor field.
        n_regions: sensors are assigned round-robin to regions.
        rate: mean arrivals per second (exponential inter-arrival).
        drift_period: seconds per full cycle of the regional drift.
        noise_std: per-reading Gaussian noise.
        seed: RNG seed.
    """

    def __init__(self, n_sensors: int = 1000, n_regions: int = 10,
                 rate: float = 1000.0, drift_period: float = 3600.0,
                 noise_std: float = 1.0, seed: int | None = 0) -> None:
        if n_sensors < 1 or n_regions < 1:
            raise ValueError("need at least one sensor and one region")
        if rate <= 0 or drift_period <= 0:
            raise ValueError("rate and drift_period must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self._rng = random.Random(seed)
        self._n_sensors = n_sensors
        self._n_regions = n_regions
        self._rate = rate
        self._drift_period = drift_period
        self._noise_std = noise_std
        self._clock = 0.0
        self._produced = 0
        # Stable per-sensor baselines around a regional level.
        self._baselines = [
            20.0 + 5.0 * (s % n_regions) + self._rng.gauss(0.0, 2.0)
            for s in range(n_sensors)
        ]

    @property
    def produced(self) -> int:
        return self._produced

    @property
    def n_regions(self) -> int:
        return self._n_regions

    @staticmethod
    def parse_payload(record: Record) -> tuple[int, int]:
        """Recover ``(sensor_id, region)`` from a record's payload."""
        sensor_text, region_text = record.payload.decode("ascii").split(",")
        return int(sensor_text), int(region_text)

    def region_of(self, sensor_id: int) -> int:
        """Region a sensor belongs to (round-robin assignment)."""
        return sensor_id % self._n_regions

    def __iter__(self) -> Iterator[Record]:
        return self

    def __next__(self) -> Record:
        self._clock += self._rng.expovariate(self._rate)
        sensor = self._rng.randrange(self._n_sensors)
        region = self.region_of(sensor)
        drift = 3.0 * math.sin(
            2.0 * math.pi * self._clock / self._drift_period + region
        )
        value = (self._baselines[sensor] + drift
                 + self._rng.gauss(0.0, self._noise_std))
        record = Record(
            key=self._produced,
            value=value,
            timestamp=self._clock,
            payload=f"{sensor},{region}".encode("ascii"),
        )
        self._produced += 1
        return record
