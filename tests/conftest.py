"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import signal

import pytest

from repro.core.geometric_file import GeometricFile, GeometricFileConfig
from repro.core.multi import MultiFileConfig, MultipleGeometricFiles
from repro.storage.device import SimulatedBlockDevice
from repro.storage.disk_model import DiskParameters
from repro.storage.records import Record

#: Small block size so unit-test scales still have multi-block segments.
TEST_BLOCK = 4096


def small_disk_params() -> DiskParameters:
    return DiskParameters(seek_time=0.010, transfer_rate=40 * 1024 * 1024,
                          block_size=TEST_BLOCK)


def make_geometric_file(capacity=2000, buffer_capacity=100, record_size=40,
                        *, retain_records=True, admission="uniform",
                        seed=0, **kwargs) -> GeometricFile:
    """A small geometric file on a fresh simulated device.

    The in-memory tail group defaults to a tenth of the buffer so small
    test configurations still exercise the disk ladder (the library's
    own default of one block's worth would swallow a 50-record buffer
    whole).
    """
    kwargs.setdefault("beta_records", max(4, buffer_capacity // 10))
    config = GeometricFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=record_size, retain_records=retain_records,
        admission=admission, **kwargs,
    )
    blocks = GeometricFile.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return GeometricFile(device, config, seed=seed)


def make_multi_file(capacity=2000, buffer_capacity=100, record_size=40,
                    *, retain_records=True, admission="uniform",
                    alpha_prime=0.9, seed=0,
                    **kwargs) -> MultipleGeometricFiles:
    """A small multi-file structure on a fresh simulated device."""
    kwargs.setdefault("beta_records", max(4, buffer_capacity // 10))
    config = MultiFileConfig(
        capacity=capacity, buffer_capacity=buffer_capacity,
        record_size=record_size, retain_records=retain_records,
        admission=admission, alpha_prime=alpha_prime, **kwargs,
    )
    blocks = MultipleGeometricFiles.required_blocks(config, TEST_BLOCK)
    device = SimulatedBlockDevice(blocks, small_disk_params())
    return MultipleGeometricFiles(device, config, seed=seed)


def keyed_records(n: int) -> list[Record]:
    """Records with key == index, value == key, timestamp == key."""
    return [Record(key=i, value=float(i), timestamp=float(i))
            for i in range(n)]


@pytest.fixture
def records100() -> list[Record]:
    return keyed_records(100)


#: Per-test ceiling for the threaded pipeline tests: a writer-thread
#: deadlock must fail loudly, not hang the whole run.
PIPELINE_TEST_TIMEOUT = 60


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM deadlock guard for ``-m pipeline`` tests.

    CI layers pytest-timeout on top; this fallback keeps the guarantee
    on machines without the plugin.  Main-thread-only (SIGALRM), which
    is where pytest runs tests.
    """
    if (item.get_closest_marker("pipeline") is None
            or not hasattr(signal, "SIGALRM")):
        return (yield)

    def _trip(signum, frame):
        raise TimeoutError(
            f"pipeline test exceeded {PIPELINE_TEST_TIMEOUT}s; likely a "
            f"writer-thread deadlock (submit/barrier never returned)"
        )

    previous = signal.signal(signal.SIGALRM, _trip)
    signal.alarm(PIPELINE_TEST_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
