"""Tests for the analytical cost model and stack-bound arithmetic."""

import math

import pytest

from conftest import make_geometric_file
from repro.analysis import (
    files_needed,
    geometric_flush_cost,
    local_overwrite_saturated_cohorts,
    multi_file_storage_blowup,
    no_overflow_probability,
    omega,
    overflow_probability,
    required_multiplier,
    scan_flush_cost,
    seeks_per_flush,
    seeks_per_record,
    segments_per_flush,
    subsample_size_sigma,
    survival_probability,
    virtual_memory_record_cost,
    worst_case_sigma,
)
from repro.storage.disk_model import DiskParameters


class TestCostModel:
    def test_segments_match_geometry(self):
        assert segments_per_flush(10 ** 7, 0.99, 320) == 1029

    def test_omega_values(self):
        # omega = 1/log2(1/alpha'); small alpha' means few segments.
        assert omega(0.5) == pytest.approx(1.0)
        assert omega(0.9) == pytest.approx(6.579, rel=0.01)
        # The introduction's "down to 20 or so in practice".
        assert omega(0.97) == pytest.approx(22.76, rel=0.01)

    def test_omega_times_log_recovers_segment_count(self):
        buffer, alpha_prime, beta = 10 ** 7, 0.9, 320
        predicted = omega(alpha_prime) * (math.log2(buffer)
                                          - math.log2(beta))
        actual = segments_per_flush(buffer, alpha_prime, beta)
        assert actual == pytest.approx(predicted, abs=1.5)

    def test_section5_seek_time_comparison(self):
        """'1029 segments might mean around 40 seconds of disk time in
        random I/Os (at 10ms each), whereas 10,344 might mean 400.'"""
        seeks_99 = seeks_per_flush(10 ** 7, 0.99, 320)
        seeks_999 = seeks_per_flush(10 ** 7, 0.999, 320)
        assert seeks_99 * 0.010 == pytest.approx(41.2, rel=0.02)
        assert seeks_999 * 0.010 == pytest.approx(413.8, rel=0.02)

    def test_section6_four_seconds_per_gigabyte(self):
        """'At 4 seeks per segment, this is only 4 seconds of random
        disk head movements to write 1 GB of new samples.'"""
        cost = geometric_flush_cost(10 ** 7, 100, 0.9, 320)
        assert cost.seek_seconds == pytest.approx(4.0, abs=0.4)

    def test_transfer_time_for_1gb_buffer(self):
        """'The time required to write 1 GB sequentially is only around
        25 seconds' (at 40 MB/s)."""
        cost = geometric_flush_cost(10 ** 7, 100, 0.9, 320)
        assert cost.transfer_seconds == pytest.approx(25.0, rel=0.1)

    def test_single_file_is_seek_dominated(self):
        cost = geometric_flush_cost(10 ** 7, 100, 0.999, 320)
        assert cost.random_io_fraction > 0.9

    def test_scan_cost(self):
        cost = scan_flush_cost(10 ** 9, 10 ** 7, 50)
        # 2 x 50 GB at 40 MB/s ~ 2560 seconds.
        assert cost.transfer_seconds == pytest.approx(2560, rel=0.07)

    def test_virtual_memory_paper_arithmetic(self):
        """'We can sample only 250 records per second at 10 ms per
        random I/O with one terabyte of storage' -- i.e. 5 spindles at
        ~50 records/second each; we model a single spindle."""
        per_record = virtual_memory_record_cost(record_size=100)
        assert 1.0 / per_record == pytest.approx(50, rel=0.1)

    def test_files_needed(self):
        assert files_needed(10 ** 9, 10 ** 7, 0.9) == 10

    def test_storage_blowup(self):
        # 1 TB reservoir at alpha' = 0.9 -> 1.1 TB total.
        assert multi_file_storage_blowup(0.9) == pytest.approx(1.1)

    def test_local_overwrite_saturation(self):
        # ln(1e7) / -ln(0.99) = 1603.7 -> 1604 live cohorts at most.
        assert local_overwrite_saturated_cohorts(10 ** 7, 0.99) == 1604

    def test_validation(self):
        with pytest.raises(ValueError):
            omega(1.0)
        with pytest.raises(ValueError):
            seeks_per_flush(100, 0.9, 10, seeks_per_segment=0)
        with pytest.raises(ValueError):
            local_overwrite_saturated_cohorts(0, 0.9)


class TestCostModelAgainstSimulator:
    def test_predicted_seeks_bracket_measured(self):
        """The closed form and the simulator must agree on seeks/flush."""
        # A scale where no ladder rung rounds to zero, so the closed
        # form and the built structure see the same segment count.
        gf = make_geometric_file(capacity=200_000, buffer_capacity=2000,
                                 retain_records=False, admission="always",
                                 beta_records=200, seed=1)
        gf.ingest(200_000)
        assert gf.ladder.n_disk_segments == segments_per_flush(
            2000, gf.alpha, 200
        )
        seeks_before = gf.device.model.stats.seeks
        flushes_before = gf.flushes
        gf.ingest(50_000)
        flushes = gf.flushes - flushes_before
        measured = (gf.device.model.stats.seeks - seeks_before) / flushes
        predicted = seeks_per_flush(2000, gf.alpha, 200,
                                    seeks_per_segment=4.0)
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_predicted_flush_time_brackets_measured(self):
        gf = make_geometric_file(capacity=200_000, buffer_capacity=2000,
                                 record_size=40, retain_records=False,
                                 admission="always", beta_records=200,
                                 seed=1)
        gf.ingest(200_000)
        clock_before = gf.clock
        flushes_before = gf.flushes
        gf.ingest(50_000)
        flushes = gf.flushes - flushes_before
        measured = (gf.clock - clock_before) / flushes
        predicted = geometric_flush_cost(
            2000, 40, gf.alpha, 200,
            DiskParameters(block_size=4096),
        ).total_seconds
        assert measured == pytest.approx(predicted, rel=0.35)


class TestStackBounds:
    def test_survival_probability(self):
        p = survival_probability(10 ** 9, 10 ** 7)
        assert p == pytest.approx(math.exp(-0.01), rel=1e-4)

    def test_sigma_peaks_at_half(self):
        b = 10 ** 7
        assert subsample_size_sigma(b, 0.5) == worst_case_sigma(b)
        assert subsample_size_sigma(b, 0.1) < worst_case_sigma(b)
        assert subsample_size_sigma(b, 0.9) < worst_case_sigma(b)

    def test_worst_case_sigma_formula(self):
        assert worst_case_sigma(10 ** 7) == pytest.approx(
            0.5 * math.sqrt(10 ** 7)
        )

    def test_paper_1e_minus_9(self):
        """'Around a 1e-9 probability that any given subsample
        overflows its stack' with 3*sqrt(B)."""
        p = overflow_probability(10 ** 7, 3.0)
        assert 5e-10 < p < 2e-9

    def test_paper_survival_over_100k_flushes(self):
        """The paper states '(1 - 1e-9)^100,000, or 99.99990%', but
        (1 - 1e-9)^1e5 = 0.99990 -- the printed percentage drops a
        digit.  We assert the mathematically correct value and record
        the discrepancy in EXPERIMENTS.md."""
        p = no_overflow_probability(100_000, 3.0)
        assert p == pytest.approx(math.exp(-100_000 * 9.866e-10),
                                  abs=1e-6)
        assert 0.9999 < p < 0.99991

    def test_required_multiplier_inverts(self):
        m = required_multiplier(1e-9)
        assert overflow_probability(10 ** 7, m) <= 1.1e-9
        assert m == pytest.approx(3.0, abs=0.1)

    def test_simulator_never_exceeds_six_sigma_in_practice(self):
        """Observed stack high-water marks respect the bound."""
        gf = make_geometric_file(capacity=10_000, buffer_capacity=400,
                                 retain_records=False, admission="always",
                                 beta_records=40, seed=5)
        gf.ingest(100_000)
        bound = 3 * math.sqrt(400)
        for ledger in gf.subsamples:
            assert ledger.max_stack_balance <= bound
        assert gf.stack_overflows == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            survival_probability(0, 10)
        with pytest.raises(ValueError):
            overflow_probability(10, 0.0)
        with pytest.raises(ValueError):
            required_multiplier(1.5)
